//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] / [`BytesMut`] and the big-endian [`Buf`] / [`BufMut`]
//! accessors the packet codec uses. `Bytes` here owns a `Vec<u8>` plus a read
//! cursor rather than a refcounted slice — same observable behavior for
//! encode/decode, without the zero-copy machinery.

use std::fmt;

/// Read-side accessors (big-endian, consuming).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read `n` raw bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_bytes(2).try_into().unwrap())
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
}

/// Write-side accessors (big-endian, appending).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

// Equality and hashing cover the *unread view*, matching the real `bytes`
// crate (where consumed prefixes are gone, not merely skipped).
impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Bytes {
    /// Wrap a static slice.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { data: s.to_vec(), pos: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// View of the unread bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes { data: s.to_vec(), pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "Bytes: read past end");
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}
