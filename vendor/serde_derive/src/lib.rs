//! Derive macros for the vendored mini-`serde`.
//!
//! The registry is unreachable in this build environment, so `syn`/`quote`
//! are unavailable; this crate parses the derive input token stream by hand.
//! It supports exactly the shapes the workspace uses — non-generic structs
//! (named, tuple, unit) and non-generic enums (unit, tuple, and struct
//! variants) — and generates `serde::Serialize` / `serde::Deserialize`
//! impls over the `serde::Value` tree using serde's externally-tagged enum
//! encoding:
//!
//! - named struct       → `{"field": ...}`
//! - newtype struct     → inner value
//! - tuple struct       → `[...]`
//! - unit variant       → `"Variant"`
//! - newtype variant    → `{"Variant": value}`
//! - tuple variant      → `{"Variant": [...]}`
//! - struct variant     → `{"Variant": {"field": ...}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (see the crate docs for the encoding).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    render(ser(&def))
}

/// Derive `serde::Deserialize` (see the crate docs for the encoding).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    render(de(&def))
}

fn render(src: String) -> TokenStream {
    src.parse().expect("serde_derive generated invalid Rust")
}

/// A parsed `struct` or `enum` definition.
enum Def {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// The field list of a struct or enum variant.
enum Fields {
    /// `{ a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `(T, U)` — field count.
    Tuple(usize),
    /// No fields.
    Unit,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skip `#[...]` attributes (doc comments arrive in this form too).
    fn skip_attrs(&mut self) {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.pos += 1; // '#'
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                self.pos += 1;
            }
        }
    }

    /// Skip `pub` / `pub(...)`.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    /// Consume a type (or any token run) up to a top-level `,`, tracking
    /// `<`/`>` depth. Groups are atomic tokens, so only angle brackets need
    /// counting. Returns `true` if a comma was consumed.
    fn skip_until_comma(&mut self) -> bool {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.pos += 1;
                    return true;
                }
                _ => {}
            }
            self.pos += 1;
        }
        false
    }
}

fn parse(input: TokenStream) -> Def {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }
    match kind.as_str() {
        "struct" => Def::Struct { name, fields: parse_fields_after_name(&mut c) },
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Def::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: expected struct/enum, found `{other}`"),
    }
}

/// Parse what follows a struct's name: `{...}`, `(...);`, or `;`.
fn parse_fields_after_name(c: &mut Cursor) -> Fields {
    match c.peek() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream());
            c.pos += 1;
            fields
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let fields = Fields::Tuple(count_tuple_fields(g.stream()));
            c.pos += 1;
            fields
        }
        _ => Fields::Unit, // `struct Name;` — the `;` is not in the stream we care about
    }
}

fn parse_named_fields(body: TokenStream) -> Fields {
    let mut c = Cursor::new(body);
    let mut names = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let field = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{field}`, found {other:?}"),
        }
        names.push(field);
        if !c.skip_until_comma() {
            break;
        }
    }
    Fields::Named(names)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut n = 0;
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        n += 1;
        if !c.skip_until_comma() {
            break;
        }
        // Trailing comma: the loop exits via `at_end` next round.
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip an optional discriminant (`= expr`) and the separating comma.
        c.skip_until_comma();
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (string-built, parsed back into a TokenStream)
// ---------------------------------------------------------------------------

/// `("a".to_string(), serde::Serialize::to_value(<expr>))` pairs for an
/// object literal.
fn obj_pairs(fields: &[String], expr: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value(&{})),", expr(f)))
        .collect()
}

fn ser(def: &Def) -> String {
    match def {
        Def::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => format!(
                    "serde::Value::Object(vec![{}])",
                    obj_pairs(names, |f| format!("self.{f}"))
                ),
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => format!(
                    "serde::Value::Array(vec![{}])",
                    (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i}),"))
                        .collect::<String>()
                ),
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n                     fn to_value(&self) -> serde::Value {{ {body} }}\n                 }}"
            )
        }
        Def::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => serde::Value::String({v:?}.to_string()),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(x0)".to_string()
                        } else {
                            format!(
                                "serde::Value::Array(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_value({b}),"))
                                    .collect::<String>()
                            )
                        };
                        format!(
                            "{name}::{v}({}) => serde::Value::Object(vec![({v:?}.to_string(), {inner})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(names) => format!(
                        "{name}::{v} {{ {} }} => serde::Value::Object(vec![({v:?}.to_string(), serde::Value::Object(vec![{}]))]),",
                        names.join(", "),
                        obj_pairs(names, |f| f.to_string())
                    ),
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n                     fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }}\n                 }}"
            )
        }
    }
}

/// `field: serde::Deserialize::from_value(...)?,` initializers for a named
/// field list pulled out of object entries `obj`.
fn named_inits(ty: &str, names: &[String]) -> String {
    names
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value(serde::__private::field(obj, {ty:?}, {f:?})?)?,"
            )
        })
        .collect()
}

fn de(def: &Def) -> String {
    let body = match def {
        Def::Struct { name, fields } => match fields {
            Fields::Named(names) => format!(
                "let obj = match v {{
                     serde::Value::Object(m) => m,
                     _ => return serde::__private::unexpected({name:?}, \"object\", v),
                 }};
                 Ok({name} {{ {} }})",
                named_inits(name, names)
            ),
            Fields::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
            Fields::Tuple(n) => format!(
                "let a = match v {{
                     serde::Value::Array(a) if a.len() == {n} => a,
                     _ => return serde::__private::unexpected({name:?}, \"{n}-element array\", v),
                 }};
                 Ok({name}({}))",
                (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&a[{i}])?,"))
                    .collect::<String>()
            ),
            Fields::Unit => format!("Ok({name})"),
        },
        Def::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            let data_arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => String::new(),
                    Fields::Tuple(1) => format!(
                        "{v:?} => Ok({name}::{v}(serde::Deserialize::from_value(inner)?)),"
                    ),
                    Fields::Tuple(n) => format!(
                        "{v:?} => {{
                             let a = match inner {{
                                 serde::Value::Array(a) if a.len() == {n} => a,
                                 _ => return serde::__private::unexpected({name:?}, \"{n}-element array\", v),
                             }};
                             Ok({name}::{v}({}))
                         }},",
                        (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&a[{i}])?,"))
                            .collect::<String>()
                    ),
                    Fields::Named(names) => format!(
                        "{v:?} => {{
                             let obj = match inner {{
                                 serde::Value::Object(m) => m,
                                 _ => return serde::__private::unexpected({name:?}, \"object\", v),
                             }};
                             Ok({name}::{v} {{ {} }})
                         }},",
                        named_inits(&format!("{name}::{v}"), names)
                    ),
                })
                .collect();
            format!(
                "match v {{
                     serde::Value::String(s) => match s.as_str() {{
                         {unit_arms}
                         _ => serde::__private::unexpected({name:?}, \"known variant\", v),
                     }},
                     serde::Value::Object(m) if m.len() == 1 => {{
                         let (tag, inner) = &m[0];
                         let _ = inner; // silence `unused` when every variant is a unit
                         match tag.as_str() {{
                             {data_arms}
                             _ => serde::__private::unexpected({name:?}, \"known variant\", v),
                         }}
                     }}
                     _ => serde::__private::unexpected({name:?}, \"variant\", v),
                 }}"
            )
        }
    };
    let name = match def {
        Def::Struct { name, .. } | Def::Enum { name, .. } => name,
    };
    format!(
        "impl serde::Deserialize for {name} {{\n             fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n         }}"
    )
}
