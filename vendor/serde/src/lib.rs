//! Offline stand-in for the `serde` crate.
//!
//! The build container has no route to a crates registry, so this workspace
//! vendors the small slice of serde's API that the reproduction actually
//! uses. Unlike serde proper, serialization goes through a concrete JSON-ish
//! [`Value`] tree rather than a visitor pair: `Serialize` renders a value
//! tree, `Deserialize` rebuilds `Self` from one. The derive macros in
//! `serde_derive` generate real implementations for structs and enums using
//! serde's externally-tagged enum encoding, so `serde_json` round-trips are
//! faithful for every type the workspace derives.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON document tree.
///
/// `serde_json` re-exports this as `serde_json::Value`. Object keys keep
/// insertion order so rendered artifacts read in source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every integer the workspace serializes except
    /// `u64` values above `i64::MAX`, which use [`Value::UInt`]).
    Int(i64),
    /// Large unsigned integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Signed integer view of any numeric value that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// Unsigned integer view of any numeric value that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// Float view of any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced when a [`Value`] tree does not match the requested type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError { msg: msg.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the serialization data model.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the serialization data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Support code used by the generated derive impls; not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Value};

    /// Fetch a struct field from an object, failing with the field name.
    pub fn field<'v>(
        obj: &'v [(String, Value)],
        ty: &str,
        name: &str,
    ) -> Result<&'v Value, DeError> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::custom(format!("{ty}: missing field `{name}`")))
    }

    /// Fail with an "expected X" message.
    pub fn unexpected<T>(ty: &str, what: &str, v: &Value) -> Result<T, DeError> {
        DeError::custom(format!("{ty}: expected {what}, got {v:?}")).into_err()
    }

    impl DeError {
        /// Wrap into `Err` (helps the generated code stay expression-shaped).
        pub fn into_err<T>(self) -> Result<T, DeError> {
            Err(self)
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(format!(concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(i).map_err(DeError::custom)
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .ok_or_else(|| DeError::custom(format!("expected u64, got {v:?}")))
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(u) => u.to_value(),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected f64, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom(format!("expected char, got {v:?}")))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

// Maps encode as arrays of `[key, value]` pairs so any serializable key type
// works (the workspace keys maps by enums and tuples, not just strings).

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(
        entries
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_from_value<K: Deserialize, V: Deserialize, M: FromIterator<(K, V)>>(
    v: &Value,
) -> Result<M, DeError> {
    v.as_array()
        .ok_or_else(|| DeError::custom(format!("expected map pair array, got {v:?}")))?
        .iter()
        .map(|pair| {
            let a = pair
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| DeError::custom(format!("expected [key, value], got {pair:?}")))?;
            Ok((K::from_value(&a[0])?, V::from_value(&a[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Hash iteration order is arbitrary; render in the order we get and
        // accept any order on re-parse.
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {v:?}")))?;
                let expected = [$( stringify!($idx) ),+].len();
                if a.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, got {} elements",
                        a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected duration object, got {v:?}")))?;
        let secs = u64::from_value(__private::field(obj, "Duration", "secs")?)?;
        let nanos = u32::from_value(__private::field(obj, "Duration", "nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}
