//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators, macros, and runner surface the
//! workspace's property tests use. Differences from proptest proper:
//!
//! - **No shrinking.** A failing case panics with the assertion message and
//!   the run's seed; re-run with `PROPTEST_SEED=<seed>` to reproduce.
//! - **Deterministic by default.** Each test derives its seed from the test
//!   name (FNV-1a), so CI runs are reproducible; set `PROPTEST_SEED` to
//!   explore a different part of the input space.
//! - Strategies are simple generators (`fn generate(&self, rng) -> Value`);
//!   there is no intermediate value tree.

pub mod strategy;

pub mod test_runner;

/// `prop::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Size specification accepted by [`vec()`]: an exact `usize`, `a..b`, or
    /// `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `prop::sample` — strategies that pick from explicit candidate sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `prop::sample::select(options)` — uniform choice.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// `prop::option` — strategies for `Option<T>`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Some` three times out of four.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Uniform in [0, 1): finite, totally ordered, enough for tests.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };

    /// The `prop` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::strategy;
    }
}
