//! Case execution: configuration, RNG seeding, reject accounting, and the
//! `proptest!` / `prop_compose!` / assertion macros.

/// The RNG driving generation (the vendored `rand`'s `StdRng`).
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum total `prop_assume!` rejections before the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config with `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not counted.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Runs the configured number of cases against a closure.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// Build a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
        TestRunner { config, name }
    }

    /// The seed for this run: `PROPTEST_SEED` if set, otherwise an FNV-1a
    /// hash of the test name (deterministic per test, stable across runs).
    fn seed(&self) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return seed;
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Execute cases until `config.cases` succeed. Panics on the first
    /// failing case (no shrinking), printing the seed for reproduction.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        use rand::SeedableRng;
        let seed = self.seed();
        let mut rng = TestRng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut rejects = 0u32;
        while passed < self.config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        panic!(
                            "proptest `{}`: {} prop_assume! rejections (seed {seed})",
                            self.name, rejects
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{}` failed at input {} ({} passed, {} rejected; PROPTEST_SEED={seed} to reproduce):\n{msg}",
                        self.name,
                        passed + rejects,
                        passed,
                        rejects
                    );
                }
            }
        }
    }
}

/// Define property tests. Each function's arguments are drawn from the given
/// strategies; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr)) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|__rng| {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&($($strat,)+), __rng);
                let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Define a named strategy function from simpler strategies.
///
/// Supports both proptest forms: the single strategy list, and the dependent
/// two-list form where the second list's strategies may mention values drawn
/// by the first.
#[macro_export]
macro_rules! prop_compose {
    // Dependent (two-list) form.
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
            ($($pat1:pat in $strat1:expr),+ $(,)?)
            ($($pat2:pat in $strat2:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::of_fn(move |__rng| {
                let ($($pat1,)+) =
                    $crate::strategy::Strategy::generate(&($($strat1,)+), __rng);
                let ($($pat2,)+) =
                    $crate::strategy::Strategy::generate(&($($strat2,)+), __rng);
                $body
            })
        }
    };
    // Single-list form.
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
            ($($pat1:pat in $strat1:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::of_fn(move |__rng| {
                let ($($pat1,)+) =
                    $crate::strategy::Strategy::generate(&($($strat1,)+), __rng);
                $body
            })
        }
    };
}

/// Choose between strategies, optionally weighted (`3 => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert inside a property test body; failure reports the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            format!($($fmt)+),
            __l
        );
    }};
}

/// Discard the current case (retried without counting toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
