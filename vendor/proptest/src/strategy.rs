//! The [`Strategy`] trait and combinators.
//!
//! A strategy is a plain generator: `generate` draws one value from the
//! strategy's distribution. There is no value tree and no shrinking.

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keep only values satisfying `f`; other draws are retried (bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, f }
    }

    /// Generate with `self`, then feed the value to `f` to pick the next
    /// strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Bounded recursive strategies: apply `recurse` to the accumulated
    /// strategy `depth` times, with `self` as the base case.
    ///
    /// `desired_size` and `expected_branch_size` are accepted for proptest
    /// API compatibility; depth alone bounds recursion here.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable, type-erased strategy (proptest's `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}`: rejected 1000 consecutive draws", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Weighted choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("prop_oneof: weight bookkeeping is exhaustive")
    }
}

/// A strategy from a closure (used by `prop_compose!`).
#[derive(Debug, Clone)]
pub struct FnStrategy<F> {
    f: F,
}

/// Build a strategy from a generation closure.
pub fn of_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy { f }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
}
