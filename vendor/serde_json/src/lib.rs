//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the slice of serde_json the workspace uses: [`Value`] (re-exported
//! from the vendored `serde`), [`to_string`] / [`to_string_pretty`],
//! [`from_str`], and the [`json!`] macro. The JSON printer and parser are
//! complete for the workspace's data model (strings with escapes, signed /
//! unsigned integers, floats, arrays, objects, booleans, null).

use std::fmt;

pub use serde::Value;

/// Error type for JSON parsing and typed deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e)
    }
}

/// Serialize any [`serde::Serialize`] type to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize any [`serde::Serialize`] type to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

/// Render any [`serde::Serialize`] type as a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::from_value(v)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !a.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if !m.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep floats distinguishable from integers on re-parse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; serde_json emits null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::new)?,
                                16,
                            )
                            .map_err(Error::new)?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                c as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8: back up and take the full char.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest).map_err(Error::new)?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(Error::new)
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(Error::new)
        }
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub fn __value_from<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Build a [`Value`] from JSON-ish syntax, interpolating Rust expressions.
///
/// ```
/// let n = 3u64;
/// let v = serde_json::json!({ "name": "q1", "sizes": [1, 2, n], "ok": true });
/// assert_eq!(v.get("name").and_then(|v| v.as_str()), Some("q1"));
/// ```
///
/// This is the classic token-tree muncher (same structure as serde_json's
/// `json_internal!`), so arbitrary expressions — method chains, closures,
/// turbofish — work as object and array values.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => { $crate::json_internal!($($json)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //----------------------------------------------------------------------
    // Array munching: accumulate elements into `[$($elems:expr,)*]`.
    //----------------------------------------------------------------------
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //----------------------------------------------------------------------
    // Object munching: `(key tokens) (unparsed) (copy for backtracking)`.
    //----------------------------------------------------------------------
    (@object $object:ident () () ()) => {};
    // Insert the completed entry, then continue after the comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final entry (no trailing comma).
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };
    // The value for the current key starts here.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one more token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //----------------------------------------------------------------------
    // Entry points.
    //----------------------------------------------------------------------
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object(vec![]) };
    ({ $($tt:tt)+ }) => {{
        let mut object: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::__value_from(&$other) };
}
