//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness-free benchmarking surface the workspace uses:
//! [`Criterion::bench_function`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! the [`criterion_group!`] / [`criterion_main!`] macros, and [`black_box`].
//! Measurement is wall-clock sampling with a warm-up phase; each sample runs
//! as many iterations as fit the per-sample time slice, and the report prints
//! `min / mean / max` per-iteration times. There is no statistical outlier
//! analysis or HTML report — numbers go to stdout.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark summary collected for the optional JSON artifact.
#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    min_s: f64,
    mean_s: f64,
    max_s: f64,
    samples: usize,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

fn record_result(r: BenchResult) {
    if let Ok(mut v) = RESULTS.lock() {
        v.push(r);
    }
}

/// Write every result recorded so far to the file named by the
/// `CRITERION_JSON` environment variable (a `{"series": [...]}` document).
/// No-op when the variable is unset. Called by [`criterion_main!`] after all
/// groups have run.
pub fn write_json_results() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = match RESULTS.lock() {
        Ok(v) => v.clone(),
        Err(_) => return,
    };
    let mut out = String::from("{\n  \"series\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": {:?}, \"min_s\": {:e}, \"mean_s\": {:e}, \"max_s\": {:e}, \"samples\": {}}}{comma}\n",
            r.id, r.min_s, r.mean_s, r.max_s, r.samples
        ));
    }
    out.push_str("  ]\n}\n");
    if std::fs::write(&path, out).is_ok() {
        eprintln!("[criterion-json] {path}");
    }
}

/// How [`Bencher::iter_batched`] amortizes setup cost. All variants behave
/// identically here (setup always runs per batch element, outside the timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per measurement.
    PerIteration,
}

/// Per-target measurement settings and reporting.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Total time budget for measurement (split across samples).
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Warm-up running time before measurement starts.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Measure `routine` (which receives a [`Bencher`]) and print a report
    /// line.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            sample_time: self.measurement_time.div_f64(self.sample_size as f64),
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        routine(&mut b);
        b.report(id);
        self
    }
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    warm_up_time: Duration,
    sample_time: Duration,
    sample_size: usize,
    /// Per-iteration seconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Benchmark `routine` called back-to-back.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm up and estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters_per_sample =
            ((self.sample_time.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Benchmark `routine` on fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_spent = Duration::ZERO;
        while warm_spent < self.warm_up_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            warm_spent += t.elapsed();
            warm_iters += 1;
            if warm_start.elapsed() > self.warm_up_time * 20 {
                break; // setup dominates; don't spin forever
            }
        }
        let per_iter = warm_spent.as_secs_f64() / warm_iters.max(1) as f64;
        let iters_per_sample =
            ((self.sample_time.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut spent = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                spent += t.elapsed();
            }
            self.samples.push(spent.as_secs_f64() / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:40} (no samples)");
            return;
        }
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{id:40} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
        record_result(BenchResult {
            id: id.to_string(),
            min_s: min,
            mean_s: mean,
            max_s: max,
            samples: self.samples.len(),
        });
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Group benchmark functions under a runner fn, optionally with a custom
/// config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_results();
        }
    };
}
