//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Implements the slice the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`] / [`Rng::gen_range`] /
//! [`Rng::gen_bool`]. The generator is SplitMix64 — statistically fine for
//! simulation workloads and property tests, deterministic per seed, and
//! obviously not cryptographic.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Sample a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply method.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                let off = uniform_u64(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // The multiply-add can round up to `end`; keep the bound exclusive.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (integers: full width; floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: SplitMix64 (not the `rand` crate's ChaCha12, but
    /// deterministic-per-seed with good 64-bit avalanche behavior).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17i64);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u32);
            assert!(y <= 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    /// Pearson's chi-square statistic for `counts` against a uniform
    /// expectation over `counts.len()` cells.
    fn chi_square(counts: &[u64], samples: u64) -> f64 {
        let expected = samples as f64 / counts.len() as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }

    /// A generous upper bound on the chi-square statistic at `df` degrees
    /// of freedom: mean + 6 standard deviations (`df + 6·√(2df)`), far
    /// beyond the 99.99th percentile for the df range tested here, so the
    /// test never flakes on a fair sampler but any systematic bias — e.g.
    /// a wrong rejection threshold in `uniform_u64` leaving the low
    /// residue classes overweighted — blows through it at 100k samples.
    fn chi_square_bound(df: usize) -> f64 {
        df as f64 + 6.0 * (2.0 * df as f64).sqrt()
    }

    /// The hand-rolled rejection threshold in `uniform_u64` must make
    /// every value of each small span equally likely. Spans are chosen
    /// with distinct factorizations (primes, a power of two, composites)
    /// since multiply-shift bias is residue-class dependent.
    #[test]
    fn gen_range_is_unbiased_over_small_spans() {
        const SAMPLES: u64 = 100_000;
        for (seed, span) in [(11u64, 2usize), (13, 3), (17, 5), (19, 7), (23, 10), (29, 17)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts = vec![0u64; span];
            for _ in 0..SAMPLES {
                counts[rng.gen_range(0..span as u64) as usize] += 1;
            }
            let x2 = chi_square(&counts, SAMPLES);
            let bound = chi_square_bound(span - 1);
            assert!(x2 < bound, "span {span}: chi-square {x2:.1} ≥ {bound:.1} ({counts:?})");
        }
    }

    /// Negative and inclusive ranges go through the same `uniform_u64`
    /// core after offset arithmetic; verify the offsets do not skew it.
    #[test]
    fn signed_and_inclusive_ranges_are_unbiased() {
        const SAMPLES: u64 = 100_000;
        let mut rng = StdRng::seed_from_u64(37);
        let mut counts = vec![0u64; 9];
        for _ in 0..SAMPLES {
            let x = rng.gen_range(-4..5i64);
            counts[(x + 4) as usize] += 1;
        }
        let x2 = chi_square(&counts, SAMPLES);
        let bound = chi_square_bound(8);
        assert!(x2 < bound, "range -4..5: chi-square {x2:.1} ≥ {bound:.1} ({counts:?})");

        let mut counts = vec![0u64; 6];
        for _ in 0..SAMPLES {
            counts[rng.gen_range(0..=5u32) as usize] += 1;
        }
        let x2 = chi_square(&counts, SAMPLES);
        let bound = chi_square_bound(5);
        assert!(x2 < bound, "range 0..=5: chi-square {x2:.1} ≥ {bound:.1} ({counts:?})");
    }

    /// Cross-check the rejection threshold itself: for a handful of spans,
    /// `span.wrapping_neg() % span` must equal `2^64 mod span` — the
    /// smallest low-word value at which a widening multiply lands every
    /// residue class equally often (Lemire 2019, Fig. 4).
    #[test]
    fn rejection_threshold_is_two_to_64_mod_span() {
        for span in [2u64, 3, 5, 7, 10, 17, 1000, u64::MAX / 2 + 1] {
            let expected = ((1u128 << 64) % span as u128) as u64;
            assert_eq!(span.wrapping_neg() % span, expected, "span {span}");
        }
    }
}
