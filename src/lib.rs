//! # sdn-meta-repair
//!
//! A reproduction of *"Automated Bug Removal for Software-Defined
//! Networks"* (Wu, Chen, Haeberlen, Zhou, Loo — NSDI 2017).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! - [`ndlog`] — the NDlog/µDlog controller language (values, AST, parser).
//! - [`runtime`] — the datalog evaluation engine with provenance hooks.
//! - [`provenance`] — classical positive/negative provenance graphs.
//! - [`solver`] — the constraint-pool mini-solver.
//! - [`sdn`] — the software-defined-network simulator substrate.
//! - [`trace`] — workload generation and replayable history logs.
//! - [`backtest`] — repair backtesting, KS filtering, multi-query optimization.
//! - [`langs`] — mini-Trema and mini-Pyretic frontends and their meta models.
//! - [`core`] — meta provenance, cost-ordered repair search, the debugger.
//!
//! [`EvalStrategy`] (re-exported from the runtime) selects among the
//! batch semi-naive engine (the default), its sharded parallel variant
//! (`Shards(n)` — batch rounds with join enumeration fanned out over `n`
//! worker threads, bit-identical results), and the per-tuple pipelined
//! baseline, either per-engine via `runtime::Options` or process-wide via
//! [`EvalStrategy::set_global_default`] / the `MPR_EVAL_STRATEGY`
//! environment variable (`pipelined`, `batch`, or `shardsN`).
//!
//! ## Quickstart
//!
//! ```
//! use sdn_meta_repair::core::scenarios::Scenario;
//! use sdn_meta_repair::core::debugger::Debugger;
//!
//! // Build the Fig. 1 scenario: a buggy load balancer where the backup
//! // HTTP server H2 never receives requests.
//! let scenario = Scenario::q1_copy_paste();
//! let mut dbg = Debugger::for_scenario(&scenario);
//! let report = dbg.diagnose_and_repair().expect("scenario runs");
//! assert!(report
//!     .accepted
//!     .iter()
//!     .any(|&i| report.outcomes[i].candidate.description.contains("Swi == 3")));
//! ```

pub use mpr_backtest as backtest;
pub use mpr_runtime::EvalStrategy;
pub use mpr_core as core;
pub use mpr_langs as langs;
pub use mpr_ndlog as ndlog;
pub use mpr_provenance as provenance;
pub use mpr_runtime as runtime;
pub use mpr_sdn as sdn;
pub use mpr_solver as solver;
pub use mpr_trace as trace;
