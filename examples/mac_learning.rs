//! Cross-language repair: the Q5 MAC-learning bug expressed in mini-Trema
//! and mini-Pyretic (§5.8). The same meta-provenance machinery repairs all
//! three frontends; Pyretic's equality-only `match` shrinks its candidate
//! space, exactly as the paper observes for Table 3.
//!
//! Run with: `cargo run --example mac_learning`

use sdn_meta_repair::core::debugger::repair_scenario;
use sdn_meta_repair::core::scenarios::Scenario;
use sdn_meta_repair::langs::{q1_pyretic, q1_trema};

fn main() {
    // The imperative port of the load balancer, Ruby-flavored.
    let trema = q1_trema();
    println!("== mini-Trema controller ==\n{trema}\n");
    println!("== compiled to NDlog ==\n{}", trema.compile());

    // The policy-algebra port.
    let pyretic = q1_pyretic();
    println!("== mini-Pyretic controller ==\n{pyretic}\n");

    // Q5 under NDlog, then the Q1 ports under both languages.
    let q5 = Scenario::q5_mac_learning();
    let report = repair_scenario(&q5);
    println!("== Q5 (MAC learning) under NDlog: {}/{} ==", report.generated(), report.accepted_count());
    for &i in &report.accepted {
        println!("  accepted: {}", report.outcomes[i].candidate.description);
    }

    let q1 = Scenario::q1_copy_paste();
    let trema_report = repair_scenario(&q1.trema_variant());
    println!(
        "\n== Q1 under mini-Trema: {}/{} ==",
        trema_report.generated(),
        trema_report.accepted_count()
    );
    for &i in &trema_report.accepted {
        println!("  accepted: {}", trema.describe_repair(&trema_report.outcomes[i].candidate.description));
    }

    let py = q1.pyretic_variant().expect("Q1 is expressible in Pyretic");
    let py_report = repair_scenario(&py);
    println!(
        "\n== Q1 under mini-Pyretic: {}/{} (operator repairs filtered) ==",
        py_report.generated(),
        py_report.accepted_count()
    );
    for &i in &py_report.accepted {
        println!("  accepted: {}", py_report.outcomes[i].candidate.description);
    }
}
