//! Quickstart: the paper's Fig. 1 scenario end to end.
//!
//! A load balancer offloads HTTP traffic to a backup web server H2, but a
//! copy-and-paste bug in the controller program (Fig. 2, rule r7) means H2
//! never receives anything. We ask the debugger why, inspect the meta
//! provenance, and apply the top-ranked repair.
//!
//! Run with: `cargo run --example quickstart`

use sdn_meta_repair::core::debugger::Debugger;
use sdn_meta_repair::core::scenarios::Scenario;

fn main() {
    let scenario = Scenario::q1_copy_paste();
    println!("== The buggy controller program ==\n{}", scenario.program);
    println!("== Symptom ==\n{}\n", scenario.query);

    let mut dbg = Debugger::for_scenario(&scenario);
    let report = dbg.diagnose_and_repair().expect("scenario runs");

    println!("== Candidate repairs (cheapest first) ==");
    print!("{}", report.render_table());

    println!("\n== Meta provenance of the top-ranked accepted repair ==");
    let best = report.accepted.first().copied().expect("a repair was accepted");
    let candidate = &report.outcomes[best].candidate;
    print!("{}", candidate.render_trace());

    println!("\n== Applying: {} ==", candidate.description);
    let fixed = candidate.repair.apply(&scenario.program).expect("repair applies");
    for rule in &fixed.rules {
        if Some(rule) != scenario.program.rule(&rule.id) {
            println!("  {rule}");
        }
    }
    println!(
        "\nturnaround: {:.1} ms (history {:.1} / solving {:.1} / patches {:.1} / replay {:.1})",
        report.timings.total().as_secs_f64() * 1e3,
        report.timings.history_lookups.as_secs_f64() * 1e3,
        report.timings.constraint_solving.as_secs_f64() * 1e3,
        report.timings.patch_generation.as_secs_f64() * 1e3,
        report.timings.replay.as_secs_f64() * 1e3,
    );
}
