//! Provenance tour: the diagnosis-only workflow of §2.2 — positive and
//! negative provenance graphs for delivered and missing flow entries,
//! with GraphViz DOT export.
//!
//! Run with: `cargo run --example provenance_tour`

use sdn_meta_repair::ndlog::{Tuple, Value};
use sdn_meta_repair::provenance::{explain_absent, explain_exist, Pattern};
use sdn_meta_repair::runtime::Engine;

fn main() {
    let program = sdn_meta_repair::core::scenarios::q1_program();
    let mut engine = Engine::new(&program).expect("program compiles");
    let c = Value::str("C");
    engine
        .insert(Tuple::new("WebLoadBalancer", c.clone(), vec![Value::Int(80), Value::Int(2)]))
        .unwrap();
    for (swi, hdr) in [(1i64, 80i64), (2, 80), (3, 80), (3, 53)] {
        engine
            .insert(Tuple::new("PacketIn", c.clone(), vec![Value::Int(swi), Value::Int(hdr)]))
            .unwrap();
    }

    // Positive provenance: why does S1 forward HTTP out of port 2?
    let exists = Tuple::new("FlowTable", Value::Int(1), vec![Value::Int(80), Value::Int(2)]);
    let tree = explain_exist(engine.log(), &exists, engine.now()).expect("entry exists");
    println!("== Why does {exists} exist? ==\n{}", tree.render());

    // Negative provenance: why is there no HTTP entry at S3 (the bug)?
    let missing = Pattern {
        table: "FlowTable".into(),
        loc: Some(Value::Int(3)),
        args: vec![Some(Value::Int(80)), Some(Value::Int(2))],
    };
    let tree = explain_absent(engine.log(), &program, &missing, engine.now());
    println!("== Why is {missing} missing? ==\n{}", tree.render());

    println!("== DOT export (paste into GraphViz) ==\n{}", tree.to_dot());
}
