//! Campus-scale debugging: the Q3 uncoordinated-policy-update scenario —
//! a firewall blocks traffic a load balancer just offloaded — plus the
//! multi-query-optimized backtest that vets every candidate in one pass.
//!
//! Run with: `cargo run --example campus_debug`

use sdn_meta_repair::core::debugger::Debugger;
use sdn_meta_repair::core::scenarios::Scenario;

fn main() {
    let scenario = Scenario::q3_policy_update();
    println!("== Scenario: {} ==\n{}", scenario.id, scenario.query);
    println!("\n== Controller program (firewall + load balancer) ==\n{}", scenario.program);

    // MQO on (the default): all candidates share one joint replay.
    let mut dbg = Debugger::for_scenario(&scenario);
    let report = dbg.diagnose_and_repair().expect("scenario runs");
    println!("== Candidates ==");
    print!("{}", report.render_table());
    println!(
        "\n{} candidates backtested jointly in {:.1} ms; {} accepted",
        report.generated(),
        report.timings.replay.as_secs_f64() * 1e3,
        report.accepted_count()
    );
    for &i in &report.accepted {
        println!("  -> {}", report.outcomes[i].candidate.description);
    }
    println!("\nThe stale whitelist `Sip > 3` is relaxed just enough to admit the");
    println!("offloaded client while the intentionally-blocked client stays blocked.");
}
