//! Differential test harness for the two evaluation strategies.
//!
//! Over random NDlog programs and fact sets (well over 100 generated
//! programs per run), the per-tuple pipelined engine and the batch
//! semi-naive engine must reach identical fixpoints — which must also match
//! the naive whole-program oracle — and must record provenance-equivalent
//! executions: the same *net* derivation set keyed by tuple values
//! (`provenance::derivation_set`). Instance ids and support-count
//! multiplicities may differ between strategies; net derivations, live
//! state, and retraction cascades may not.
//!
//! The sharded strategy (`Shards(n)`) carries a stronger obligation than
//! fixpoint agreement: its parallel round enumeration must be
//! *bit-identical* to single-threaded batch — same fixpoint, same
//! provenance log, same derivation count — so every random program also
//! runs under `Shards(2)` and `Shards(8)` (with `shard_min_round` forced
//! to 1 so even tiny rounds take the parallel path) and compares full
//! execution logs against batch.
//!
//! Scripted scenarios cover the fragments the random generator avoids:
//! primary-key replacement, transient events, aggregates, and recursion.

use proptest::prelude::*;
use sdn_meta_repair::ndlog::ast::{Assign, Atom, BinOp, CmpOp, Expr, Rule, Selection, Term};
use sdn_meta_repair::ndlog::{parse_program, Program, Tuple, Value};
use sdn_meta_repair::provenance::derivation_set;
use sdn_meta_repair::runtime::naive::naive_fixpoint;
use sdn_meta_repair::runtime::{Engine, Options};
use sdn_meta_repair::EvalStrategy;
use std::collections::BTreeSet;

const TABLES: [&str; 8] = ["T0", "T1", "T2", "T3", "D0", "D1", "D2", "D3"];

type DerivationSet = BTreeSet<(String, Tuple, Vec<Tuple>)>;

fn engine(p: &Program, strategy: EvalStrategy) -> Engine {
    // `shard_min_round: 1` forces `Shards(_)` engines onto the parallel
    // enumeration path for every round, however small — the differential
    // suite must exercise it, not tiptoe around it. Ignored by the other
    // strategies.
    Engine::with_options(p, Options { strategy, shard_min_round: 1, ..Options::default() })
        .unwrap()
}

fn snapshot(e: &Engine) -> BTreeSet<Tuple> {
    TABLES.iter().flat_map(|t| e.tuples(t)).collect()
}

/// Run one strategy over the same script: insert every base fact (fixpoint
/// after each), then delete the listed facts. Returns the final live state
/// and the net derivation set of the whole execution; the engine comes
/// back too so callers can compare raw logs.
fn run(
    p: &Program,
    base: &[Tuple],
    deletes: &[Tuple],
    strategy: EvalStrategy,
) -> (BTreeSet<Tuple>, DerivationSet, Engine) {
    let mut e = engine(p, strategy);
    for t in base {
        e.insert(t.clone()).unwrap();
    }
    for t in deletes {
        e.delete(t).unwrap();
    }
    (snapshot(&e), derivation_set(e.log()), e)
}

/// Assert all strategies agree and return the common state for oracle
/// comparison. Pipelined is compared on net semantics (state + derivation
/// sets — instance ids legitimately differ); `Shards(2)` and `Shards(8)`
/// are held to bit-identity with batch: the full execution log, event for
/// event.
fn assert_strategies_agree(
    p: &Program,
    base: &[Tuple],
    deletes: &[Tuple],
) -> Result<BTreeSet<Tuple>, TestCaseError> {
    let (state_p, derivs_p, _) = run(p, base, deletes, EvalStrategy::Pipelined);
    let (state_b, derivs_b, e_batch) = run(p, base, deletes, EvalStrategy::Batch);
    prop_assert_eq!(&state_p, &state_b, "fixpoints diverge");
    prop_assert_eq!(&derivs_p, &derivs_b, "net derivation sets diverge");
    for n in [2, 8] {
        let (state_s, _, e_shard) = run(p, base, deletes, EvalStrategy::Shards(n));
        prop_assert_eq!(&state_b, &state_s, "Shards({}) fixpoint diverges from batch", n);
        prop_assert_eq!(
            e_batch.log(),
            e_shard.log(),
            "Shards({}) execution log is not bit-identical to batch",
            n
        );
        prop_assert_eq!(
            e_batch.total_derivations(),
            e_shard.total_derivations(),
            "Shards({}) derivation count diverges from batch",
            n
        );
    }
    Ok(state_p)
}

// ---------------------------------------------------------------------
// Random stratified programs (set-semantics state tables, no aggregates —
// the fragment where the naive oracle is also meaningful).

/// Base facts over T0..T3, arity 2, on one of two nodes.
fn base_tuple() -> impl Strategy<Value = Tuple> {
    (0u8..4, 0u8..2, 0i64..4, -3i64..6).prop_map(|(t, node, a, b)| {
        let loc = if node == 0 { Value::str("C") } else { Value::str("S") };
        Tuple::new(format!("T{t}"), loc, vec![Value::Int(a), Value::Int(b)])
    })
}

fn term(vars: &'static [&'static str]) -> impl Strategy<Value = Term> {
    prop_oneof![
        4 => prop::sample::select(vars.to_vec()).prop_map(|v| Term::Var(v.to_string())),
        1 => (-2i64..4).prop_map(|i| Term::Const(Value::Int(i))),
    ]
}

fn sel(vars: &'static [&'static str]) -> impl Strategy<Value = Selection> {
    (
        prop::sample::select(vars.to_vec()),
        prop::sample::select(CmpOp::ALL.to_vec()),
        prop_oneof![
            prop::sample::select(vars.to_vec()).prop_map(|v| Expr::Var(v.to_string())),
            (-2i64..5).prop_map(Expr::int),
        ],
    )
        .prop_map(|(l, op, r)| Selection::new(Expr::var(l), op, r))
}

prop_compose! {
    /// A stratified rule with 1–3 body atoms: the first atom always binds
    /// `A` and `B` (so heads and selections are safe), later atoms draw
    /// their terms freely from the pool — constants, repeats of `A`/`B`
    /// (join columns), or fresh `X`/`Y`. Half the rules append an
    /// arithmetic assignment; some heads install remotely (constant node).
    fn rule(idx: usize)(
        head_t in 0u8..4,
        body_ts in prop::collection::vec(0u8..4, 1..4),
        args in prop::collection::vec(term(&["A", "B", "X", "Y"]), 4),
        sels in prop::collection::vec(sel(&["A", "B"]), 0..3),
        assign_c in -2i64..4,
        with_assign in prop::sample::select(vec![false, true]),
        remote in 0u8..4,
    ) -> Rule {
        let body: Vec<Atom> = body_ts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (a, b) = if i == 0 {
                    (Term::Var("A".into()), Term::Var("B".into()))
                } else {
                    (args[2 * (i - 1)].clone(), args[2 * (i - 1) + 1].clone())
                };
                Atom::new(format!("T{t}"), Term::Var("C".into()), vec![a, b])
            })
            .collect();
        let assigns = if with_assign {
            vec![Assign::new(
                "W",
                Expr::Binary(BinOp::Add, Box::new(Expr::var("A")), Box::new(Expr::int(assign_c))),
            )]
        } else {
            vec![]
        };
        let head_loc =
            if remote == 0 { Term::Const(Value::str("S")) } else { Term::Var("C".into()) };
        let second = if with_assign { Term::Var("W".into()) } else { Term::Var("B".into()) };
        Rule::new(
            format!("r{idx}"),
            Atom::new(format!("D{head_t}"), head_loc, vec![Term::Var("A".into()), second]),
            body,
            sels,
            assigns,
        )
    }
}

prop_compose! {
    fn program()(n in 1usize..5)(
        built in (0..n).map(rule).collect::<Vec<_>>()
    ) -> Program {
        let mut p = Program::new("diff");
        p.rules.extend(built);
        p
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Insert-only: both strategies agree with each other and with the
    /// naive oracle on every random program.
    #[test]
    fn insertions_agree_across_strategies_and_oracle(
        p in program(),
        base in prop::collection::vec(base_tuple(), 0..12),
    ) {
        prop_assume!(p.validate().is_ok());
        let state = assert_strategies_agree(&p, &base, &[])?;
        let expected = naive_fixpoint(&p, &base, 64);
        prop_assert_eq!(state, expected, "engines diverge from the naive oracle");
    }

    /// Deletion cascades: delete a prefix of the inserted facts; both
    /// strategies must agree, and the survivors must equal the oracle's
    /// fixpoint over the remaining base facts.
    #[test]
    fn deletion_cascades_agree_across_strategies(
        p in program(),
        base in prop::collection::vec(base_tuple(), 1..10),
        n_del in 0usize..10,
    ) {
        prop_assume!(p.validate().is_ok());
        let deletes: Vec<Tuple> = base.iter().take(n_del).cloned().collect();
        let state = assert_strategies_agree(&p, &base, &deletes)?;
        // Remaining base support: each delete removes one unit; duplicates
        // in `base` keep the fact alive.
        let mut remaining = base.clone();
        for d in &deletes {
            if let Some(pos) = remaining.iter().position(|t| t == d) {
                remaining.remove(pos);
            }
        }
        let expected = naive_fixpoint(&p, &remaining, 64);
        prop_assert_eq!(state, expected, "cascade left the wrong survivors");
    }
}

// ---------------------------------------------------------------------
// Recursion: rounds deeper than one are where batch semi-naive differs
// most from per-tuple pipelining.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recursive_reachability_agrees(
        edges in prop::collection::vec((0i64..7, 0i64..7), 0..14),
        n_del in 0usize..6,
    ) {
        let p = parse_program(
            "tc",
            r"
            materialize(Link, infinity, 2, keys(0,1)).
            materialize(Reach, infinity, 2, keys(0,1)).
            r1 Reach(@C,X,Y) :- Link(@C,X,Y), X != Y.
            r2 Reach(@C,X,Z) :- Reach(@C,X,Y), Link(@C,Y,Z), X != Z.
            ",
        )
        .unwrap();
        let c = Value::str("C");
        let base: Vec<Tuple> = edges
            .iter()
            .map(|&(a, b)| Tuple::new("Link", c.clone(), vec![Value::Int(a), Value::Int(b)]))
            .collect();
        let deletes: Vec<Tuple> = base.iter().take(n_del).cloned().collect();

        let (state_p, derivs_p, _) = run(&p, &base, &deletes, EvalStrategy::Pipelined);
        let (state_b, derivs_b, e_batch) = run(&p, &base, &deletes, EvalStrategy::Batch);
        prop_assert_eq!(&state_p, &state_b, "reachability fixpoints diverge");
        prop_assert_eq!(&derivs_p, &derivs_b, "reachability derivations diverge");
        // Deep recursion is where rounds grow: the sharded path must stay
        // bit-identical through multi-round fixpoints.
        let (state_s, _, e_shard) = run(&p, &base, &deletes, EvalStrategy::Shards(2));
        prop_assert_eq!(&state_b, &state_s, "sharded reachability fixpoint diverges");
        prop_assert_eq!(e_batch.log(), e_shard.log(), "sharded reachability log diverges");
    }
}

// ---------------------------------------------------------------------
// Scripted scenarios for the fragments the generator avoids. Each runs the
// identical script under both strategies and compares everything.

fn dual_run(src: &str, script: impl Fn(&mut Engine)) {
    let p = parse_program("scripted", src).unwrap();
    let mut e_pipe = engine(&p, EvalStrategy::Pipelined);
    let mut e_batch = engine(&p, EvalStrategy::Batch);
    let mut e_shard = engine(&p, EvalStrategy::Shards(2));
    script(&mut e_pipe);
    script(&mut e_batch);
    script(&mut e_shard);
    let tables: BTreeSet<String> = e_pipe
        .log()
        .tuples
        .iter()
        .chain(e_batch.log().tuples.iter())
        .map(|r| r.tuple.table.clone())
        .collect();
    for t in &tables {
        assert_eq!(e_pipe.tuples(t), e_batch.tuples(t), "table {t} diverges");
        assert_eq!(e_batch.tuples(t), e_shard.tuples(t), "table {t} diverges sharded");
    }
    assert_eq!(
        derivation_set(e_pipe.log()),
        derivation_set(e_batch.log()),
        "net derivation sets diverge"
    );
    // The scripted scenarios hit the mutation hot spots — primary-key
    // replacement, transient events, aggregate churn — where the epoch
    // guard must force sequential recomputation; the sharded log must
    // still match batch event for event.
    assert_eq!(e_batch.log(), e_shard.log(), "sharded execution log diverges from batch");
}

#[test]
fn keyed_replacement_agrees() {
    // Fig. 2's shape: two rules race to install FlowTable entries under the
    // same primary key; last write wins, and the evicted entry's cascade
    // must agree between strategies.
    let src = r"
        materialize(PacketIn, event, 2, keys()).
        materialize(FlowTable, infinity, 2, keys(0)).
        materialize(Mirror, infinity, 2, keys(0,1)).
        r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
        r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
        m1 Mirror(@Swi,Hdr,Prt) :- FlowTable(@Swi,Hdr,Prt).
    ";
    dual_run(src, |e| {
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![Value::Int(2), Value::Int(80)]))
            .unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![Value::Int(2), Value::Int(80)]))
            .unwrap();
    });
}

#[test]
fn transient_events_agree() {
    // Events trigger persistent derivations but are never stored; their
    // derivations must not retract when the event passes.
    let src = r"
        materialize(PacketIn, event, 2, keys()).
        materialize(WebLoadBalancer, infinity, 2, keys(0)).
        materialize(FlowTable, infinity, 2, keys(0)).
        r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt), Swi == 1.
    ";
    dual_run(src, |e| {
        e.insert(Tuple::new(
            "WebLoadBalancer",
            Value::str("C"),
            vec![Value::Int(80), Value::Int(7)],
        ))
        .unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![Value::Int(1), Value::Int(80)]))
            .unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![Value::Int(9), Value::Int(80)]))
            .unwrap();
        e.delete(&Tuple::new(
            "WebLoadBalancer",
            Value::str("C"),
            vec![Value::Int(80), Value::Int(7)],
        ))
        .unwrap();
    });
}

#[test]
fn aggregates_agree() {
    // Incremental a_count with churn: inserts, a retraction that shrinks
    // the group, and one that empties it (evicting the emitted tuple).
    let src = r"
        materialize(PredFunc, infinity, 2, keys(0,1)).
        materialize(PredFuncCount, infinity, 2, keys(0)).
        materialize(Big, infinity, 2, keys(0)).
        p2 PredFuncCount(@C,Rul,a_count<Tab>) :- PredFunc(@C,Rul,Tab).
        p3 Big(@C,Rul,N) :- PredFuncCount(@C,Rul,N), N > 1.
    ";
    let c = || Value::str("C");
    let pf = |r: &str, t: &str| Tuple::new("PredFunc", c(), vec![Value::str(r), Value::str(t)]);
    dual_run(src, move |e| {
        e.insert(pf("r1", "T1")).unwrap();
        e.insert(pf("r1", "T2")).unwrap();
        e.insert(pf("r2", "T1")).unwrap();
        e.delete(&pf("r1", "T2")).unwrap();
        e.delete(&pf("r2", "T1")).unwrap();
        e.insert(pf("r3", "T9")).unwrap();
    });
}

#[test]
fn multiway_join_ordering_agrees() {
    // Three-way join where every table receives deltas in every order; the
    // positional discipline must not miss (or lose) combinations.
    let src = r"
        materialize(A, infinity, 2, keys(0,1)).
        materialize(B, infinity, 2, keys(0,1)).
        materialize(E, infinity, 2, keys(0,1)).
        materialize(Out, infinity, 3, keys(0,1,2)).
        j1 Out(@N,X,Y,Z) :- A(@N,X,Y), B(@N,Y,Z), E(@N,Z,X).
    ";
    let n = || Value::Int(1);
    let t2 = |tab: &str, a: i64, b: i64| {
        Tuple::new(tab, n(), vec![Value::Int(a), Value::Int(b)])
    };
    dual_run(src, move |e| {
        // Cycle 1→2→3→1 completed in three different insertion orders.
        e.insert(t2("A", 1, 2)).unwrap();
        e.insert(t2("B", 2, 3)).unwrap();
        e.insert(t2("E", 3, 1)).unwrap();
        e.insert(t2("E", 6, 4)).unwrap();
        e.insert(t2("B", 5, 6)).unwrap();
        e.insert(t2("A", 4, 5)).unwrap();
        e.insert(t2("B", 8, 9)).unwrap();
        e.insert(t2("A", 7, 8)).unwrap();
        e.insert(t2("E", 9, 7)).unwrap();
        e.delete(&t2("B", 2, 3)).unwrap();
    });
}
