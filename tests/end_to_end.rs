//! End-to-end integration tests spanning every crate: the five §5.3
//! scenarios through diagnose → generate → backtest → rank, the §5.8
//! cross-language invariants, and the §4.4 MQO consistency claim.

use sdn_meta_repair::core::debugger::{repair_scenario, Debugger};
use sdn_meta_repair::core::scenarios::Scenario;

#[test]
fn every_scenario_generates_and_accepts_repairs() {
    for scenario in Scenario::all() {
        let report = repair_scenario(&scenario);
        assert!(
            report.generated() >= 3,
            "{}: only {} candidates\n{}",
            scenario.id,
            report.generated(),
            report.render_table()
        );
        assert!(
            (1..=5).contains(&report.accepted_count()),
            "{}: {} accepted\n{}",
            scenario.id,
            report.accepted_count(),
            report.render_table()
        );
    }
}

#[test]
fn the_reference_fix_is_generated_and_accepted_everywhere() {
    // Table 1's takeaway: for each query, the repair a human operator
    // would pick is in the final accepted set.
    for scenario in Scenario::all() {
        let report = repair_scenario(&scenario);
        let hit = report
            .outcomes
            .iter()
            .find(|o| o.candidate.description.contains(&scenario.reference_fix));
        let hit = hit.unwrap_or_else(|| {
            panic!(
                "{}: reference fix `{}` not generated\n{}",
                scenario.id,
                scenario.reference_fix,
                report.render_table()
            )
        });
        assert!(
            hit.accepted,
            "{}: reference fix rejected\n{}",
            scenario.id,
            report.render_table()
        );
    }
}

#[test]
fn accepted_repairs_actually_heal_the_network() {
    use sdn_meta_repair::backtest::replay::{replay_with_extra_flows, BacktestSetup};
    let scenario = Scenario::q1_copy_paste();
    let report = repair_scenario(&scenario);
    let setup = BacktestSetup {
        topology: scenario.topology.clone(),
        codec: scenario.codec.clone(),
        seeds: scenario.seeds.clone(),
        workload: scenario.workload.clone().into(),
        config: scenario.sim.clone(),
        proactive_routes: false,
        engine: sdn_meta_repair::runtime::Options::default(),
    };
    for &i in &report.accepted {
        let candidate = &report.outcomes[i].candidate;
        let program = candidate.repair.apply(&scenario.program).unwrap();
        let mut seeds = scenario.seeds.clone();
        candidate.repair.adjust_seeds(&mut seeds);
        // Manual flow-table insertions become pre-installed entries.
        let extra: Vec<(i64, sdn_meta_repair::sdn::FlowEntry)> = Vec::new();
        let mut s = setup.clone();
        s.seeds = seeds;
        let out = replay_with_extra_flows(&s, &program, &extra).unwrap();
        if matches!(candidate.repair, sdn_meta_repair::core::repair::Repair::Patch(_)) {
            assert!(
                scenario.effect.holds(&out.stats),
                "accepted patch `{}` does not heal",
                candidate.description
            );
        }
    }
}

#[test]
fn mqo_agrees_with_sequential_on_every_scenario() {
    // §4.4 correctness: joint tagged backtesting must accept exactly the
    // candidates sequential backtesting accepts.
    for scenario in Scenario::all() {
        let mut with = Debugger::for_scenario(&scenario);
        with.use_mqo = true;
        let mut without = Debugger::for_scenario(&scenario);
        without.use_mqo = false;
        let a = with.diagnose_and_repair().unwrap();
        let b = without.diagnose_and_repair().unwrap();
        let da: Vec<&str> =
            a.accepted.iter().map(|&i| a.outcomes[i].candidate.description.as_str()).collect();
        let db: Vec<&str> =
            b.accepted.iter().map(|&i| b.outcomes[i].candidate.description.as_str()).collect();
        assert_eq!(da, db, "{}: MQO vs sequential acceptance differs", scenario.id);
    }
}

#[test]
fn cross_language_invariants_of_table3() {
    for scenario in Scenario::all() {
        // Trema ports behave like the declarative original.
        let trema = repair_scenario(&scenario.trema_variant());
        assert!(trema.accepted_count() >= 1, "{}-trema accepted nothing", scenario.id);
        // Pyretic: Q4 is unexpressible; elsewhere ≥1 repair survives and
        // no operator mutations appear among candidates.
        match scenario.pyretic_variant() {
            None => assert_eq!(scenario.id, "Q4"),
            Some(py) => {
                let r = repair_scenario(&py);
                assert!(r.accepted_count() >= 1, "{}-pyretic accepted nothing", py.id);
                for o in &r.outcomes {
                    assert!(
                        !o.candidate.description.contains(" != ")
                            && !o.candidate.description.contains(" >= "),
                        "operator repair leaked into Pyretic: {}",
                        o.candidate.description
                    );
                }
            }
        }
    }
}

#[test]
fn meta_interpretation_is_language_semantics() {
    // The Fig. 4 meta program derives the same flow entries as direct
    // evaluation, for the object program both buggy and repaired.
    use sdn_meta_repair::core::metamodel::meta_interpret;
    use sdn_meta_repair::ndlog::{Tuple, Value};
    let program = sdn_meta_repair::core::scenarios::q1_program();
    let base = vec![
        Tuple::new("WebLoadBalancer", Value::str("C"), vec![Value::Int(80), Value::Int(2)]),
        Tuple::new("PacketIn", Value::str("C"), vec![Value::Int(2), Value::Int(80)]),
        Tuple::new("PacketIn", Value::str("C"), vec![Value::Int(3), Value::Int(80)]),
    ];
    let via_meta = meta_interpret(&program, &base, "FlowTable").unwrap();
    assert!(!via_meta.is_empty());
    // The buggy program never derives the S3 HTTP entry.
    assert!(!via_meta
        .iter()
        .any(|t| t.loc == Value::Int(3) && t.args[0] == Value::Int(80)));
}

#[test]
fn provenance_explains_scenario_symptoms() {
    use sdn_meta_repair::provenance::{explain_absent, Pattern};
    use sdn_meta_repair::runtime::Engine;
    use sdn_meta_repair::ndlog::{Tuple, Value};
    let program = sdn_meta_repair::core::scenarios::q1_program();
    let mut engine = Engine::new(&program).unwrap();
    engine
        .insert(Tuple::new("WebLoadBalancer", Value::str("C"), vec![Value::Int(80), Value::Int(2)]))
        .unwrap();
    engine
        .insert(Tuple::new("PacketIn", Value::str("C"), vec![Value::Int(3), Value::Int(80)]))
        .unwrap();
    let pattern = Pattern {
        table: "FlowTable".into(),
        loc: Some(Value::Int(3)),
        args: vec![Some(Value::Int(80)), Some(Value::Int(2))],
    };
    let tree = explain_absent(engine.log(), &program, &pattern, engine.now());
    let rendered = tree.render();
    // The negative provenance pinpoints r7's failed selection — the same
    // root cause the repair generator patches.
    assert!(rendered.contains("r7"), "{rendered}");
    assert!(rendered.contains("Swi == 2"), "{rendered}");
}

#[test]
fn repair_loop_agrees_under_both_eval_strategies() {
    // The whole diagnose → repair-search → backtest loop must be
    // insensitive to the engine's evaluation strategy: same candidates,
    // same acceptance set, same reference fix. The strategy is switched
    // process-wide (every engine the debugger builds inherits it), so the
    // two runs execute back-to-back, not interleaved.
    use sdn_meta_repair::EvalStrategy;
    let scenario = Scenario::q1_copy_paste();
    let run = |strategy: EvalStrategy| {
        EvalStrategy::set_global_default(strategy);
        let report = repair_scenario(&scenario);
        let descriptions: Vec<String> =
            report.outcomes.iter().map(|o| o.candidate.description.clone()).collect();
        let accepted: Vec<String> = report
            .accepted
            .iter()
            .map(|&i| report.outcomes[i].candidate.description.clone())
            .collect();
        (descriptions, accepted)
    };
    let pipelined = run(EvalStrategy::Pipelined);
    let batch = run(EvalStrategy::Batch);
    EvalStrategy::set_global_default(EvalStrategy::Batch);
    assert_eq!(pipelined.0, batch.0, "candidate generation diverges");
    assert_eq!(pipelined.1, batch.1, "acceptance diverges");
    assert!(
        batch.1.iter().any(|d| d.contains(&scenario.reference_fix)),
        "reference fix missing under batch evaluation"
    );
}

#[test]
fn fault_injection_degrades_gracefully() {
    // Lossy links must not break diagnosis: the debugger still returns a
    // report (possibly with fewer accepted candidates) and never panics.
    let mut scenario = Scenario::q1_copy_paste();
    scenario.sim.drop_chance = 0.10;
    scenario.sim.seed = 99;
    let report = repair_scenario(&scenario);
    assert!(report.generated() > 0);
}
