//! Table 6 (Appendix E): candidate repairs for Q2-Q5 with KS statistics.

use mpr_bench::{candidate_listing, header, report_json, write_artifact};
use mpr_core::debugger::repair_scenario;
use mpr_core::scenarios::Scenario;

fn main() {
    let mut artifacts = Vec::new();
    for scenario in Scenario::all().into_iter().skip(1) {
        let report = repair_scenario(&scenario);
        header(&format!(
            "Table 6 ({}): {} — {} generated / {} accepted",
            report.scenario,
            report.query,
            report.generated(),
            report.accepted_count()
        ));
        print!("{}", candidate_listing(&report));
        artifacts.push(report_json(&report));
    }
    write_artifact("table6", &serde_json::json!({ "scenarios": artifacts }));
}
