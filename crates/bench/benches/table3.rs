//! Table 3: the scenarios under the Trema and Pyretic meta models (§5.8).
//! (Paper: Trema 7/2 … 14/3; Pyretic 4/2 … 14/3 with Q4 not expressible.)

use mpr_bench::{header, report_json, write_artifact};
use mpr_core::debugger::repair_scenario;
use mpr_core::scenarios::Scenario;

fn main() {
    header("Table 3: results for Trema and Pyretic (generated / accepted)");
    println!("{:10} {:>10} {:>10}", "", "Trema", "Pyretic");
    let mut artifacts = Vec::new();
    for scenario in Scenario::all() {
        let trema = repair_scenario(&scenario.trema_variant());
        let trema_cell = format!("{}/{}", trema.generated(), trema.accepted_count());
        let (py_cell, py_json) = match scenario.pyretic_variant() {
            Some(py) => {
                let r = repair_scenario(&py);
                (format!("{}/{}", r.generated(), r.accepted_count()), Some(report_json(&r)))
            }
            None => ("-".to_string(), None), // Q4: prevented by the Pyretic runtime
        };
        println!("{:10} {:>10} {:>10}", scenario.id, trema_cell, py_cell);
        artifacts.push(serde_json::json!({
            "scenario": scenario.id,
            "trema": report_json(&trema),
            "pyretic": py_json,
        }));
    }
    write_artifact("table3", &serde_json::json!({ "rows": artifacts }));
    println!("\npaper shape: Trema counts track RapidNet; Pyretic generates fewer for Q1");
    println!("(match() admits only equality, so operator repairs are not expressible);");
    println!("Q4 is '-' under Pyretic (its runtime sends PacketOuts automatically).");
}
