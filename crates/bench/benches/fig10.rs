//! Fig. 10 (Appendix A): scalability of the repair-generation phase with
//! program size (100 → 900 lines). (Paper: linear, with a stable number of
//! repairs — the provenance forest only explores relevant rules.)

use mpr_bench::{header, quick_mode, reps, write_artifact};
use mpr_core::debugger::repair_scenario;
use mpr_core::scenarios::Scenario;

fn main() {
    header("Fig. 10: turnaround vs program size (milliseconds)");
    println!(
        "{:>7} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "Lines", "History", "Constraint", "PatchGen", "Replay", "Total", "Repairs"
    );
    let sizes: &[usize] =
        if quick_mode() { &[100, 300] } else { &[100, 300, 500, 700, 900] };
    let mut series = Vec::new();
    for &lines in sizes {
        let scenario = Scenario::q1_padded(lines);
        // Fastest of `reps()` runs (see fig9a).
        let mut report = repair_scenario(&scenario);
        for _ in 1..reps() {
            let again = repair_scenario(&scenario);
            if again.timings.total() < report.timings.total() {
                report = again;
            }
        }
        let t = &report.timings;
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!(
            "{:>7} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>10}",
            lines,
            ms(t.history_lookups),
            ms(t.constraint_solving),
            ms(t.patch_generation),
            ms(t.replay),
            ms(t.total()),
            report.generated()
        );
        series.push(serde_json::json!({
            "lines": lines,
            "total_ms": ms(t.total()),
            "generated": report.generated(),
            "accepted": report.accepted_count(),
        }));
    }
    write_artifact("fig10", &serde_json::json!({ "series": series }));
    println!("\npaper shape: linear in program size; the number of repairs stays stable");
}
