//! Fig. 9b: time needed to jointly backtest the first k repair candidates
//! from Q1 — sequential vs multi-query optimization (§4.4). (Paper: ~120 s
//! sequential vs ~40 s MQO for all nine; the shape is MQO's growing gap.)

use mpr_backtest::mqo::mqo_replay;
use mpr_backtest::replay::{replay, BacktestSetup};
use mpr_bench::{header, write_artifact};
use mpr_core::explore::generate_missing;
use mpr_core::repair::Repair;
use mpr_core::scenarios::{Scenario, Symptom};
use std::time::Instant;

fn main() {
    let scenario = Scenario::q1_copy_paste();
    let dbg = mpr_core::debugger::Debugger::for_scenario(&scenario);
    let (world, _baseline, _rt, _ht) = dbg.observe().expect("scenario runs");
    let Symptom::Missing(goal) = &scenario.symptom else { unreachable!() };
    let (candidates, _) = generate_missing(&world, goal);
    // Patch-style candidates only (the joint evaluator shares programs).
    let programs: Vec<_> = candidates
        .iter()
        .filter_map(|c| match &c.repair {
            Repair::Patch(p) => p.apply(&scenario.program).ok(),
            _ => None,
        })
        .collect();
    let setup = BacktestSetup {
        topology: scenario.topology.clone(),
        codec: scenario.codec.clone(),
        seeds: scenario.seeds.clone(),
        workload: scenario.workload.clone().into(),
        config: scenario.sim.clone(),
        proactive_routes: false,
        engine: mpr_runtime::Options::default(),
    };
    header("Fig. 9b: backtesting the first k Q1 candidates (milliseconds)");
    println!("{:>3} {:>14} {:>14} {:>8}", "k", "Sequential", "MQO", "Speedup");
    let mut series = Vec::new();
    for k in 1..=programs.len() {
        let subset = &programs[..k];
        // Best of three: single measurements are jittery at ms scale.
        let mut seq = std::time::Duration::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            for p in subset {
                let _ = replay(&setup, p).expect("sequential replay");
            }
            seq = seq.min(t0.elapsed());
        }
        let mut joint = std::time::Duration::MAX;
        let mut outs = Vec::new();
        for _ in 0..3 {
            let t1 = Instant::now();
            outs = mqo_replay(&setup, &scenario.program, subset, &[]);
            joint = joint.min(t1.elapsed());
        }
        assert_eq!(outs.len(), k);
        let speedup = seq.as_secs_f64() / joint.as_secs_f64().max(1e-9);
        println!(
            "{:>3} {:>14.2} {:>14.2} {:>7.2}x",
            k,
            seq.as_secs_f64() * 1e3,
            joint.as_secs_f64() * 1e3,
            speedup
        );
        series.push(serde_json::json!({
            "k": k,
            "sequential_ms": seq.as_secs_f64() * 1e3,
            "mqo_ms": joint.as_secs_f64() * 1e3,
            "speedup": speedup,
        }));
    }
    write_artifact("fig9b", &serde_json::json!({ "series": series }));
    println!("\npaper shape: MQO grows much slower with k than sequential backtesting");
}
