//! §5.4 runtime overhead: latency and throughput of the controller with
//! provenance maintenance on vs off, Cbench-style (stream PacketIns as
//! fast as possible). (Paper: +4.2% latency, −9.8% throughput.)

use mpr_bench::{header, write_artifact};
use mpr_core::scenarios::Scenario;
use mpr_runtime::Options as EngineOptions;
use mpr_sdn::controller::{Controller, NdlogController, PacketInMsg};
use mpr_sdn::packet::Packet;
use std::time::Instant;

fn run(record_events: bool, n: usize) -> (f64, f64) {
    let scenario = Scenario::q1_copy_paste();
    let opts = EngineOptions { record_events, ..EngineOptions::default() };
    let mut ctrl =
        NdlogController::with_options(scenario.program.clone(), scenario.codec.clone(), opts)
            .expect("controller compiles");
    ctrl.seed(scenario.seeds.clone()).expect("seeds");
    let mut replies = Vec::new();
    let t0 = Instant::now();
    for i in 0..n {
        let msg = PacketInMsg {
            switch: 1 + (i as i64 % 5),
            in_port: 0,
            packet: Packet::http(i as u64, 100 + (i as i64 % 7), 10),
        };
        replies.clear();
        ctrl.on_packet_in(&msg, &mut replies);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let latency_us = elapsed * 1e6 / n as f64;
    let throughput = n as f64 / elapsed;
    (latency_us, throughput)
}

fn main() {
    const N: usize = 100_000;
    header("§5.4: provenance maintenance overhead (Cbench-style PacketIn stream)");
    // Warm up both paths, then alternate three rounds and keep the best of
    // each (single runs are jittery; the best run reflects the real cost).
    let _ = run(false, 5_000);
    let _ = run(true, 5_000);
    let (mut lat_off, mut thr_off) = (f64::MAX, 0f64);
    let (mut lat_on, mut thr_on) = (f64::MAX, 0f64);
    for _ in 0..3 {
        let (lo, to) = run(false, N);
        lat_off = lat_off.min(lo);
        thr_off = thr_off.max(to);
        let (ln, tn) = run(true, N);
        lat_on = lat_on.min(ln);
        thr_on = thr_on.max(tn);
    }
    let lat_overhead = (lat_on - lat_off) / lat_off * 100.0;
    let thr_drop = (thr_off - thr_on) / thr_off * 100.0;
    println!("{:28} {:>14} {:>14}", "", "provenance off", "provenance on");
    println!("{:28} {:>14.2} {:>14.2}", "latency (us/packet)", lat_off, lat_on);
    println!("{:28} {:>14.0} {:>14.0}", "throughput (packets/s)", thr_off, thr_on);
    println!("\nlatency overhead: {lat_overhead:+.1}%   throughput reduction: {thr_drop:+.1}%");
    println!("paper: +4.2% latency, -9.8% throughput — single-digit-percent shape");
    write_artifact(
        "overhead",
        &serde_json::json!({
            "n": N,
            "latency_us_off": lat_off,
            "latency_us_on": lat_on,
            "throughput_off": thr_off,
            "throughput_on": thr_on,
            "latency_overhead_pct": lat_overhead,
            "throughput_reduction_pct": thr_drop,
        }),
    );
}
