//! §5.4 disk storage: the rate at which the per-switch log grows under the
//! two campus trace profiles, at 120 bytes per entry. (Paper: 20.2 and
//! 11.4 MB/s per switch — a fraction of commodity SSD write rates.)

use mpr_bench::{header, write_artifact};
use mpr_trace::history::{History, LOG_ENTRY_BYTES};
use mpr_trace::workload::Workload;

fn main() {
    header("§5.4: log storage rates for the two trace profiles");
    let clients: Vec<i64> = (1..=16).collect();
    let profiles = [
        ("profile A (HTTP-heavy)", Workload::trace_profile_a(clients.clone(), vec![10, 20], vec![17]), 20.2),
        ("profile B (DNS-heavy)", Workload::trace_profile_b(clients, vec![10, 20], vec![17]), 11.4),
    ];
    let mut rows = Vec::new();
    println!(
        "{:26} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "profile", "packets", "bytes", "trace pps", "MB/s", "paper MB/s"
    );
    for (name, w, paper_mb_s) in profiles {
        let packets = w.generate();
        let mut h = History::new();
        for (i, (_, p)) in packets.iter().enumerate() {
            h.push(i as u64, 1, 0, p.clone());
        }
        // Each profile's original trace arrives at its own packet rate —
        // that rate, times the fixed 120 B entry, is the per-switch
        // logging bandwidth the paper reports.
        let secs = h.len() as f64 / w.packets_per_sec as f64;
        let rate = h.rate_mb_per_s(secs);
        println!(
            "{:26} {:>10} {:>12} {:>12} {:>10.2} {:>10.2}",
            name,
            h.len(),
            h.storage_bytes(),
            w.packets_per_sec,
            rate,
            paper_mb_s
        );
        rows.push(serde_json::json!({
            "profile": name,
            "entries": h.len(),
            "bytes": h.storage_bytes(),
            "entry_bytes": LOG_ENTRY_BYTES,
            "trace_pps": w.packets_per_sec,
            "mb_per_s": rate,
            "paper_mb_per_s": paper_mb_s,
        }));
    }
    println!("\npaper shape: fixed 120 B/entry; rates well under SSD sequential-write");
    println!("bandwidth, so an hour of history is cheap to retain.");
    write_artifact("storage", &serde_json::json!({ "rows": rows }));
}
