//! Fig. 9c-XL: the scalability sweep continued past the paper's 169
//! switches onto fat-tree/Clos fabrics — 169 → 1k → 4k → 10k switches.
//! This is the headline measurement for the indexed flow tables + memoized
//! routing work: the per-packet simulator path must stay flat enough that
//! the 10k-switch point completes even in quick mode.

use mpr_bench::{header, quick_mode, reps, write_artifact};
use mpr_core::debugger::repair_scenario;
use mpr_core::scenarios::Scenario;

fn main() {
    header("Fig. 9c-XL: turnaround vs fabric size, 169 → 10k switches (milliseconds)");
    println!(
        "{:>9} {:>9} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "Switches", "Hosts", "History", "Constraint", "PatchGen", "Replay", "Total"
    );
    // Quick mode keeps the endpoints: the paper-scale fabric and the 10k
    // target the ISSUE asks to complete under CI.
    let sizes: &[usize] =
        if quick_mode() { &[169, 10_000] } else { &[169, 1_000, 4_096, 10_000] };
    let mut series = Vec::new();
    // Warm up allocators/caches so the first sweep point is not inflated.
    let _ = repair_scenario(&Scenario::q1_on_fabric(169));
    for &switches in sizes {
        let scenario = Scenario::q1_on_fabric(switches);
        let hosts = scenario.topology.hosts.len();
        let mut report = repair_scenario(&scenario);
        for _ in 1..reps() {
            let again = repair_scenario(&scenario);
            if again.timings.total() < report.timings.total() {
                report = again;
            }
        }
        let t = &report.timings;
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!(
            "{:>9} {:>9} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>10.2}",
            scenario.topology.switches.len(),
            hosts,
            ms(t.history_lookups),
            ms(t.constraint_solving),
            ms(t.patch_generation),
            ms(t.replay),
            ms(t.total())
        );
        series.push(serde_json::json!({
            "requested_switches": switches,
            "switches": scenario.topology.switches.len(),
            "hosts": hosts,
            "total_ms": ms(t.total()),
            "replay_ms": ms(t.replay),
            "history_ms": ms(t.history_lookups),
            "generated": report.generated(),
            "accepted": report.accepted_count(),
        }));
    }
    write_artifact("fig9c_xl", &serde_json::json!({ "series": series }));
    println!("\ntarget shape: sublinear per-packet cost; the 10k point completes in quick mode");
}
