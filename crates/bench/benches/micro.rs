//! Criterion micro-benchmarks — ablations for the reproduction's main
//! design choices: pipelined-delta evaluation, the solver's two tiers, flow
//! table lookup, and MQO tag-set construction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mpr_backtest::mqo::build_tagged_program;
use mpr_ndlog::{CmpOp, Tuple, Value};
use mpr_runtime::{Engine, EvalStrategy, Options};
use mpr_sdn::flowtable::{Action, FlowEntry, FlowTable, Match};
use mpr_sdn::packet::{Field, Packet};
use mpr_solver::{Constraint, Pool, STerm};

fn bench_engine(c: &mut Criterion) {
    let program = mpr_core::scenarios::q1_program();
    c.bench_function("engine/packetin_insert", |b| {
        b.iter_batched(
            || Engine::new(&program).unwrap(),
            |mut e| {
                for i in 0..100 {
                    e.insert(Tuple::new(
                        "PacketIn",
                        Value::str("C"),
                        vec![Value::Int(1 + i % 5), Value::Int(80)],
                    ))
                    .unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    // Head-to-head strategy ablation on the identical workload, with the
    // strategy pinned explicitly so the process-global default is irrelevant.
    for strategy in [EvalStrategy::Pipelined, EvalStrategy::Batch] {
        c.bench_function(&format!("engine/packetin_insert/{strategy}"), |b| {
            b.iter_batched(
                || {
                    Engine::with_options(&program, Options { strategy, ..Options::default() })
                        .unwrap()
                },
                |mut e| {
                    for i in 0..100 {
                        e.insert(Tuple::new(
                            "PacketIn",
                            Value::str("C"),
                            vec![Value::Int(1 + i % 5), Value::Int(80)],
                        ))
                        .unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_solver(c: &mut Criterion) {
    // Mini-tier pool (conjunctive, flat).
    let mut mini = Pool::new();
    mini.push(Constraint::eq_var("a", "b"));
    mini.push(Constraint::cmp(STerm::var("a"), CmpOp::Gt, STerm::int(0)));
    mini.push(Constraint::cmp(STerm::var("b"), CmpOp::Lt, STerm::int(9)));
    c.bench_function("solver/mini_tier", |b| b.iter(|| mini.solve()));
    // Search-tier pool (arithmetic forces the second tier).
    let mut search = Pool::new();
    search.push(Constraint::cmp(
        STerm::Add(Box::new(STerm::var("x")), Box::new(STerm::var("y"))),
        CmpOp::Gt,
        STerm::int(1),
    ));
    search.push(Constraint::cmp(STerm::var("x"), CmpOp::Gt, STerm::int(0)));
    c.bench_function("solver/search_tier", |b| b.iter(|| search.solve()));
}

fn bench_flowtable(c: &mut Criterion) {
    let mut ft = FlowTable::new();
    for i in 0..256 {
        ft.install(FlowEntry::new(
            (i % 16) as i32,
            Match::any().with(Field::DstIp, i).with(Field::DstPort, 80),
            vec![Action::Output(i % 8)],
        ));
    }
    let pkt = Packet::http(1, 5, 128);
    c.bench_function("flowtable/lookup_256", |b| b.iter(|| ft.lookup(&pkt, 1)));
}

fn bench_mqo(c: &mut Criterion) {
    let base = mpr_core::scenarios::q1_program();
    let mut candidates = Vec::new();
    for i in 0..9 {
        let mut p = base.clone();
        let r = p.rule_mut("r7").unwrap();
        r.sels[0].rhs = mpr_ndlog::Expr::int(3 + i % 3);
        candidates.push(p);
    }
    c.bench_function("mqo/build_tagged_program_9", |b| {
        b.iter(|| build_tagged_program(&base, &candidates))
    });
}

fn bench_meta(c: &mut Criterion) {
    let program = mpr_core::scenarios::q1_program();
    let base: Vec<Tuple> = (1..=3)
        .map(|s| Tuple::new("PacketIn", Value::str("C"), vec![Value::Int(s), Value::Int(80)]))
        .collect();
    c.bench_function("meta/interpret_fig2", |b| {
        b.iter(|| mpr_core::metamodel::meta_interpret(&program, &base, "FlowTable").unwrap())
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine, bench_solver, bench_flowtable, bench_mqo, bench_meta
);
criterion_main!(micro);
