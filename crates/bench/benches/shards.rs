//! Shard sweep: end-to-end repair turnaround (the Fig. 10 workload) as a
//! function of the evaluation strategy — pipelined and batch baselines,
//! then `Shards(n)` for n = 1, 2, 4, 8 — plus a rounds-heavy transitive
//! closure microbenchmark that isolates the fixpoint itself (the repair
//! loop also spends time in backtests and patch generation, which dilute
//! engine-level wins).
//!
//! Strategy is injected through `EvalStrategy::set_global_default`, which
//! every engine built with default options (the repair pipeline, the
//! backtester) picks up. Expected shape: `shards1` tracks `batch` (sharded
//! rounds degrade to the sequential loop at one worker), and speedup over
//! `batch` grows toward core count on rounds-heavy workloads; on a
//! single-core host the sweep documents that the guardrails
//! (`shard_min_round`) keep the overhead within noise.

use mpr_bench::{header, quick_mode, reps, write_artifact};
use mpr_core::debugger::repair_scenario;
use mpr_core::scenarios::Scenario;
use mpr_ndlog::{parse_program, Tuple, Value};
use mpr_runtime::{Engine, EvalStrategy, Options};
use std::time::Instant;

fn strategies() -> Vec<EvalStrategy> {
    let shards = if quick_mode() { vec![1, 2, 4] } else { vec![1, 2, 4, 8] };
    let mut v = vec![EvalStrategy::Pipelined, EvalStrategy::Batch];
    v.extend(shards.into_iter().map(EvalStrategy::Shards));
    v
}

/// Fig. 10 workload (100-line program) under one strategy: fastest-of-reps
/// total repair turnaround in milliseconds.
fn repair_total_ms(lines: usize) -> f64 {
    let scenario = Scenario::q1_padded(lines);
    let mut best = repair_scenario(&scenario).timings.total();
    for _ in 1..reps() {
        let t = repair_scenario(&scenario).timings.total();
        if t < best {
            best = t;
        }
    }
    best.as_secs_f64() * 1e3
}

/// Transitive closure over a chain-with-chords graph: deep semi-naive
/// rounds with wide deltas — the shape sharding targets.
fn closure_ms(strategy: EvalStrategy, nodes: i64) -> f64 {
    let p = parse_program(
        "tc",
        r"
        materialize(Link, infinity, 2, keys(0,1)).
        materialize(Reach, infinity, 2, keys(0,1)).
        r1 Reach(@C,X,Y) :- Link(@C,X,Y), X != Y.
        r2 Reach(@C,X,Z) :- Reach(@C,X,Y), Link(@C,Y,Z), X != Z.
        ",
    )
    .unwrap();
    let c = Value::str("C");
    let edges: Vec<Tuple> = (0..nodes - 1)
        .map(|i| Tuple::new("Link", c.clone(), vec![Value::Int(i), Value::Int(i + 1)]))
        .chain((0..nodes - 7).step_by(5).map(|i| {
            Tuple::new("Link", c.clone(), vec![Value::Int(i + 7), Value::Int(i)])
        }))
        .collect();
    let mut best = f64::INFINITY;
    for _ in 0..reps() {
        let mut e = Engine::with_options(
            &p,
            Options { strategy, record_events: false, ..Options::default() },
        )
        .unwrap();
        let t0 = Instant::now();
        for edge in &edges {
            e.insert(edge.clone()).unwrap();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    header("Shard sweep: evaluation strategy vs turnaround (milliseconds)");
    let lines = 100;
    let tc_nodes: i64 = if quick_mode() { 48 } else { 96 };
    println!(
        "{:>10} {:>14} {:>14}",
        "Strategy",
        format!("fig10({lines})"),
        format!("closure({tc_nodes})")
    );
    let mut series = Vec::new();
    for strategy in strategies() {
        EvalStrategy::set_global_default(strategy);
        let fig10_ms = repair_total_ms(lines);
        let tc_ms = closure_ms(strategy, tc_nodes);
        println!("{:>10} {:>14.2} {:>14.2}", strategy.to_string(), fig10_ms, tc_ms);
        series.push(serde_json::json!({
            "strategy": strategy.to_string(),
            "fig10_total_ms": fig10_ms,
            "closure_ms": tc_ms,
        }));
    }
    EvalStrategy::set_global_default(EvalStrategy::Batch);
    write_artifact("shards", &serde_json::json!({ "lines": lines, "series": series }));
    println!("\npaper shape: sharded rounds track batch at 1 worker and scale with cores");
}
