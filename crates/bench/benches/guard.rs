//! Perf guard: compare the fig10 quick-mode artifact written by the
//! current build against the pinned `BENCH_fig10_quick.json` baseline and
//! fail (exit 1) on a >25% aggregate regression.
//!
//! Run *after* `cargo bench --bench fig10` with `MPR_BENCH_QUICK=1`; when
//! the artifact or the pinned baseline is missing (a bare local `cargo
//! bench` in any order), the guard skips with exit 0 instead of failing.

use mpr_bench::{artifact_dir, header, quick_mode};
use std::path::PathBuf;

/// Allowed regression: current may be at most 1.25× the pinned baseline.
const MAX_REGRESSION: f64 = 1.25;

fn total_ms(v: &serde_json::Value) -> Option<f64> {
    let mut sum = 0.0;
    for point in v.get("series")?.as_array()? {
        sum += point.get("total_ms")?.as_f64()?;
    }
    Some(sum)
}

fn load(path: &PathBuf) -> Option<serde_json::Value> {
    let s = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&s).ok()
}

fn main() {
    header("Perf guard: fig10 quick mode vs pinned baseline");
    if !quick_mode() {
        println!("skip: only meaningful under MPR_BENCH_QUICK=1 (pinned baseline is quick-mode)");
        return;
    }
    let current_path = artifact_dir().join("fig10.json");
    let pinned_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fig10_quick.json");
    let (Some(current), Some(pinned)) = (load(&current_path), load(&pinned_path)) else {
        println!(
            "skip: missing {} or {} (run `cargo bench --bench fig10` first)",
            current_path.display(),
            pinned_path.display()
        );
        return;
    };
    let (Some(cur_ms), Some(base_ms)) = (total_ms(&current), total_ms(&pinned)) else {
        println!("skip: artifact shape unrecognized");
        return;
    };
    let ratio = cur_ms / base_ms;
    println!("pinned total: {base_ms:>10.2} ms");
    println!("current total:{cur_ms:>10.2} ms  ({ratio:.2}x)");
    if ratio > MAX_REGRESSION {
        eprintln!(
            "PERF REGRESSION: fig10 quick-mode total {cur_ms:.2} ms exceeds \
             {MAX_REGRESSION}x the pinned {base_ms:.2} ms"
        );
        std::process::exit(1);
    }
    println!("ok: within the {MAX_REGRESSION}x budget");
}
