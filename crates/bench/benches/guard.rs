//! Perf guard: compare the quick-mode artifacts written by the current
//! build against their pinned baselines and fail (exit 1) on regression:
//!
//! - `fig10.json` vs `BENCH_fig10_quick.json` — >25% aggregate turnaround
//!   regression;
//! - `durability.json` vs `BENCH_durability.json` — WAL-on turnaround
//!   exceeding 2× the in-memory baseline (the durability acceptance bar),
//!   or >25% regression against the pinned WAL numbers.
//!
//! Run *after* `cargo bench --bench fig10 --bench durability` with
//! `MPR_BENCH_QUICK=1`; when an artifact or its pinned baseline is
//! missing (a bare local `cargo bench` in any order), that check skips
//! instead of failing.

use mpr_bench::{artifact_dir, header, quick_mode};
use std::path::PathBuf;

/// Allowed regression: current may be at most 1.25× the pinned baseline.
const MAX_REGRESSION: f64 = 1.25;

/// Allowed WAL overhead: journaling every store mutation may cost at most
/// this multiple of the in-memory turnaround.
const MAX_WAL_OVERHEAD: f64 = 2.0;

fn total_ms(v: &serde_json::Value) -> Option<f64> {
    let mut sum = 0.0;
    for point in v.get("series")?.as_array()? {
        sum += point.get("total_ms")?.as_f64()?;
    }
    Some(sum)
}

fn load(path: &PathBuf) -> Option<serde_json::Value> {
    let s = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&s).ok()
}

/// Sum a per-point field over the artifact's `series`.
fn series_sum(v: &serde_json::Value, field: &str) -> Option<f64> {
    let mut sum = 0.0;
    for point in v.get("series")?.as_array()? {
        sum += point.get(field)?.as_f64()?;
    }
    Some(sum)
}

/// `true` when the fig10 check passed (or skipped), `false` on regression.
fn guard_fig10() -> bool {
    let current_path = artifact_dir().join("fig10.json");
    let pinned_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fig10_quick.json");
    let (Some(current), Some(pinned)) = (load(&current_path), load(&pinned_path)) else {
        println!(
            "skip fig10: missing {} or {} (run `cargo bench --bench fig10` first)",
            current_path.display(),
            pinned_path.display()
        );
        return true;
    };
    let (Some(cur_ms), Some(base_ms)) = (total_ms(&current), total_ms(&pinned)) else {
        println!("skip fig10: artifact shape unrecognized");
        return true;
    };
    let ratio = cur_ms / base_ms;
    println!("fig10 pinned total:  {base_ms:>10.2} ms");
    println!("fig10 current total: {cur_ms:>10.2} ms  ({ratio:.2}x)");
    if ratio > MAX_REGRESSION {
        eprintln!(
            "PERF REGRESSION: fig10 quick-mode total {cur_ms:.2} ms exceeds \
             {MAX_REGRESSION}x the pinned {base_ms:.2} ms"
        );
        return false;
    }
    println!("ok: fig10 within the {MAX_REGRESSION}x budget");
    true
}

/// `true` when the durability check passed (or skipped).
fn guard_durability() -> bool {
    let current_path = artifact_dir().join("durability.json");
    let pinned_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_durability.json");
    let (Some(current), Some(pinned)) = (load(&current_path), load(&pinned_path)) else {
        println!(
            "skip durability: missing {} or {} (run `cargo bench --bench durability` first)",
            current_path.display(),
            pinned_path.display()
        );
        return true;
    };
    let (Some(cur_mem), Some(cur_wal)) =
        (series_sum(&current, "mem_ms"), series_sum(&current, "wal_ms"))
    else {
        println!("skip durability: artifact shape unrecognized");
        return true;
    };
    let overhead = cur_wal / cur_mem;
    println!("durability current:  mem {cur_mem:>8.2} ms, wal {cur_wal:>8.2} ms  ({overhead:.2}x)");
    let mut ok = true;
    if overhead > MAX_WAL_OVERHEAD {
        eprintln!(
            "DURABILITY OVERHEAD: WAL-on turnaround is {overhead:.2}x the in-memory \
             baseline (bar: {MAX_WAL_OVERHEAD}x)"
        );
        ok = false;
    }
    if let Some(base_wal) = series_sum(&pinned, "wal_ms") {
        let ratio = cur_wal / base_wal;
        println!("durability pinned:   wal {base_wal:>8.2} ms  (current {ratio:.2}x)");
        if ratio > MAX_REGRESSION {
            eprintln!(
                "PERF REGRESSION: WAL-on turnaround {cur_wal:.2} ms exceeds \
                 {MAX_REGRESSION}x the pinned {base_wal:.2} ms"
            );
            ok = false;
        }
    }
    if ok {
        println!("ok: durability within the {MAX_WAL_OVERHEAD}x overhead / {MAX_REGRESSION}x regression budgets");
    }
    ok
}

fn main() {
    header("Perf guard: quick-mode artifacts vs pinned baselines");
    if !quick_mode() {
        println!("skip: only meaningful under MPR_BENCH_QUICK=1 (pinned baselines are quick-mode)");
        return;
    }
    let ok = guard_fig10() & guard_durability();
    if !ok {
        std::process::exit(1);
    }
}
