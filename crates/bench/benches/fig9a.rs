//! Fig. 9a: time to generate the repairs for each scenario, broken into
//! history lookups / constraint solving / patch generation / replay.
//! (Paper: < 25 s per scenario on their testbed; ours is a simulator, so
//! absolute numbers are much smaller — the *composition* is the shape.)

use mpr_bench::{header, quick_mode, reps, write_artifact};
use mpr_core::debugger::repair_scenario;
use mpr_core::scenarios::Scenario;

fn main() {
    header("Fig. 9a: repair-generation turnaround per scenario (milliseconds)");
    println!(
        "{:8} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "Scenario", "History", "Constraint", "PatchGen", "Replay", "Total"
    );
    let mut scenarios = Scenario::all();
    if quick_mode() {
        scenarios.truncate(1); // Q1 alone smoke-tests the whole pipeline
    }
    let mut series = Vec::new();
    for scenario in scenarios {
        // Fastest of `reps()` runs — turnaround, not throughput, so the
        // minimum is the least noisy estimator.
        let mut report = repair_scenario(&scenario);
        for _ in 1..reps() {
            let again = repair_scenario(&scenario);
            if again.timings.total() < report.timings.total() {
                report = again;
            }
        }
        let t = &report.timings;
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!(
            "{:8} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>10.2}",
            report.scenario,
            ms(t.history_lookups),
            ms(t.constraint_solving),
            ms(t.patch_generation),
            ms(t.replay),
            ms(t.total())
        );
        series.push(serde_json::json!({
            "scenario": report.scenario,
            "history_ms": ms(t.history_lookups),
            "constraint_ms": ms(t.constraint_solving),
            "patchgen_ms": ms(t.patch_generation),
            "replay_ms": ms(t.replay),
            "total_ms": ms(t.total()),
            "trees": report.trees,
            "pools_solved": report.pools_solved,
        }));
    }
    write_artifact("fig9a", &serde_json::json!({ "series": series }));
}
