//! Durability overhead: the fig10 turnaround sweep run twice — tuple
//! store in memory only (`Durability::Mem`, the zero-cost default) vs
//! journaling every mutation through the write-ahead log
//! (`Durability::Wal`) — reporting the WAL's cost on the full
//! diagnose → repair → backtest loop. The pinned acceptance bar
//! (`BENCH_durability.json`, enforced by the `guard` target) is a WAL/Mem
//! ratio of at most 2x.

use mpr_bench::{header, quick_mode, reps, write_artifact};
use mpr_core::debugger::Debugger;
use mpr_core::scenarios::Scenario;
use mpr_runtime::{Durability, WalOptions};

/// Fastest-of-`reps()` repair-loop turnaround (ms) under `durability`.
fn turnaround_ms(scenario: &Scenario, durability: &Durability) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps() {
        let mut dbg = Debugger::for_scenario(scenario);
        dbg.engine_options.durability = durability.clone();
        let report = dbg.diagnose_and_repair().expect("repair loop failed");
        assert!(report.generated() > 0, "loop degenerated under {durability}");
        best = best.min(report.timings.total().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    header("Durability: fig10 turnaround with the WAL on vs off (milliseconds)");
    println!("{:>7} {:>10} {:>10} {:>7}", "Lines", "Mem", "WAL", "ratio");
    let sizes: &[usize] = if quick_mode() { &[100, 300] } else { &[100, 300, 500] };
    let scratch = std::env::temp_dir().join(format!("mpr-bench-durability-{}", std::process::id()));
    let mut series = Vec::new();
    for &lines in sizes {
        let scenario = Scenario::q1_padded(lines);
        let mem_ms = turnaround_ms(&scenario, &Durability::Mem);
        let _ = std::fs::remove_dir_all(&scratch);
        let wal = Durability::Wal(WalOptions::new(&scratch));
        let wal_ms = turnaround_ms(&scenario, &wal);
        let _ = std::fs::remove_dir_all(&scratch);
        let ratio = wal_ms / mem_ms;
        println!("{lines:>7} {mem_ms:>10.2} {wal_ms:>10.2} {ratio:>6.2}x");
        series.push(serde_json::json!({
            "lines": lines,
            "mem_ms": mem_ms,
            "wal_ms": wal_ms,
            "ratio": ratio,
        }));
    }
    write_artifact("durability", &serde_json::json!({ "series": series }));
    println!("\nacceptance shape: WAL-on stays within 2x of the in-memory baseline");
}
