//! Fig. 9c: scalability of the repair-generation phase with network size
//! (19 → 169 switches). (Paper: linear growth, ≤ 50 s; ours: linear in the
//! same sweep, milliseconds on the simulator substrate.)

use mpr_bench::{header, write_artifact};
use mpr_core::debugger::repair_scenario;
use mpr_core::scenarios::Scenario;

fn main() {
    header("Fig. 9c: turnaround vs number of switches (milliseconds)");
    println!(
        "{:>9} {:>9} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "Switches", "Hosts", "History", "Constraint", "PatchGen", "Replay", "Total"
    );
    let mut series = Vec::new();
    // Warm up allocators/caches so the first sweep point is not inflated.
    let _ = repair_scenario(&Scenario::q1_on_campus(19));
    for switches in [19usize, 49, 79, 109, 139, 169] {
        let scenario = Scenario::q1_on_campus(switches);
        let hosts = scenario.topology.hosts.len();
        let report = repair_scenario(&scenario);
        let t = &report.timings;
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!(
            "{:>9} {:>9} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>10.2}",
            scenario.topology.switches.len(),
            hosts,
            ms(t.history_lookups),
            ms(t.constraint_solving),
            ms(t.patch_generation),
            ms(t.replay),
            ms(t.total())
        );
        series.push(serde_json::json!({
            "switches": scenario.topology.switches.len(),
            "hosts": hosts,
            "total_ms": ms(t.total()),
            "replay_ms": ms(t.replay),
            "history_ms": ms(t.history_lookups),
            "generated": report.generated(),
            "accepted": report.accepted_count(),
        }));
    }
    write_artifact("fig9c", &serde_json::json!({ "series": series }));
    println!("\npaper shape: linear in network size, dominated by lookups + replay");
}
