//! Chaos sweep + injection-layer overhead.
//!
//! Part 1 sweeps randomized fault schedules (every [`FaultClass`], fixed
//! seeds) over the §5.3 scenarios and reports the recovery rate by fault
//! class — the EXPERIMENTS.md chaos table comes from this run.
//!
//! Part 2 measures what the *disabled* fault-injection layer costs: the
//! Fig. 10 (100-line) repair loop with the default empty [`FaultPlan`],
//! compared against the pinned pre-injection baseline in
//! `BENCH_fig10.json`. The layer is one `is_empty()` branch per simulator
//! event, so the expected answer is ~0.

use mpr_bench::{header, quick_mode, reps, write_artifact};
use mpr_core::chaos::{self, FaultClass};
use mpr_core::debugger::repair_scenario;
use mpr_core::scenarios::Scenario;

fn main() {
    header("Chaos sweep: repair-loop recovery rate by fault class");
    let seeds: Vec<u64> =
        if quick_mode() { vec![1, 2, 3, 5, 8, 13, 21, 34] } else { (0..16).collect() };
    let scenarios = if quick_mode() {
        vec![Scenario::q1_copy_paste(), Scenario::fig7_harmful_entry()]
    } else {
        Scenario::all()
    };
    let report = chaos::sweep(&scenarios, &FaultClass::ALL, &seeds);
    print!("{}", report.render_table());
    let survivors = report.survivors();
    println!(
        "\n{} probes, {} survivors (schedules the loop could not recover from)",
        report.outcomes.len(),
        survivors.len()
    );
    for s in &survivors {
        println!("  SURVIVOR {} / {} / seed {}: {:?}", s.scenario, s.class.name(), s.seed, s.error);
    }
    let mut classes = Vec::new();
    for class in FaultClass::ALL {
        let (rec, total) = report.recovery_rate(class);
        classes.push(serde_json::json!({
            "class": class.name(),
            "recovered": rec,
            "total": total,
        }));
    }

    header("Injection-layer overhead: Fig. 10 (100 lines), faults disabled");
    let scenario = Scenario::q1_padded(100);
    let mut best = f64::MAX;
    let mut generated = 0;
    for _ in 0..reps().max(3) {
        let r = repair_scenario(&scenario);
        best = best.min(r.timings.total().as_secs_f64() * 1e3);
        generated = r.generated();
    }
    println!("fig10(100) total: {best:.2} ms, {generated} repairs (empty FaultPlan in the hot path)");
    println!("compare BENCH_fig10.json lines=100 for the pinned baseline");

    write_artifact(
        "chaos",
        &serde_json::json!({
            "seeds": seeds,
            "scenarios": scenarios.iter().map(|s| s.id.clone()).collect::<Vec<_>>(),
            "recovery_by_class": classes,
            "survivors": survivors.len(),
            "fig10_100_faults_disabled_ms": best,
        }),
    );
    println!("\npaper shape: the loop degrades, it does not die — recovery stays at 100%");
}
