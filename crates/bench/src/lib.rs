//! # mpr-bench — the evaluation harness
//!
//! One bench target per table and figure of the paper's evaluation (§5 and
//! the appendices). Every target prints the same rows/series the paper
//! reports and writes a JSON artifact under `target/paper-results/` so the
//! README's figure→bench mapping can cite exact numbers.
//!
//! | target     | reproduces |
//! |------------|------------|
//! | `table1`   | Table 1 — queries Q1–Q5, candidates generated/surviving |
//! | `table2`   | Table 2 — Q1 candidate list with KS statistics |
//! | `table3`   | Table 3 — Trema and Pyretic results |
//! | `table6`   | Table 6 — Q2–Q5 candidate lists (Appendix E) |
//! | `fig9a`    | Fig. 9a — repair-generation turnaround breakdown |
//! | `fig9b`    | Fig. 9b — sequential vs MQO backtesting of first k |
//! | `fig9c`    | Fig. 9c — turnaround vs network size |
//! | `fig10`    | Fig. 10 — turnaround vs program size (Appendix A) |
//! | `overhead` | §5.4 — provenance latency/throughput overhead |
//! | `storage`  | §5.4 — log storage rates |
//! | `micro`    | criterion ablations (engine, solver tiers, MQO, tables) |
//! | `durability` | fig10 turnaround with the WAL on vs off (journaling overhead) |

use mpr_core::debugger::RepairReport;
use std::fs;
use std::path::PathBuf;

/// Whether `MPR_BENCH_QUICK` asks for a smoke-test pass. CI sets this to
/// keep the fig9a/fig10 targets to a few seconds: quick mode shrinks the
/// scenario sets and sweep sizes while still exercising the full
/// diagnose → repair → backtest pipeline.
pub fn quick_mode() -> bool {
    std::env::var("MPR_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Repetitions for the turnaround sweeps: each configuration runs this
/// many times and the fastest run is reported, which suppresses scheduler
/// noise on a shared machine (1 in quick mode).
pub fn reps() -> usize {
    if quick_mode() {
        1
    } else {
        3
    }
}

/// Where JSON artifacts land (`target/paper-results/`).
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/paper-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Write a JSON artifact.
pub fn write_artifact(name: &str, json: &serde_json::Value) {
    let path = artifact_dir().join(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(json) {
        let _ = fs::write(&path, s);
        eprintln!("[artifact] {}", path.display());
    }
}

/// Print a horizontal rule + header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Format a repair report row in Table 1 style (`generated/accepted`).
pub fn table1_row(report: &RepairReport) -> String {
    format!(
        "{:10} {:58} {:>2}/{}",
        report.scenario,
        report.query,
        report.generated(),
        report.accepted_count()
    )
}

/// Render a Table 2/6-style candidate listing.
pub fn candidate_listing(report: &RepairReport) -> String {
    let mut out = String::new();
    for (i, o) in report.outcomes.iter().enumerate() {
        let letter = (b'A' + (i as u8 % 26)) as char;
        let verdict = if o.accepted { "3" } else { "5" }; // the paper's ✓/✗ glyph slots
        out.push_str(&format!(
            "{letter} {:64} ({verdict}) {:.5}\n",
            o.candidate.description, o.ks.d
        ));
    }
    out
}

/// Serialize the interesting bits of a report.
pub fn report_json(report: &RepairReport) -> serde_json::Value {
    serde_json::json!({
        "scenario": report.scenario,
        "query": report.query,
        "generated": report.generated(),
        "accepted": report.accepted_count(),
        "candidates": report.outcomes.iter().map(|o| serde_json::json!({
            "description": o.candidate.description,
            "cost": o.candidate.cost,
            "effective": o.effective,
            "ks_d": o.ks.d,
            "ks_critical": o.ks.critical,
            "accepted": o.accepted,
        })).collect::<Vec<_>>(),
        "timings_ms": {
            "history_lookups": report.timings.history_lookups.as_secs_f64() * 1e3,
            "constraint_solving": report.timings.constraint_solving.as_secs_f64() * 1e3,
            "patch_generation": report.timings.patch_generation.as_secs_f64() * 1e3,
            "replay": report.timings.replay.as_secs_f64() * 1e3,
            "total": report.timings.total().as_secs_f64() * 1e3,
        },
    })
}
