//! Property tests for the solver: every SAT witness actually satisfies the
//! pool, negation flips satisfaction, and enumeration yields distinct
//! satisfying values.

use mpr_ndlog::{CmpOp, Value};
use mpr_solver::{Assignment, Constraint, Pool, STerm};
use proptest::prelude::*;

const VARS: [&str; 4] = ["x", "y", "z", "w"];

fn sterm() -> impl Strategy<Value = STerm> {
    let leaf = prop_oneof![
        prop::sample::select(VARS.to_vec()).prop_map(STerm::var),
        (-8i64..8).prop_map(STerm::int),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (inner.clone(), inner).prop_map(|(l, r)| STerm::Add(Box::new(l), Box::new(r)))
    })
}

fn cmp() -> impl Strategy<Value = Constraint> {
    (sterm(), prop::sample::select(CmpOp::ALL.to_vec()), sterm())
        .prop_map(|(l, op, r)| Constraint::cmp(l, op, r))
}

fn constraint() -> impl Strategy<Value = Constraint> {
    cmp().prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Constraint::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Constraint::Or),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Constraint::Implies(Box::new(a), Box::new(b))),
            inner.prop_map(|c| Constraint::Not(Box::new(c))),
        ]
    })
}

fn full_assignment() -> impl Strategy<Value = Assignment> {
    prop::collection::vec(-8i64..8, 4).prop_map(|vals| {
        let mut a = Assignment::new();
        for (v, val) in VARS.iter().zip(vals) {
            a.set(*v, Value::Int(val));
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sat_witnesses_satisfy(cs in prop::collection::vec(constraint(), 1..4)) {
        let mut p = Pool::new();
        for c in cs {
            p.push(c);
        }
        if let Some(asg) = p.solve().assignment() {
            prop_assert!(p.satisfied_by(asg), "witness {asg} violates pool");
        }
    }

    #[test]
    fn negation_flips_ground_truth(c in constraint(), asg in full_assignment()) {
        let v = c.eval_partial(&asg);
        let nv = c.negate().eval_partial(&asg);
        // Fully bound integer assignments always decide comparisons.
        if let (Some(a), Some(b)) = (v, nv) {
            prop_assert_ne!(a, b, "negation did not flip: {}", c);
        }
    }

    #[test]
    fn solver_is_complete_for_witnessed_pools(cs in prop::collection::vec(cmp(), 1..4), asg in full_assignment()) {
        // Build a pool that `asg` satisfies by construction; the solver
        // must find *some* witness (not necessarily the same one).
        let mut p = Pool::new();
        let mut any = false;
        for c in cs {
            if c.eval_partial(&asg) == Some(true) {
                p.push(c);
                any = true;
            }
        }
        prop_assume!(any);
        // Give the solver the ground-truth values as candidates so the
        // search tier is never starved by its heuristic domain.
        for v in VARS {
            let mut dom: Vec<Value> = (-8..8).map(Value::Int).collect();
            if let Some(val) = asg.get(v) {
                dom.insert(0, val.clone());
            }
            p.set_domain(v, dom);
        }
        prop_assert!(p.solve().is_sat(), "pool satisfiable by {asg} reported unsat");
    }

    #[test]
    fn enumerate_values_are_distinct_and_satisfying(n in 1usize..5) {
        let mut p = Pool::new();
        p.push(Constraint::cmp(STerm::var("x"), CmpOp::Ge, STerm::int(0)));
        p.set_domain("x", (0..10).map(Value::Int).collect());
        let vals = p.enumerate("x", n);
        prop_assert_eq!(vals.len(), n);
        let set: std::collections::BTreeSet<_> = vals.iter().cloned().collect();
        prop_assert_eq!(set.len(), n);
        for v in vals {
            prop_assert!(v.as_int().unwrap() >= 0);
        }
    }
}
