//! Constraint pools (§3.4).
//!
//! While expanding a meta provenance tree, the explorer "encodes the
//! attributes of tuples as variables, and formulates constraints over these
//! variables": join equalities (`B0.x == C0.x`), selection predicates
//! (`C0.x + C0.y > 1`), head equalities, and primary-key implications
//! (`D.x == D0.x implies D.y == 1`). This module is the constraint
//! language; [`crate::solve`] is the two-tier solver.

use mpr_ndlog::{CmpOp, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A symbolic term: a variable (named like `Const0.Val`), a literal value,
/// or integer arithmetic over sub-terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum STerm {
    /// A solver variable.
    Var(String),
    /// A literal.
    Val(Value),
    /// Integer addition.
    Add(Box<STerm>, Box<STerm>),
    /// Integer subtraction.
    Sub(Box<STerm>, Box<STerm>),
    /// Integer multiplication.
    Mul(Box<STerm>, Box<STerm>),
}

impl STerm {
    /// Variable shorthand.
    pub fn var(name: impl Into<String>) -> Self {
        STerm::Var(name.into())
    }

    /// Integer literal shorthand.
    pub fn int(v: i64) -> Self {
        STerm::Val(Value::Int(v))
    }

    /// All variables in the term.
    pub fn vars(&self, out: &mut BTreeSet<String>) {
        match self {
            STerm::Var(v) => {
                out.insert(v.clone());
            }
            STerm::Val(_) => {}
            STerm::Add(l, r) | STerm::Sub(l, r) | STerm::Mul(l, r) => {
                l.vars(out);
                r.vars(out);
            }
        }
    }

    /// Evaluate under a (partial) assignment. `None` when a variable is
    /// unbound or arithmetic is applied to non-integers.
    pub fn eval(&self, asg: &Assignment) -> Option<Value> {
        match self {
            STerm::Var(v) => asg.get(v).cloned(),
            STerm::Val(v) => Some(v.clone()),
            STerm::Add(l, r) => arith(l, r, asg, |a, b| a.checked_add(b)),
            STerm::Sub(l, r) => arith(l, r, asg, |a, b| a.checked_sub(b)),
            STerm::Mul(l, r) => arith(l, r, asg, |a, b| a.checked_mul(b)),
        }
    }

    /// All integer literals mentioned (used to seed candidate domains).
    pub fn literals(&self, out: &mut BTreeSet<Value>) {
        match self {
            STerm::Var(_) => {}
            STerm::Val(v) => {
                out.insert(v.clone());
            }
            STerm::Add(l, r) | STerm::Sub(l, r) | STerm::Mul(l, r) => {
                l.literals(out);
                r.literals(out);
            }
        }
    }
}

fn arith(
    l: &STerm,
    r: &STerm,
    asg: &Assignment,
    f: impl Fn(i64, i64) -> Option<i64>,
) -> Option<Value> {
    let a = l.eval(asg)?.as_int()?;
    let b = r.eval(asg)?.as_int()?;
    f(a, b).map(Value::Int)
}

impl fmt::Display for STerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            STerm::Var(v) => f.write_str(v),
            STerm::Val(v) => write!(f, "{v}"),
            STerm::Add(l, r) => write!(f, "({l} + {r})"),
            STerm::Sub(l, r) => write!(f, "({l} - {r})"),
            STerm::Mul(l, r) => write!(f, "({l} * {r})"),
        }
    }
}

/// A constraint over symbolic terms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    /// `lhs op rhs`.
    Cmp {
        /// Left term.
        lhs: STerm,
        /// Operator.
        op: CmpOp,
        /// Right term.
        rhs: STerm,
    },
    /// Conjunction.
    And(Vec<Constraint>),
    /// Disjunction.
    Or(Vec<Constraint>),
    /// `if cond then cons` (primary-key constraints, §3.4).
    Implies(Box<Constraint>, Box<Constraint>),
    /// Negation.
    Not(Box<Constraint>),
    /// Always true (unit of And).
    True,
    /// Always false (unit of Or).
    False,
}

impl Constraint {
    /// `lhs op rhs` shorthand.
    pub fn cmp(lhs: STerm, op: CmpOp, rhs: STerm) -> Self {
        Constraint::Cmp { lhs, op, rhs }
    }

    /// `var == value` shorthand.
    pub fn eq_val(var: impl Into<String>, value: Value) -> Self {
        Constraint::cmp(STerm::var(var), CmpOp::Eq, STerm::Val(value))
    }

    /// `var1 == var2` shorthand.
    pub fn eq_var(a: impl Into<String>, b: impl Into<String>) -> Self {
        Constraint::cmp(STerm::var(a), CmpOp::Eq, STerm::var(b))
    }

    /// All variables mentioned.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Constraint::Cmp { lhs, rhs, .. } => {
                lhs.vars(out);
                rhs.vars(out);
            }
            Constraint::And(cs) | Constraint::Or(cs) => {
                for c in cs {
                    c.collect_vars(out);
                }
            }
            Constraint::Implies(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Constraint::Not(c) => c.collect_vars(out),
            Constraint::True | Constraint::False => {}
        }
    }

    /// All literals mentioned (seeds candidate domains).
    pub fn literals(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        self.collect_literals(&mut out);
        out
    }

    fn collect_literals(&self, out: &mut BTreeSet<Value>) {
        match self {
            Constraint::Cmp { lhs, rhs, .. } => {
                lhs.literals(out);
                rhs.literals(out);
            }
            Constraint::And(cs) | Constraint::Or(cs) => {
                for c in cs {
                    c.collect_literals(out);
                }
            }
            Constraint::Implies(a, b) => {
                a.collect_literals(out);
                b.collect_literals(out);
            }
            Constraint::Not(c) => c.collect_literals(out),
            Constraint::True | Constraint::False => {}
        }
    }

    /// Logical negation, with `Not` pushed inward (comparisons flip their
    /// operator; De Morgan elsewhere).
    pub fn negate(&self) -> Constraint {
        match self {
            Constraint::Cmp { lhs, op, rhs } => {
                Constraint::Cmp { lhs: lhs.clone(), op: op.negate(), rhs: rhs.clone() }
            }
            Constraint::And(cs) => Constraint::Or(cs.iter().map(Constraint::negate).collect()),
            Constraint::Or(cs) => Constraint::And(cs.iter().map(Constraint::negate).collect()),
            Constraint::Implies(a, b) => {
                Constraint::And(vec![(**a).clone(), b.negate()])
            }
            Constraint::Not(c) => (**c).clone(),
            Constraint::True => Constraint::False,
            Constraint::False => Constraint::True,
        }
    }

    /// Three-valued evaluation under a partial assignment: `Some(bool)`
    /// when decidable, `None` when unbound variables leave it open.
    pub fn eval_partial(&self, asg: &Assignment) -> Option<bool> {
        match self {
            Constraint::Cmp { lhs, op, rhs } => {
                let l = lhs.eval(asg)?;
                let r = rhs.eval(asg)?;
                Some(op.eval(&l, &r))
            }
            Constraint::And(cs) => {
                let mut open = false;
                for c in cs {
                    match c.eval_partial(asg) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => open = true,
                    }
                }
                if open {
                    None
                } else {
                    Some(true)
                }
            }
            Constraint::Or(cs) => {
                let mut open = false;
                for c in cs {
                    match c.eval_partial(asg) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => open = true,
                    }
                }
                if open {
                    None
                } else {
                    Some(false)
                }
            }
            Constraint::Implies(a, b) => match a.eval_partial(asg) {
                Some(false) => Some(true),
                Some(true) => b.eval_partial(asg),
                None => match b.eval_partial(asg) {
                    Some(true) => Some(true),
                    _ => None,
                },
            },
            Constraint::Not(c) => c.eval_partial(asg).map(|b| !b),
            Constraint::True => Some(true),
            Constraint::False => Some(false),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Constraint::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Constraint::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Constraint::Implies(a, b) => write!(f, "({a} => {b})"),
            Constraint::Not(c) => write!(f, "!({c})"),
            Constraint::True => f.write_str("true"),
            Constraint::False => f.write_str("false"),
        }
    }
}

/// A (partial) assignment of values to solver variables.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    map: std::collections::BTreeMap<String, Value>,
}

impl Assignment {
    /// Empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a variable.
    pub fn set(&mut self, var: impl Into<String>, value: Value) {
        self.map.insert(var.into(), value);
    }

    /// Value of a variable.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.map.get(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.map.iter()
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_pushes_inward() {
        let c = Constraint::And(vec![
            Constraint::cmp(STerm::var("x"), CmpOp::Gt, STerm::int(0)),
            Constraint::cmp(STerm::var("y"), CmpOp::Eq, STerm::int(2)),
        ]);
        let n = c.negate();
        assert_eq!(
            n,
            Constraint::Or(vec![
                Constraint::cmp(STerm::var("x"), CmpOp::Le, STerm::int(0)),
                Constraint::cmp(STerm::var("y"), CmpOp::Ne, STerm::int(2)),
            ])
        );
        // Double negation is identity on comparisons.
        assert_eq!(n.negate().negate(), n);
    }

    #[test]
    fn partial_eval_three_valued() {
        let c = Constraint::And(vec![
            Constraint::cmp(STerm::var("x"), CmpOp::Gt, STerm::int(0)),
            Constraint::cmp(STerm::var("y"), CmpOp::Eq, STerm::int(2)),
        ]);
        let mut asg = Assignment::new();
        assert_eq!(c.eval_partial(&asg), None);
        asg.set("x", Value::Int(-1));
        assert_eq!(c.eval_partial(&asg), Some(false)); // short-circuits
        asg.set("x", Value::Int(5));
        assert_eq!(c.eval_partial(&asg), None); // y unbound
        asg.set("y", Value::Int(2));
        assert_eq!(c.eval_partial(&asg), Some(true));
    }

    #[test]
    fn implication_semantics() {
        let imp = Constraint::Implies(
            Box::new(Constraint::eq_val("x", Value::Int(9))),
            Box::new(Constraint::eq_val("y", Value::Int(1))),
        );
        let mut asg = Assignment::new();
        asg.set("x", Value::Int(8));
        assert_eq!(imp.eval_partial(&asg), Some(true)); // antecedent false
        asg.set("x", Value::Int(9));
        assert_eq!(imp.eval_partial(&asg), None); // y unbound
        asg.set("y", Value::Int(2));
        assert_eq!(imp.eval_partial(&asg), Some(false));
        asg.set("y", Value::Int(1));
        assert_eq!(imp.eval_partial(&asg), Some(true));
        // negation: x==9 && y!=1
        let neg = imp.negate();
        assert_eq!(neg.eval_partial(&asg), Some(false));
    }

    #[test]
    fn arithmetic_terms() {
        // x + y > 1 (the §3.4 example)
        let c = Constraint::cmp(
            STerm::Add(Box::new(STerm::var("x")), Box::new(STerm::var("y"))),
            CmpOp::Gt,
            STerm::int(1),
        );
        let mut asg = Assignment::new();
        asg.set("x", Value::Int(0));
        asg.set("y", Value::Int(2));
        assert_eq!(c.eval_partial(&asg), Some(true));
        asg.set("y", Value::Int(1));
        assert_eq!(c.eval_partial(&asg), Some(false));
        // arithmetic over strings is undecidable → None
        asg.set("x", Value::str("s"));
        assert_eq!(c.eval_partial(&asg), None);
    }

    #[test]
    fn vars_and_literals_collected() {
        let c = Constraint::Implies(
            Box::new(Constraint::eq_var("D.x", "D0.x")),
            Box::new(Constraint::eq_val("D.y", Value::Int(1))),
        );
        let vars = c.vars();
        assert!(vars.contains("D.x"));
        assert!(vars.contains("D0.x"));
        assert!(vars.contains("D.y"));
        assert!(c.literals().contains(&Value::Int(1)));
    }

    #[test]
    fn display_forms() {
        let c = Constraint::Or(vec![
            Constraint::eq_val("x", Value::Int(3)),
            Constraint::Not(Box::new(Constraint::True)),
        ]);
        assert_eq!(c.to_string(), "(x == 3 || !(true))");
        let mut a = Assignment::new();
        a.set("x", Value::Int(3));
        assert_eq!(a.to_string(), "{x=3}");
    }
}
