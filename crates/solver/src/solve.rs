//! The two-tier solver.
//!
//! The paper's prototype "has an interface to the Z3 solver … however,
//! since many of the constraint sets we generate are trivial, we have built
//! our own mini-solver that can quickly solve the trivial instances on its
//! own; the nontrivial ones are handed over to Z3" (§5.1). We reproduce the
//! same structure offline:
//!
//! 1. **Mini-solver** (fast path): union-find over variable equalities plus
//!    interval propagation for single-variable integer comparisons. Solves
//!    the conjunctive, arithmetic-free pools that dominate in practice.
//! 2. **Search**: bounded backtracking over candidate domains (mentioned
//!    literals, their ±1 neighbors, declared domains), handling
//!    disjunction, implication and linear arithmetic.

use crate::constraint::{Assignment, Constraint, STerm};
use mpr_ndlog::{CmpOp, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A constraint pool: constraints plus optional per-variable domains.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Pool {
    /// Conjunctively joined constraints.
    pub constraints: Vec<Constraint>,
    /// Declared candidate domains (e.g. "switch ids present in the
    /// network"). Variables without a declared domain get candidates from
    /// the literals mentioned in the pool.
    pub domains: BTreeMap<String, Vec<Value>>,
}

/// Which tier produced the answer (exported for the §5.1 micro-ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// The propagation-only mini-solver sufficed.
    Mini,
    /// Backtracking search was required.
    Search,
}

/// Solve statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SolveStats {
    /// Search nodes visited.
    pub nodes: u64,
    /// Which tier answered (None = unsat).
    pub tier: Option<Tier>,
}

/// Outcome of solving.
#[derive(Debug, Clone)]
pub enum SolveResult {
    /// Satisfiable, with a witness.
    Sat(Assignment, SolveStats),
    /// No satisfying assignment within the candidate domains.
    Unsat(SolveStats),
}

impl SolveResult {
    /// The witness, if satisfiable.
    pub fn assignment(&self) -> Option<&Assignment> {
        match self {
            SolveResult::Sat(a, _) => Some(a),
            SolveResult::Unsat(_) => None,
        }
    }

    /// `true` when satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(..))
    }
}

impl Pool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a constraint.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Declare a candidate domain for a variable.
    pub fn set_domain(&mut self, var: impl Into<String>, candidates: Vec<Value>) {
        self.domains.insert(var.into(), candidates);
    }

    /// All variables mentioned anywhere in the pool.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for c in &self.constraints {
            out.extend(c.vars());
        }
        out.extend(self.domains.keys().cloned());
        out
    }

    /// Check a full assignment against the pool.
    pub fn satisfied_by(&self, asg: &Assignment) -> bool {
        self.constraints
            .iter()
            .all(|c| c.eval_partial(asg) == Some(true))
    }

    /// Find a satisfying assignment (both tiers).
    pub fn solve(&self) -> SolveResult {
        let mut stats = SolveStats::default();
        // Tier 1: mini-solver.
        if let Some(outcome) = self.mini_solve() {
            stats.tier = Some(Tier::Mini);
            return match outcome {
                Some(asg) => SolveResult::Sat(asg, stats),
                None => SolveResult::Unsat(stats),
            };
        }
        // Tier 2: search.
        stats.tier = Some(Tier::Search);
        let vars: Vec<String> = self.vars().into_iter().collect();
        let candidates: Vec<Vec<Value>> = vars.iter().map(|v| self.candidates(v)).collect();
        let mut asg = Assignment::new();
        if self.search(&vars, &candidates, 0, &mut asg, &mut stats.nodes) {
            SolveResult::Sat(asg, stats)
        } else {
            SolveResult::Unsat(stats)
        }
    }

    /// Enumerate up to `limit` distinct values for `var` that occur in some
    /// satisfying assignment, in candidate order.
    pub fn enumerate(&self, var: &str, limit: usize) -> Vec<Value> {
        let mut out = Vec::new();
        let mut blocked = self.clone();
        while out.len() < limit {
            match blocked.solve() {
                SolveResult::Sat(asg, _) => match asg.get(var) {
                    Some(v) => {
                        out.push(v.clone());
                        blocked.push(Constraint::cmp(
                            STerm::var(var),
                            CmpOp::Ne,
                            STerm::Val(v.clone()),
                        ));
                    }
                    None => break,
                },
                SolveResult::Unsat(_) => break,
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Tier 1: propagation-only mini-solver.
    //
    // Applicable iff every constraint is a flat comparison between a
    // variable and (a variable | a literal). Returns:
    //   None            → not applicable (fall through to search)
    //   Some(None)      → definitely unsat
    //   Some(Some(a))   → witness

    fn mini_solve(&self) -> Option<Option<Assignment>> {
        #[derive(Clone, Debug)]
        struct Box_ {
            lo: i64,
            hi: i64,
            not_eq: BTreeSet<i64>,
            str_eq: Option<String>,
            str_ne: BTreeSet<String>,
            bool_eq: Option<bool>,
        }
        impl Default for Box_ {
            fn default() -> Self {
                Box_ {
                    lo: i64::MIN / 4,
                    hi: i64::MAX / 4,
                    not_eq: BTreeSet::new(),
                    str_eq: None,
                    str_ne: BTreeSet::new(),
                    bool_eq: None,
                }
            }
        }

        // Union-find over variable equalities.
        let vars: Vec<String> = self.vars().into_iter().collect();
        if vars.is_empty() {
            // Ground pool: just evaluate.
            let asg = Assignment::new();
            let ok = self
                .constraints
                .iter()
                .all(|c| c.eval_partial(&asg) == Some(true));
            return Some(if ok { Some(asg) } else { None });
        }
        let index: BTreeMap<&str, usize> =
            vars.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();
        let mut parent: Vec<usize> = (0..vars.len()).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
            }
            parent[i]
        }
        // First pass: classify; reject non-flat constraints.
        let mut flat: Vec<(&STerm, CmpOp, &STerm)> = Vec::new();
        for c in &self.constraints {
            match c {
                Constraint::True => {}
                Constraint::False => return Some(None),
                Constraint::Cmp { lhs, op, rhs } => {
                    let is_flat = |t: &STerm| matches!(t, STerm::Var(_) | STerm::Val(_));
                    if !is_flat(lhs) || !is_flat(rhs) {
                        return None;
                    }
                    flat.push((lhs, *op, rhs));
                }
                _ => return None, // Or / Implies / Not / And → search
            }
        }
        // Merge equal variables.
        for (l, op, r) in &flat {
            if *op == CmpOp::Eq {
                if let (STerm::Var(a), STerm::Var(b)) = (l, r) {
                    let (ia, ib) = (index[a.as_str()], index[b.as_str()]);
                    let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        // Propagate bounds per class.
        let mut boxes: BTreeMap<usize, Box_> = BTreeMap::new();
        // And collect var≠var constraints for a final check.
        let mut neq_pairs: Vec<(usize, usize)> = Vec::new();
        let mut lt_pairs: Vec<(usize, usize, bool)> = Vec::new(); // (a, b, strict): a < b or a <= b
        for (l, op, r) in &flat {
            match (l, r) {
                (STerm::Var(a), STerm::Val(v)) | (STerm::Val(v), STerm::Var(a)) => {
                    // Normalize so the variable is on the left.
                    let mut op = *op;
                    if matches!(l, STerm::Val(_)) {
                        op = match op {
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::Le => CmpOp::Ge,
                            CmpOp::Gt => CmpOp::Lt,
                            CmpOp::Ge => CmpOp::Le,
                            other => other,
                        };
                    }
                    let root = find(&mut parent, index[a.as_str()]);
                    let b = boxes.entry(root).or_default();
                    match (v, op) {
                        (Value::Int(n), CmpOp::Eq) => {
                            b.lo = b.lo.max(*n);
                            b.hi = b.hi.min(*n);
                        }
                        (Value::Int(n), CmpOp::Ne) => {
                            b.not_eq.insert(*n);
                        }
                        (Value::Int(n), CmpOp::Lt) => b.hi = b.hi.min(n - 1),
                        (Value::Int(n), CmpOp::Le) => b.hi = b.hi.min(*n),
                        (Value::Int(n), CmpOp::Gt) => b.lo = b.lo.max(n + 1),
                        (Value::Int(n), CmpOp::Ge) => b.lo = b.lo.max(*n),
                        (Value::Str(s), CmpOp::Eq) => match &b.str_eq {
                            Some(prev) if prev != s => return Some(None),
                            _ => b.str_eq = Some(s.clone()),
                        },
                        (Value::Str(s), CmpOp::Ne) => {
                            b.str_ne.insert(s.clone());
                        }
                        (Value::Bool(x), CmpOp::Eq) => match b.bool_eq {
                            Some(prev) if prev != *x => return Some(None),
                            _ => b.bool_eq = Some(*x),
                        },
                        (Value::Bool(x), CmpOp::Ne) => match b.bool_eq {
                            Some(prev) if prev == *x => return Some(None),
                            _ => b.bool_eq = Some(!*x),
                        },
                        _ => return None, // exotic (wildcards, str ordering) → search
                    }
                }
                (STerm::Var(a), STerm::Var(b)) => {
                    let ia = find(&mut parent, index[a.as_str()]);
                    let ib = find(&mut parent, index[b.as_str()]);
                    match op {
                        CmpOp::Eq => {}
                        CmpOp::Ne => neq_pairs.push((ia, ib)),
                        CmpOp::Lt => lt_pairs.push((ia, ib, true)),
                        CmpOp::Le => lt_pairs.push((ia, ib, false)),
                        CmpOp::Gt => lt_pairs.push((ib, ia, true)),
                        CmpOp::Ge => lt_pairs.push((ib, ia, false)),
                    }
                }
                (STerm::Val(a), STerm::Val(b)) => {
                    if !op.eval(a, b) {
                        return Some(None);
                    }
                }
                _ => return None,
            }
        }
        // Var-to-var order constraints: a couple of propagation rounds.
        for _ in 0..vars.len().max(2) {
            for &(a, b, strict) in &lt_pairs {
                let (alo, ahi) = {
                    let ba = boxes.entry(a).or_default();
                    (ba.lo, ba.hi)
                };
                let (_blo, bhi) = {
                    let bb = boxes.entry(b).or_default();
                    (bb.lo, bb.hi)
                };
                let margin = i64::from(strict);
                let ba = boxes.get_mut(&a).unwrap();
                ba.hi = ba.hi.min(bhi - margin);
                let _ = alo;
                let bb = boxes.get_mut(&b).unwrap();
                bb.lo = bb.lo.max(alo + margin);
                let _ = ahi;
            }
        }
        // Assemble a witness: pick the smallest feasible value per class,
        // respecting declared domains when present.
        let mut class_value: BTreeMap<usize, Value> = BTreeMap::new();
        for (i, var) in vars.iter().enumerate() {
            let root = find(&mut parent, i);
            if class_value.contains_key(&root) {
                continue;
            }
            let b = boxes.entry(root).or_default();
            // Feasibility test for any concrete value against the box.
            let feasible = |v: &Value, b: &Box_| -> bool {
                match v {
                    Value::Int(n) => {
                        b.str_eq.is_none()
                            && b.bool_eq.is_none()
                            && *n >= b.lo
                            && *n <= b.hi
                            && !b.not_eq.contains(n)
                    }
                    Value::Str(s) => {
                        b.bool_eq.is_none()
                            && b.str_eq.as_ref().map_or(true, |e| e == s)
                            && !b.str_ne.contains(s)
                    }
                    Value::Bool(x) => b.str_eq.is_none() && b.bool_eq.map_or(true, |e| e == *x),
                    Value::Wild => false,
                }
            };
            // Domain-aware pick: first feasible declared candidate.
            if let Some(dom) = self.domains.get(var) {
                match dom.iter().find(|v| feasible(v, b)) {
                    Some(v) => {
                        class_value.insert(root, v.clone());
                        continue;
                    }
                    None => return Some(None),
                }
            }
            if let Some(s) = &b.str_eq {
                if b.str_ne.contains(s) {
                    return Some(None);
                }
                class_value.insert(root, Value::Str(s.clone()));
                continue;
            }
            if !b.str_ne.is_empty() {
                // Unconstrained-but-≠-strings without a domain: let the
                // search tier pick something sensible.
                return None;
            }
            if let Some(x) = b.bool_eq {
                class_value.insert(root, Value::Bool(x));
                continue;
            }
            if b.lo > b.hi {
                return Some(None);
            }
            let picked = {
                let mut n = if b.lo > i64::MIN / 8 { b.lo } else { 0.max(b.lo) };
                let mut found = None;
                for _ in 0..(b.not_eq.len() + 1) {
                    if n > b.hi {
                        break;
                    }
                    if !b.not_eq.contains(&n) {
                        found = Some(n);
                        break;
                    }
                    n += 1;
                }
                found
            };
            match picked {
                Some(n) => {
                    class_value.insert(root, Value::Int(n));
                }
                None => return Some(None),
            }
        }
        let mut asg = Assignment::new();
        for (i, var) in vars.iter().enumerate() {
            let root = find(&mut parent, i);
            asg.set(var.clone(), class_value[&root].clone());
        }
        // Inequality pairs and ordering may be violated by greedy picks; if
        // so, defer to search rather than trying to be clever.
        for &(a, b) in &neq_pairs {
            if class_value.get(&a) == class_value.get(&b) {
                return None;
            }
        }
        if !self.satisfied_by(&asg) {
            return None;
        }
        Some(Some(asg))
    }

    // ------------------------------------------------------------------
    // Tier 2: bounded backtracking search.

    /// Candidate values for a variable: the declared domain, else literals
    /// mentioned in the pool plus their ±1 integer neighbors (the paper's
    /// observation that real bugs are often off-by-one, §3.5), plus 0/1.
    pub fn candidates(&self, var: &str) -> Vec<Value> {
        if let Some(d) = self.domains.get(var) {
            return d.clone();
        }
        let mut lits: BTreeSet<Value> = BTreeSet::new();
        for c in &self.constraints {
            if c.vars().contains(var) {
                lits.extend(c.literals());
            }
        }
        if lits.is_empty() {
            for c in &self.constraints {
                lits.extend(c.literals());
            }
        }
        let mut out: Vec<Value> = Vec::new();
        let mut seen = BTreeSet::new();
        let push = |v: Value, out: &mut Vec<Value>, seen: &mut BTreeSet<Value>| {
            if seen.insert(v.clone()) {
                out.push(v);
            }
        };
        for l in &lits {
            push(l.clone(), &mut out, &mut seen);
            if let Value::Int(n) = l {
                push(Value::Int(n + 1), &mut out, &mut seen);
                push(Value::Int(n - 1), &mut out, &mut seen);
            }
        }
        push(Value::Int(0), &mut out, &mut seen);
        push(Value::Int(1), &mut out, &mut seen);
        push(Value::Bool(true), &mut out, &mut seen);
        push(Value::Bool(false), &mut out, &mut seen);
        out
    }

    fn search(
        &self,
        vars: &[String],
        candidates: &[Vec<Value>],
        i: usize,
        asg: &mut Assignment,
        nodes: &mut u64,
    ) -> bool {
        const NODE_LIMIT: u64 = 2_000_000;
        *nodes += 1;
        if *nodes > NODE_LIMIT {
            return false;
        }
        // Early contradiction pruning.
        for c in &self.constraints {
            if c.eval_partial(asg) == Some(false) {
                return false;
            }
        }
        if i == vars.len() {
            return self.satisfied_by(asg);
        }
        for v in &candidates[i] {
            asg.set(vars[i].clone(), v.clone());
            if self.search(vars, candidates, i + 1, asg, nodes) {
                return true;
            }
        }
        // Un-bind on failure (BTreeMap has no remove-through-Assignment API;
        // rebuild instead).
        let mut trimmed = Assignment::new();
        for (k, val) in asg.iter() {
            if vars[..i].contains(k) {
                trimmed.set(k.clone(), val.clone());
            }
        }
        *asg = trimmed;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint as C;

    #[test]
    fn trivial_pool_hits_mini_tier() {
        // The Fig. 6 pool: Const0.Val == 3 && Const0.Rul == 'r7'.
        let mut p = Pool::new();
        p.push(C::eq_val("Const0.Val", Value::Int(3)));
        p.push(C::eq_val("Const0.Rul", Value::str("r7")));
        match p.solve() {
            SolveResult::Sat(asg, stats) => {
                assert_eq!(asg.get("Const0.Val"), Some(&Value::Int(3)));
                assert_eq!(asg.get("Const0.Rul"), Some(&Value::str("r7")));
                assert_eq!(stats.tier, Some(Tier::Mini));
            }
            SolveResult::Unsat(_) => panic!("should be sat"),
        }
    }

    #[test]
    fn join_equalities_propagate() {
        // B0.x == C0.x, B0.x > 0, C0.x < 5
        let mut p = Pool::new();
        p.push(C::eq_var("B0.x", "C0.x"));
        p.push(C::cmp(STerm::var("B0.x"), CmpOp::Gt, STerm::int(0)));
        p.push(C::cmp(STerm::var("C0.x"), CmpOp::Lt, STerm::int(5)));
        let r = p.solve();
        let asg = r.assignment().expect("sat");
        let x = asg.get("B0.x").unwrap().as_int().unwrap();
        assert_eq!(asg.get("B0.x"), asg.get("C0.x"));
        assert!(x > 0 && x < 5);
    }

    #[test]
    fn infeasible_intervals_detected_by_mini() {
        let mut p = Pool::new();
        p.push(C::cmp(STerm::var("x"), CmpOp::Gt, STerm::int(5)));
        p.push(C::cmp(STerm::var("x"), CmpOp::Lt, STerm::int(3)));
        match p.solve() {
            SolveResult::Unsat(stats) => assert_eq!(stats.tier, Some(Tier::Mini)),
            SolveResult::Sat(a, _) => panic!("unexpected witness {a}"),
        }
    }

    #[test]
    fn paper_3_4_example_requires_search() {
        // A(x,y) :- B(x), C(x,y), x+y>1, x>0 with goal A0.y == 2:
        // B0.x == C0.x, C0.x + C0.y > 1, B0.x > 0, A0.x == C0.x,
        // A0.y == C0.y, A0.y == 2.
        let mut p = Pool::new();
        p.push(C::eq_var("B0.x", "C0.x"));
        p.push(C::cmp(
            STerm::Add(Box::new(STerm::var("C0.x")), Box::new(STerm::var("C0.y"))),
            CmpOp::Gt,
            STerm::int(1),
        ));
        p.push(C::cmp(STerm::var("B0.x"), CmpOp::Gt, STerm::int(0)));
        p.push(C::eq_var("A0.x", "C0.x"));
        p.push(C::eq_var("A0.y", "C0.y"));
        p.push(C::eq_val("A0.y", Value::Int(2)));
        match p.solve() {
            SolveResult::Sat(asg, stats) => {
                assert_eq!(stats.tier, Some(Tier::Search));
                assert!(p.satisfied_by(&asg), "{asg}");
                assert_eq!(asg.get("A0.y"), Some(&Value::Int(2)));
                let x = asg.get("A0.x").unwrap().as_int().unwrap();
                assert!(x > 0);
            }
            SolveResult::Unsat(_) => panic!("should be sat"),
        }
    }

    #[test]
    fn primary_key_implications() {
        // §3.4: D.x == D0.x implies D.y == 1; D.x == D1.x implies D.y == 2;
        // with D0.x = D1.x = 9 the pool is unsat when D.x == 9.
        let mut p = Pool::new();
        p.push(C::eq_val("D0.x", Value::Int(9)));
        p.push(C::eq_val("D1.x", Value::Int(9)));
        p.push(C::eq_val("D.x", Value::Int(9)));
        p.push(C::Implies(
            Box::new(C::eq_var("D.x", "D0.x")),
            Box::new(C::eq_val("D.y", Value::Int(1))),
        ));
        p.push(C::Implies(
            Box::new(C::eq_var("D.x", "D1.x")),
            Box::new(C::eq_val("D.y", Value::Int(2))),
        ));
        assert!(!p.solve().is_sat());
        // Relaxing D.x makes it satisfiable again (solver must move D.x
        // away from 9).
        let mut p2 = p.clone();
        p2.constraints.remove(2);
        let r = p2.solve();
        let asg = r.assignment().expect("sat after relaxing");
        assert_ne!(asg.get("D.x"), Some(&Value::Int(9)));
    }

    #[test]
    fn negated_conjunction_for_positive_symptoms() {
        // §4.2: to make a derivation disappear, negate the collected
        // constraints (1 == Z) and solve — Z must move off 1.
        let collected = C::eq_val("Z", Value::Int(1));
        let mut p = Pool::new();
        p.push(collected.negate());
        p.set_domain("Z", vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let r = p.solve();
        let z = r.assignment().unwrap().get("Z").cloned().unwrap();
        assert_ne!(z, Value::Int(1));
    }

    #[test]
    fn enumerate_yields_distinct_witnesses() {
        let mut p = Pool::new();
        p.push(C::cmp(STerm::var("Swi"), CmpOp::Gt, STerm::int(1)));
        p.set_domain("Swi", (1..=5).map(Value::Int).collect());
        let vals = p.enumerate("Swi", 10);
        assert_eq!(vals, vec![Value::Int(2), Value::Int(3), Value::Int(4), Value::Int(5)]);
    }

    #[test]
    fn disjunction_handled_by_search() {
        let mut p = Pool::new();
        p.push(C::Or(vec![
            C::eq_val("x", Value::Int(7)),
            C::eq_val("x", Value::Int(9)),
        ]));
        p.push(C::cmp(STerm::var("x"), CmpOp::Gt, STerm::int(8)));
        let r = p.solve();
        assert_eq!(r.assignment().unwrap().get("x"), Some(&Value::Int(9)));
    }

    #[test]
    fn string_constraints() {
        let mut p = Pool::new();
        p.push(C::eq_val("Rul", Value::str("r7")));
        p.push(C::cmp(STerm::var("Sid"), CmpOp::Ne, STerm::Val(Value::str("a"))));
        p.set_domain("Sid", vec![Value::str("a"), Value::str("b")]);
        let r = p.solve();
        let asg = r.assignment().unwrap();
        assert_eq!(asg.get("Rul"), Some(&Value::str("r7")));
        assert_eq!(asg.get("Sid"), Some(&Value::str("b")));
    }

    #[test]
    fn contradictory_string_equalities() {
        let mut p = Pool::new();
        p.push(C::eq_val("Rul", Value::str("r7")));
        p.push(C::eq_val("Rul", Value::str("r5")));
        assert!(!p.solve().is_sat());
    }

    #[test]
    fn ground_pools() {
        let mut p = Pool::new();
        p.push(C::cmp(STerm::int(1), CmpOp::Lt, STerm::int(2)));
        assert!(p.solve().is_sat());
        p.push(C::cmp(STerm::int(5), CmpOp::Lt, STerm::int(2)));
        assert!(!p.solve().is_sat());
    }

    #[test]
    fn var_to_var_ordering() {
        let mut p = Pool::new();
        p.push(C::cmp(STerm::var("a"), CmpOp::Lt, STerm::var("b")));
        p.push(C::eq_val("b", Value::Int(3)));
        let r = p.solve();
        let asg = r.assignment().expect("sat");
        assert!(asg.get("a").unwrap().as_int().unwrap() < 3);
    }
}
