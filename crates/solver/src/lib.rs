//! # mpr-solver — constraint pools and the two-tier mini-solver
//!
//! The constraint substrate of the reproduction (§3.4, §5.1). Meta
//! provenance trees carry *constraint pools*: symbolic variables for the
//! attributes of missing/changed tuples, joined by equalities, comparisons,
//! linear arithmetic and primary-key implications. A completed tree yields
//! a repair only if its pool is satisfiable ([`Pool::solve`]); positive
//! symptoms are handled by *negating* collected constraints
//! ([`Constraint::negate`]) and solving for a breaking assignment (§4.2).
//!
//! The paper pairs a fast "mini-solver" with Z3; this crate reproduces the
//! structure offline: an equality/interval propagation tier answers the
//! trivial pools, and a bounded backtracking search over candidate domains
//! answers the rest. [`SolveStats::tier`] reports which tier fired — the
//! `micro` bench ablates the fast path.

#![warn(missing_docs)]

pub mod constraint;
pub mod solve;

pub use constraint::{Assignment, Constraint, STerm};
pub use solve::{Pool, SolveResult, SolveStats, Tier};
