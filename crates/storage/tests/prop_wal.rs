//! Property tests over WAL damage: truncated tails, bit-flipped bytes,
//! duplicate snapshots + stale WAL segments, and empty/fresh opens. Every
//! case must come back as a clean open or a typed `RecoveredWithLoss` —
//! never a panic — and what *is* recovered must be a prefix of what was
//! written.

use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use mpr_storage::wal::{SNAPSHOT_MAGIC, WalBackend, WalConfig};
use mpr_storage::{crc32, Recovery, StorageBackend};
use proptest::prelude::*;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mpr-propwal-{tag}-{}-{n}", std::process::id()))
}

fn records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 0..12)
}

/// Write `recs` through a fresh backend, optionally installing `snapshot`
/// first, and return the WAL file path + total WAL size.
fn written_wal(dir: &PathBuf, snapshot: Option<&[u8]>, recs: &[Vec<u8>]) -> (PathBuf, u64) {
    let _ = fs::remove_dir_all(dir);
    let mut w = WalBackend::open(WalConfig::new(dir)).unwrap();
    if let Some(s) = snapshot {
        w.install_snapshot(s).unwrap();
    }
    for r in recs {
        w.append(r).unwrap();
    }
    w.flush().unwrap();
    let epoch = w.epoch();
    let path = dir.join(format!("wal.{epoch}.log"));
    let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    (path, len)
}

proptest! {
    /// Truncating the WAL at any byte offset recovers a clean prefix of
    /// the written records, with loss reported iff bytes were dropped.
    #[test]
    fn truncation_yields_a_prefix(recs in records(), cut_ppm in 0u64..=1_000_000) {
        let dir = scratch("trunc");
        let (wal, len) = written_wal(&dir, None, &recs);
        let cut = len * cut_ppm / 1_000_000;
        OpenOptions::new().write(true).open(&wal).unwrap().set_len(cut).unwrap();

        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        // Recovered records must be a prefix of what was written.
        prop_assert!(r.records.len() <= recs.len());
        prop_assert_eq!(&r.records[..], &recs[..r.records.len()]);
        // A cut exactly on a frame boundary is indistinguishable from a
        // shorter log, so it recovers Clean; anywhere else must report loss.
        let mut boundaries = vec![0u64];
        let mut off = 0u64;
        for rec in &recs {
            off += 8 + rec.len() as u64;
            boundaries.push(off);
        }
        match r.status {
            Recovery::Clean => {
                prop_assert!(boundaries.contains(&cut));
                prop_assert_eq!(boundaries[r.records.len()], cut);
            }
            Recovery::RecoveredWithLoss(l) => {
                prop_assert_eq!(l.valid_records, r.records.len());
                prop_assert!(!boundaries.contains(&cut));
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flipping any single bit anywhere in the WAL never panics and never
    /// silently corrupts: recovery returns a prefix of the written records
    /// (the flip is either detected and reported, or — when it lands in
    /// the padding-free tail framing of a dropped suffix — truncated away).
    #[test]
    fn single_bit_flip_is_detected_or_truncated(recs in records(), pos_ppm in 0u64..=1_000_000, bit in 0u32..8) {
        prop_assume!(!recs.is_empty());
        let dir = scratch("flip");
        let (wal, len) = written_wal(&dir, None, &recs);
        prop_assume!(len > 0);
        let pos = (len - 1) * pos_ppm / 1_000_000;
        let mut bytes = fs::read(&wal).unwrap();
        bytes[pos as usize] ^= 1 << bit;
        fs::write(&wal, &bytes).unwrap();

        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        // Every recovered record must be one of the originals, in order,
        // up to the first damaged one.
        prop_assert!(r.records.len() <= recs.len());
        for (i, rec) in r.records.iter().enumerate() {
            if rec != &recs[i] {
                // A flip inside a length field can resync the framing; the
                // CRC makes a bogus resync astronomically unlikely, and the
                // flipped record itself must fail its checksum.
                prop_assert!(false, "record {i} silently corrupted");
            }
        }
        // A flip in a record body or its header must cost us that record.
        match r.status {
            Recovery::Clean => prop_assert_eq!(&r.records[..], &recs[..]),
            Recovery::RecoveredWithLoss(l) => prop_assert_eq!(l.valid_records, r.records.len()),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// A crashed compaction can leave a duplicate snapshot and a stale WAL
    /// from the previous epoch lying around; recovery must prefer the
    /// newest valid snapshot, prune the strays, and never panic. If the
    /// newest snapshot is corrupted too, it must fall back with loss.
    #[test]
    fn stale_segments_and_duplicate_snapshots(
        recs in records(),
        stale in records(),
        corrupt_newest in any::<bool>(),
    ) {
        let dir = scratch("stale");
        let (_, _) = written_wal(&dir, Some(b"epoch1-state"), &recs);
        // Resurrect a stale epoch-0 WAL as a crashed compaction would.
        let mut stale_bytes = Vec::new();
        for r in &stale {
            stale_bytes.extend_from_slice(&(r.len() as u32).to_le_bytes());
            stale_bytes.extend_from_slice(&crc32(r).to_le_bytes());
            stale_bytes.extend_from_slice(r);
        }
        fs::write(dir.join("wal.0.log"), &stale_bytes).unwrap();
        // And a leftover staging file.
        fs::write(dir.join("snapshot.tmp"), b"half-written").unwrap();

        if corrupt_newest {
            let snap = dir.join("snapshot.1.bin");
            let mut b = fs::read(&snap).unwrap();
            let last = b.len() - 1;
            b[last] ^= 0x80;
            fs::write(&snap, &b).unwrap();
        }

        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        if corrupt_newest {
            // Fell back to the bare epoch-0 WAL, reporting the loss.
            prop_assert!(!r.status.is_clean());
            prop_assert_eq!(r.snapshot, None);
            prop_assert_eq!(&r.records[..], &stale[..]);
        } else {
            prop_assert!(r.status.is_clean());
            prop_assert_eq!(r.snapshot.as_deref(), Some(&b"epoch1-state"[..]));
            prop_assert_eq!(&r.records[..], &recs[..]);
            prop_assert!(!dir.join("wal.0.log").exists(), "stale WAL must be pruned");
        }
        prop_assert!(!dir.join("snapshot.tmp").exists(), "staging file must be pruned");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Opening an empty or absent directory is always a clean, empty open,
    /// and appending afterwards round-trips.
    #[test]
    fn fresh_open_round_trips(recs in records()) {
        let dir = scratch("fresh");
        let _ = fs::remove_dir_all(&dir);
        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        prop_assert!(r.status.is_clean());
        prop_assert!(r.snapshot.is_none());
        prop_assert!(r.records.is_empty());
        for rec in &recs {
            w.append(rec).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        prop_assert!(r.status.is_clean());
        prop_assert_eq!(&r.records[..], &recs[..]);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Garbage files in the directory (not WAL/snapshot named) are ignored;
    /// an all-garbage "WAL" is fully truncated with loss, never a panic.
    #[test]
    fn garbage_wal_never_panics(noise in prop::collection::vec(any::<u8>(), 1..200)) {
        let dir = scratch("noise");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("wal.0.log"), &noise).unwrap();
        fs::write(dir.join("unrelated.txt"), b"ignore me").unwrap();

        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        // Whatever survives must re-serialize to a prefix of the noise.
        let mut reframed = Vec::new();
        for rec in &r.records {
            reframed.extend_from_slice(&(rec.len() as u32).to_le_bytes());
            reframed.extend_from_slice(&crc32(rec).to_le_bytes());
            reframed.extend_from_slice(rec);
        }
        prop_assert_eq!(&reframed[..], &noise[..reframed.len()]);
        let _ = fs::remove_dir_all(&dir);
    }

    /// The snapshot file's own integrity: any single-bit flip in it is
    /// detected (magic, checksum, or length), falling back without panic.
    #[test]
    fn snapshot_bit_flip_detected(payload in prop::collection::vec(any::<u8>(), 1..60), pos_ppm in 0u64..=1_000_000, bit in 0u32..8) {
        let dir = scratch("snapflip");
        let (_, _) = written_wal(&dir, Some(&payload), &[]);
        let snap = dir.join("snapshot.1.bin");
        let mut bytes = fs::read(&snap).unwrap();
        let pos = ((bytes.len() as u64 - 1) * pos_ppm / 1_000_000) as usize;
        bytes[pos] ^= 1 << bit;
        fs::write(&snap, &bytes).unwrap();

        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        prop_assert!(!r.status.is_clean(), "flipped snapshot accepted as clean");
        prop_assert_eq!(r.snapshot, None);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Non-proptest sanity check: the snapshot magic is what the docs say.
#[test]
fn snapshot_magic_is_mps1() {
    assert_eq!(&SNAPSHOT_MAGIC, b"MPS1");
}
