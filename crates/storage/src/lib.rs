//! # mpr-storage — pluggable durable storage for tuples and provenance
//!
//! The paper's repair loop assumes the provenance graph and the tuple store
//! survive long enough to diagnose and backtest; until this crate, both
//! lived only in process memory and died with it. [`StorageBackend`] is the
//! `Send + Sync` seam behind `mpr_runtime::store::Store` and
//! `mpr_provenance`'s graph snapshots:
//!
//! - [`MemBackend`] — an in-process record buffer. Today's behavior, the
//!   zero-cost default, and the oracle the recovery tests replay prefixes
//!   through.
//! - [`WalBackend`] — a checksummed (CRC-32 per record), length-prefixed
//!   append-only log with epoch-numbered compacted snapshots. Recovery on
//!   open replays the newest valid snapshot plus its WAL, detects torn or
//!   truncated tails and corrupt records, truncates at the tear, and
//!   reports the damage as a typed [`Recovery::RecoveredWithLoss`] instead
//!   of panicking.
//!
//! The backend stores opaque byte records; what a record *means* (a store
//! mutation, a provenance snapshot) is the caller's codec. This keeps the
//! crate dependency-free and the trait object-safe.

#![warn(missing_docs)]

pub mod crc;
pub mod mem;
pub mod wal;

pub use crc::crc32;
pub use mem::MemBackend;
pub use wal::{WalBackend, WalConfig};

use std::fmt;

/// Typed storage failure. Everything the backends can hit is either an OS
/// I/O error (carrying the failing operation) or detected corruption
/// (carrying where and why).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An OS-level I/O failure.
    Io {
        /// The operation that failed (`"append"`, `"open"`, ...).
        op: &'static str,
        /// The OS error, stringified.
        detail: String,
    },
    /// A structurally invalid or checksum-failing region of the log.
    Corrupt {
        /// Byte offset of the damage within its file.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// A record exceeding [`wal::MAX_RECORD_BYTES`] was offered for append.
    RecordTooLarge {
        /// The offered size.
        len: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, detail } => write!(f, "storage I/O failure during {op}: {detail}"),
            StorageError::Corrupt { offset, reason } => {
                write!(f, "corrupt storage at byte {offset}: {reason}")
            }
            StorageError::RecordTooLarge { len } => {
                write!(f, "record of {len} bytes exceeds the WAL record limit")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// What happened to the durable state between the last write and this open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery {
    /// Every byte written was read back: snapshot and WAL verified clean.
    Clean,
    /// Damage was found and survived: the state is the longest valid prefix,
    /// with the tail truncated away. Never a panic.
    RecoveredWithLoss(LossReport),
}

impl Recovery {
    /// `true` when nothing was lost.
    pub fn is_clean(&self) -> bool {
        matches!(self, Recovery::Clean)
    }

    /// The loss report, when damage was found.
    pub fn loss(&self) -> Option<&LossReport> {
        match self {
            Recovery::Clean => None,
            Recovery::RecoveredWithLoss(l) => Some(l),
        }
    }
}

/// The damage a lossy recovery survived.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LossReport {
    /// Records recovered intact before the tear.
    pub valid_records: usize,
    /// Bytes dropped from the tear to the end of the log.
    pub dropped_bytes: u64,
    /// Human-readable cause of the first damage encountered
    /// (torn tail, checksum mismatch, stale epoch, corrupt snapshot...).
    pub reason: String,
}

/// Everything a backend recovered at open: the newest valid snapshot (if
/// one was ever installed), the WAL records appended after it, and whether
/// any of it had to be dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// The compacted snapshot the records apply on top of, if any.
    pub snapshot: Option<Vec<u8>>,
    /// WAL records after the snapshot, oldest first.
    pub records: Vec<Vec<u8>>,
    /// Clean or lossy.
    pub status: Recovery,
}

impl Recovered {
    /// An empty, clean state (fresh open).
    pub fn empty() -> Self {
        Recovered { snapshot: None, records: Vec::new(), status: Recovery::Clean }
    }
}

/// A durable (or deliberately volatile) record log with snapshot
/// compaction. Object-safe and `Send + Sync` so an engine shared across
/// scoped worker threads can hold one behind a mutex.
///
/// Contract:
/// - [`StorageBackend::append`] preserves order; records are opaque bytes.
/// - [`StorageBackend::install_snapshot`] atomically replaces
///   `snapshot + all records so far` with the given snapshot; the WAL
///   restarts empty after it.
/// - [`StorageBackend::recover`] returns exactly what a crash-and-reopen
///   at this instant would see (after [`StorageBackend::flush`]).
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Append one record. Returns the zero-based sequence number of the
    /// record within the current WAL segment.
    fn append(&mut self, record: &[u8]) -> Result<u64, StorageError>;

    /// Push buffered writes to the OS (and to disk, when the backend is
    /// configured to fsync).
    fn flush(&mut self) -> Result<(), StorageError>;

    /// Replace the durable state with `snapshot`, emptying the WAL. The
    /// replacement is atomic: a crash at any point leaves either the old
    /// state or the new one recoverable, never a mix.
    fn install_snapshot(&mut self, snapshot: &[u8]) -> Result<(), StorageError>;

    /// Read back the durable state as of the last [`StorageBackend::flush`].
    fn recover(&mut self) -> Result<Recovered, StorageError>;

    /// Bytes currently in the WAL segment (excluding the snapshot).
    fn wal_bytes(&self) -> u64;

    /// Records appended to the current WAL segment since the last snapshot.
    fn record_count(&self) -> usize;

    /// Stable backend name for reports and artifacts.
    fn name(&self) -> &'static str;
}
