//! Checksummed append-only write-ahead log with epoch-numbered compacted
//! snapshots.
//!
//! ## On-disk layout
//!
//! A WAL directory holds at most one *epoch* of live state:
//!
//! ```text
//! wal.<epoch>.log      [len u32 LE][crc32 u32 LE][payload] ... repeated
//! snapshot.<epoch>.bin [magic "MPS1"][crc32 u32 LE][payload]
//! ```
//!
//! Epoch 0 has no snapshot — a fresh log starts at `wal.0.log`. Installing
//! a snapshot bumps the epoch: write `snapshot.tmp`, atomically rename it
//! to `snapshot.<e+1>.bin`, create an empty `wal.<e+1>.log`, then delete
//! the epoch-`e` files. A crash between any two of those steps leaves a
//! recoverable directory (possibly with duplicate-epoch or stale files,
//! which recovery prunes).
//!
//! ## Recovery state machine
//!
//! 1. Scan the directory for `wal.*.log` / `snapshot.*.bin` epochs.
//! 2. Walk candidate epochs newest-first. An epoch is *loadable* when its
//!    snapshot verifies (or it is epoch 0 / a bare WAL left by a crashed
//!    compaction, which needs none). A corrupt snapshot demotes to the
//!    next older epoch and the skipped files are deleted.
//! 3. Replay the chosen epoch's WAL record-by-record. A short header,
//!    truncated payload, oversized length, or CRC mismatch is a *tear*:
//!    keep everything before it, truncate the file at the tear, and report
//!    [`Recovery::RecoveredWithLoss`]. Never panic.
//! 4. Reopen the (possibly truncated) WAL for append.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::{crc32, LossReport, Recovered, Recovery, StorageBackend, StorageError};

/// Per-record frame header: `[len u32][crc u32]`.
pub const HEADER_BYTES: u64 = 8;
/// Hard cap on a single record; a length field above this is treated as
/// corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;
/// Leading magic of a snapshot file (`"MPS1"`).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MPS1";

/// Configuration for a [`WalBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Directory holding the log + snapshot files (created on open).
    pub dir: PathBuf,
    /// Call `sync_data` on every flush. Off by default: the tests and
    /// benches model crash-consistency at the file level, and fsync per
    /// batch would dominate runtimes on CI.
    pub fsync: bool,
}

impl WalConfig {
    /// Config with defaults (`fsync` off) for `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig { dir: dir.into(), fsync: false }
    }
}

/// Durable append-only log backend. See the module docs for the format.
#[derive(Debug)]
pub struct WalBackend {
    cfg: WalConfig,
    epoch: u64,
    writer: Option<File>,
    wal_bytes: u64,
    records: usize,
    recovered: Option<Recovered>,
}

fn io_err(op: &'static str, e: std::io::Error) -> StorageError {
    StorageError::Io { op, detail: e.to_string() }
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal.{epoch}.log"))
}

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot.{epoch}.bin"))
}

/// Parse `wal.<n>.log` / `snapshot.<n>.bin` file names.
fn parse_epoch(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// Outcome of replaying one WAL file.
struct WalScan {
    records: Vec<Vec<u8>>,
    /// Byte offset of the first damage, if any — the file is truncated here.
    tear: Option<(u64, String)>,
    valid_bytes: u64,
}

fn scan_wal_bytes(buf: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = buf.len() - off;
        if rest == 0 {
            return WalScan { records, tear: None, valid_bytes: off as u64 };
        }
        if rest < HEADER_BYTES as usize {
            return WalScan {
                records,
                tear: Some((off as u64, format!("torn record header ({rest} trailing bytes)"))),
                valid_bytes: off as u64,
            };
        }
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            return WalScan {
                records,
                tear: Some((off as u64, format!("implausible record length {len}"))),
                valid_bytes: off as u64,
            };
        }
        let body_start = off + HEADER_BYTES as usize;
        if buf.len() - body_start < len {
            return WalScan {
                records,
                tear: Some((
                    off as u64,
                    format!("torn record payload ({} of {len} bytes)", buf.len() - body_start),
                )),
                valid_bytes: off as u64,
            };
        }
        let payload = &buf[body_start..body_start + len];
        if crc32(payload) != crc {
            return WalScan {
                records,
                tear: Some((off as u64, "record checksum mismatch".to_string())),
                valid_bytes: off as u64,
            };
        }
        records.push(payload.to_vec());
        off = body_start + len;
    }
}

/// Validate + extract a snapshot file's payload.
fn read_snapshot(path: &Path) -> Result<Result<Vec<u8>, String>, StorageError> {
    let mut buf = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| io_err("read-snapshot", e))?;
    if buf.len() < 8 {
        return Ok(Err(format!("snapshot too short ({} bytes)", buf.len())));
    }
    if buf[0..4] != SNAPSHOT_MAGIC {
        return Ok(Err("snapshot magic mismatch".to_string()));
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let payload = &buf[8..];
    if crc32(payload) != crc {
        return Ok(Err("snapshot checksum mismatch".to_string()));
    }
    Ok(Ok(payload.to_vec()))
}

impl WalBackend {
    /// Open (or create) the WAL directory, run recovery, repair any torn
    /// tail or stale files, and leave the log ready for append. The
    /// recovered state is returned by the first [`StorageBackend::recover`]
    /// call without re-reading disk.
    pub fn open(cfg: WalConfig) -> Result<Self, StorageError> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("create-dir", e))?;
        let mut backend = WalBackend {
            cfg,
            epoch: 0,
            writer: None,
            wal_bytes: 0,
            records: 0,
            recovered: None,
        };
        let recovered = backend.scan_and_repair()?;
        backend.recovered = Some(recovered);
        Ok(backend)
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// The live epoch (bumped by each installed snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Full directory scan: choose the newest loadable epoch, replay its
    /// WAL, truncate at any tear, delete stale/corrupt other-epoch files,
    /// and (re)open the append handle.
    fn scan_and_repair(&mut self) -> Result<Recovered, StorageError> {
        self.writer = None; // close any previous handle before repair

        let dir = self.cfg.dir.clone();
        let mut wal_epochs = Vec::new();
        let mut snap_epochs = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("read-dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read-dir", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(e) = parse_epoch(&name, "wal.", ".log") {
                wal_epochs.push(e);
            } else if let Some(e) = parse_epoch(&name, "snapshot.", ".bin") {
                snap_epochs.push(e);
            } else if name == "snapshot.tmp" {
                // A compaction died before its atomic rename; the payload
                // was never committed.
                let _ = fs::remove_file(entry.path());
            }
        }

        let mut candidates: Vec<u64> = wal_epochs.iter().chain(&snap_epochs).copied().collect();
        candidates.sort_unstable();
        candidates.dedup();

        let mut loss: Option<LossReport> = None;
        let mut note_loss = |records: usize, dropped: u64, reason: String| {
            let l = loss.get_or_insert_with(LossReport::default);
            l.valid_records = records;
            l.dropped_bytes += dropped;
            if l.reason.is_empty() {
                l.reason = reason;
            } else {
                l.reason.push_str("; ");
                l.reason.push_str(&reason);
            }
        };

        // Walk newest-first for the first loadable epoch.
        let mut chosen: Option<(u64, Option<Vec<u8>>)> = None;
        for &epoch in candidates.iter().rev() {
            let snap = snapshot_path(&dir, epoch);
            if snap.exists() {
                match read_snapshot(&snap)? {
                    Ok(payload) => {
                        chosen = Some((epoch, Some(payload)));
                        break;
                    }
                    Err(reason) => {
                        let dropped = fs::metadata(&snap).map(|m| m.len()).unwrap_or(0);
                        note_loss(0, dropped, format!("epoch {epoch}: {reason}"));
                        continue; // demote to an older epoch
                    }
                }
            }
            // No snapshot: loadable only as a bare WAL — epoch 0, or a WAL
            // created by a compaction whose snapshot never landed (in which
            // case the WAL is young and its snapshot's content is lost with
            // the snapshot; the bare WAL is still the newest valid state
            // only when no older epoch has a valid snapshot *and* the WAL
            // belongs to epoch 0). For epoch > 0 a bare WAL without its
            // snapshot cannot be interpreted alone; skip it.
            if epoch == 0 {
                chosen = Some((0, None));
                break;
            }
            let dropped = fs::metadata(wal_path(&dir, epoch)).map(|m| m.len()).unwrap_or(0);
            note_loss(0, dropped, format!("epoch {epoch}: WAL without its snapshot"));
        }

        let (epoch, snapshot) = chosen.unwrap_or((0, None));

        // Prune every file not belonging to the chosen epoch.
        for &e in &candidates {
            if e != epoch {
                let _ = fs::remove_file(wal_path(&dir, e));
                let _ = fs::remove_file(snapshot_path(&dir, e));
            }
        }

        // Replay the chosen epoch's WAL, truncating at the first tear.
        let wal = wal_path(&dir, epoch);
        let mut records = Vec::new();
        let mut valid_bytes = 0u64;
        if wal.exists() {
            let mut buf = Vec::new();
            File::open(&wal)
                .and_then(|mut f| f.read_to_end(&mut buf))
                .map_err(|e| io_err("read-wal", e))?;
            let scan = scan_wal_bytes(&buf);
            if let Some((tear_off, reason)) = scan.tear {
                note_loss(
                    scan.records.len(),
                    buf.len() as u64 - tear_off,
                    format!("epoch {epoch} WAL at byte {tear_off}: {reason}"),
                );
                let f = OpenOptions::new()
                    .write(true)
                    .open(&wal)
                    .map_err(|e| io_err("repair-wal", e))?;
                f.set_len(scan.valid_bytes).map_err(|e| io_err("repair-wal", e))?;
            }
            records = scan.records;
            valid_bytes = scan.valid_bytes;
        }

        let writer = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal)
            .map_err(|e| io_err("open-wal", e))?;
        self.epoch = epoch;
        self.writer = Some(writer);
        self.wal_bytes = valid_bytes;
        self.records = records.len();

        let status = match loss {
            None => Recovery::Clean,
            Some(mut l) => {
                l.valid_records = records.len();
                Recovery::RecoveredWithLoss(l)
            }
        };
        Ok(Recovered { snapshot, records, status })
    }
}

impl StorageBackend for WalBackend {
    fn append(&mut self, record: &[u8]) -> Result<u64, StorageError> {
        if record.len() > MAX_RECORD_BYTES {
            return Err(StorageError::RecordTooLarge { len: record.len() });
        }
        let writer = self.writer.as_mut().ok_or(StorageError::Io {
            op: "append",
            detail: "WAL writer not open".to_string(),
        })?;
        let mut frame = Vec::with_capacity(HEADER_BYTES as usize + record.len());
        frame.extend_from_slice(&(record.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(record).to_le_bytes());
        frame.extend_from_slice(record);
        writer.write_all(&frame).map_err(|e| io_err("append", e))?;
        let seq = self.records as u64;
        self.records += 1;
        self.wal_bytes += frame.len() as u64;
        Ok(seq)
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        if let Some(w) = self.writer.as_mut() {
            w.flush().map_err(|e| io_err("flush", e))?;
            if self.cfg.fsync {
                w.sync_data().map_err(|e| io_err("fsync", e))?;
            }
        }
        Ok(())
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) -> Result<(), StorageError> {
        self.flush()?;
        let dir = self.cfg.dir.clone();
        let next = self.epoch + 1;

        // 1. Stage the snapshot off to the side...
        let tmp = dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("write-snapshot", e))?;
            f.write_all(&SNAPSHOT_MAGIC).map_err(|e| io_err("write-snapshot", e))?;
            f.write_all(&crc32(snapshot).to_le_bytes())
                .map_err(|e| io_err("write-snapshot", e))?;
            f.write_all(snapshot).map_err(|e| io_err("write-snapshot", e))?;
            if self.cfg.fsync {
                f.sync_data().map_err(|e| io_err("write-snapshot", e))?;
            }
        }
        // 2. ...commit it with an atomic rename (the epoch flips here)...
        fs::rename(&tmp, snapshot_path(&dir, next)).map_err(|e| io_err("commit-snapshot", e))?;
        // 3. ...start the new epoch's WAL...
        let writer = OpenOptions::new()
            .create(true)
            .append(true)
            .open(wal_path(&dir, next))
            .map_err(|e| io_err("open-wal", e))?;
        // 4. ...and retire the old epoch (best-effort; recovery prunes
        //    leftovers if we crash before these land).
        let _ = fs::remove_file(wal_path(&dir, self.epoch));
        let _ = fs::remove_file(snapshot_path(&dir, self.epoch));

        self.epoch = next;
        self.writer = Some(writer);
        self.wal_bytes = 0;
        self.records = 0;
        Ok(())
    }

    fn recover(&mut self) -> Result<Recovered, StorageError> {
        if let Some(recovered) = self.recovered.take() {
            return Ok(recovered);
        }
        self.flush()?;
        self.scan_and_repair()
    }

    fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    fn record_count(&self) -> usize {
        self.records
    }

    fn name(&self) -> &'static str {
        "wal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "mpr-wal-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_open_is_clean_and_empty() {
        let dir = scratch("fresh");
        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        assert_eq!(r, Recovered::empty());
        assert_eq!(w.epoch(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = scratch("replay");
        {
            let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
            for rec in [b"alpha".as_slice(), b"beta", b""] {
                w.append(rec).unwrap();
            }
            w.flush().unwrap();
        }
        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        assert!(r.status.is_clean());
        assert_eq!(r.records, vec![b"alpha".to_vec(), b"beta".to_vec(), Vec::new()]);
        assert_eq!(w.record_count(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_bumps_epoch_and_prunes_old_files() {
        let dir = scratch("snap");
        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        w.append(b"pre").unwrap();
        w.install_snapshot(b"state-v1").unwrap();
        w.append(b"post").unwrap();
        w.flush().unwrap();
        assert_eq!(w.epoch(), 1);
        assert!(!wal_path(&dir, 0).exists());
        drop(w);

        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        assert!(r.status.is_clean());
        assert_eq!(r.snapshot.as_deref(), Some(&b"state-v1"[..]));
        assert_eq!(r.records, vec![b"post".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_with_loss_then_appends_cleanly() {
        let dir = scratch("tear");
        {
            let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
            w.append(b"keep-1").unwrap();
            w.append(b"keep-2").unwrap();
            w.append(b"lost").unwrap();
            w.flush().unwrap();
        }
        // Tear mid-way through the last record's payload.
        let wal = wal_path(&dir, 0);
        let len = fs::metadata(&wal).unwrap().len();
        OpenOptions::new().write(true).open(&wal).unwrap().set_len(len - 2).unwrap();

        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        let loss = r.status.loss().expect("tear must be reported");
        assert_eq!(loss.valid_records, 2);
        assert!(loss.dropped_bytes > 0);
        assert_eq!(r.records, vec![b"keep-1".to_vec(), b"keep-2".to_vec()]);

        // The repaired log keeps working.
        w.append(b"after").unwrap();
        w.flush().unwrap();
        drop(w);
        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        assert!(r.status.is_clean());
        assert_eq!(
            r.records,
            vec![b"keep-1".to_vec(), b"keep-2".to_vec(), b"after".to_vec()]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous_epoch() {
        let dir = scratch("fallback");
        {
            let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
            w.append(b"old-wal").unwrap();
            w.install_snapshot(b"snap-1").unwrap();
            w.append(b"new-wal").unwrap();
            w.install_snapshot(b"snap-2").unwrap();
            w.flush().unwrap();
        }
        // Flip a payload bit in the newest snapshot; resurrect a stale
        // epoch-1 pair to exercise pruning of duplicates.
        let snap2 = snapshot_path(&dir, 2);
        let mut bytes = fs::read(&snap2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&snap2, &bytes).unwrap();
        fs::write(snapshot_path(&dir, 1), {
            let mut v = SNAPSHOT_MAGIC.to_vec();
            v.extend_from_slice(&crc32(b"snap-1").to_le_bytes());
            v.extend_from_slice(b"snap-1");
            v
        })
        .unwrap();
        fs::write(wal_path(&dir, 1), {
            let mut v = (7u32).to_le_bytes().to_vec();
            v.extend_from_slice(&crc32(b"new-wal").to_le_bytes());
            v.extend_from_slice(b"new-wal");
            v
        })
        .unwrap();

        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        let loss = r.status.loss().expect("corrupt snapshot must be reported");
        assert!(loss.reason.contains("epoch 2"));
        assert_eq!(r.snapshot.as_deref(), Some(&b"snap-1"[..]));
        assert_eq!(r.records, vec![b"new-wal".to_vec()]);
        assert_eq!(w.epoch(), 1);
        assert!(!snapshot_path(&dir, 2).exists(), "corrupt epoch must be pruned");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_record_is_caught_by_crc() {
        let dir = scratch("flip");
        {
            let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
            w.append(b"good").unwrap();
            w.append(b"evil").unwrap();
            w.flush().unwrap();
        }
        let wal = wal_path(&dir, 0);
        let mut bytes = fs::read(&wal).unwrap();
        let last = bytes.len() - 1; // inside the second record's payload
        bytes[last] ^= 0x40;
        fs::write(&wal, &bytes).unwrap();

        let mut w = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let r = w.recover().unwrap();
        let loss = r.status.loss().expect("bit flip must be reported");
        assert_eq!(loss.valid_records, 1);
        assert!(loss.reason.contains("checksum"));
        assert_eq!(r.records, vec![b"good".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }
}
