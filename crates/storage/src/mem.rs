//! In-memory backend: today's behavior, the zero-cost default.
//!
//! Records live in a `Vec`; recovery hands back exactly what was appended.
//! Beyond being the default, this backend is the *oracle* of the recovery
//! tests: priming one with the first `k` records of a torn WAL and
//! replaying it must reproduce the recovered store bit-for-bit
//! (prefix consistency).

use crate::{Recovered, Recovery, StorageBackend, StorageError};

/// Volatile record buffer implementing [`StorageBackend`].
#[derive(Debug, Default)]
pub struct MemBackend {
    snapshot: Option<Vec<u8>>,
    records: Vec<Vec<u8>>,
    wal_bytes: u64,
}

impl MemBackend {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// A backend pre-seeded with a recovered state — used by the recovery
    /// harness to replay a record prefix through fresh store logic.
    pub fn primed(snapshot: Option<Vec<u8>>, records: Vec<Vec<u8>>) -> Self {
        let wal_bytes = records.iter().map(|r| r.len() as u64).sum();
        MemBackend { snapshot, records, wal_bytes }
    }
}

impl StorageBackend for MemBackend {
    fn append(&mut self, record: &[u8]) -> Result<u64, StorageError> {
        let seq = self.records.len() as u64;
        self.wal_bytes += record.len() as u64;
        self.records.push(record.to_vec());
        Ok(seq)
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) -> Result<(), StorageError> {
        self.snapshot = Some(snapshot.to_vec());
        self.records.clear();
        self.wal_bytes = 0;
        Ok(())
    }

    fn recover(&mut self) -> Result<Recovered, StorageError> {
        Ok(Recovered {
            snapshot: self.snapshot.clone(),
            records: self.records.clone(),
            status: Recovery::Clean,
        })
    }

    fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    fn record_count(&self) -> usize {
        self.records.len()
    }

    fn name(&self) -> &'static str {
        "mem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_records_in_order() {
        let mut b = MemBackend::new();
        assert_eq!(b.append(b"one").unwrap(), 0);
        assert_eq!(b.append(b"two").unwrap(), 1);
        let r = b.recover().unwrap();
        assert!(r.status.is_clean());
        assert_eq!(r.snapshot, None);
        assert_eq!(r.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(b.wal_bytes(), 6);
    }

    #[test]
    fn snapshot_resets_the_wal() {
        let mut b = MemBackend::new();
        b.append(b"old").unwrap();
        b.install_snapshot(b"snap").unwrap();
        b.append(b"new").unwrap();
        let r = b.recover().unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(&b"snap"[..]));
        assert_eq!(r.records, vec![b"new".to_vec()]);
        assert_eq!(b.record_count(), 1);
    }
}
