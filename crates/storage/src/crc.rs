//! CRC-32 (IEEE 802.3 polynomial, reflected) — the per-record checksum of
//! the WAL format. Table-driven, computed once at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (IEEE, the zlib/`crc32fast` convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello world");
        for i in 0..11 * 8 {
            let mut buf = b"hello world".to_vec();
            buf[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&buf), base, "bit {i} flip went undetected");
        }
    }
}
