//! Deterministic workload generation.
//!
//! The paper replays "two traffic traces obtained in a similar campus
//! network setting" (Benson et al., IMC'10) plus "a mix of ICMP ping
//! traffic and HTTP web traffic on the remaining hosts" (§5.2). Those
//! traces are not redistributable, so this module synthesizes workloads
//! with the same *distributional* features the experiments depend on:
//! a protocol mix, skewed (Zipf-ish) client popularity, and per-profile
//! packet-size/rate differences. Everything is driven by an explicit seed.

use mpr_sdn::packet::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One packet to inject: `(source host, packet)`.
pub type Injection = (i64, Packet);

/// Protocol mix (fractions must sum to ≤ 1; the remainder is ICMP).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Mix {
    /// Fraction of HTTP requests.
    pub http: f64,
    /// Fraction of DNS queries.
    pub dns: f64,
}

/// A workload specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// RNG seed (every run with the same spec is identical).
    pub seed: u64,
    /// Number of packets.
    pub packets: usize,
    /// Protocol mix.
    pub mix: Mix,
    /// Client hosts (sources). Popularity is Zipf-ish: client `i` is
    /// proportionally `1/(i+1)` as likely as client 0.
    pub clients: Vec<i64>,
    /// HTTP server hosts (destinations for HTTP).
    pub http_servers: Vec<i64>,
    /// DNS server hosts.
    pub dns_servers: Vec<i64>,
    /// Mean payload bytes (profile knob for the storage experiment).
    pub mean_payload: u32,
    /// Arrival rate of the original trace in packets/second — the knob
    /// that differentiates the two §5.4 logging rates.
    pub packets_per_sec: u64,
}

impl Workload {
    /// The paper's first campus-trace profile: HTTP-heavy, larger packets.
    /// (§5.4 reports ≈20.2 MB/s of log per switch for this one.)
    pub fn trace_profile_a(clients: Vec<i64>, http: Vec<i64>, dns: Vec<i64>) -> Workload {
        Workload {
            seed: 0xA,
            packets: 10_000,
            mix: Mix { http: 0.75, dns: 0.15 },
            clients,
            http_servers: http,
            dns_servers: dns,
            mean_payload: 900,
            packets_per_sec: 168_000,
        }
    }

    /// The second profile: DNS-heavy, smaller packets (≈11.4 MB/s of log).
    pub fn trace_profile_b(clients: Vec<i64>, http: Vec<i64>, dns: Vec<i64>) -> Workload {
        Workload {
            seed: 0xB,
            packets: 10_000,
            mix: Mix { http: 0.35, dns: 0.45 },
            clients,
            http_servers: http,
            dns_servers: dns,
            mean_payload: 320,
            packets_per_sec: 95_000,
        }
    }

    /// Generate the packet sequence.
    pub fn generate(&self) -> Vec<Injection> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.packets);
        if self.clients.is_empty() {
            return out;
        }
        // Zipf-ish cumulative weights over clients.
        let weights: Vec<f64> =
            (0..self.clients.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let total: f64 = weights.iter().sum();
        for seq in 0..self.packets {
            let mut pick = rng.gen::<f64>() * total;
            let mut ci = 0;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    ci = i;
                    break;
                }
                pick -= w;
            }
            let client = self.clients[ci];
            let r = rng.gen::<f64>();
            let mut pkt = if r < self.mix.http && !self.http_servers.is_empty() {
                let srv = self.http_servers[rng.gen_range(0..self.http_servers.len())];
                Packet::http(seq as u64, client, srv)
            } else if r < self.mix.http + self.mix.dns && !self.dns_servers.is_empty() {
                let srv = self.dns_servers[rng.gen_range(0..self.dns_servers.len())];
                Packet::dns(seq as u64, client, srv)
            } else {
                // ICMP ping to a random peer (background traffic).
                let all: &Vec<i64> = &self.clients;
                let dst = all[rng.gen_range(0..all.len())];
                Packet::icmp(seq as u64, client, dst)
            };
            // Payload jitter around the profile mean.
            let jitter = rng.gen_range(0..=self.mean_payload / 2);
            pkt.payload = self.mean_payload / 2 + jitter;
            out.push((client, pkt));
        }
        out
    }

    /// Total wire bytes of the generated workload.
    pub fn total_bytes(&self) -> u64 {
        self.generate().iter().map(|(_, p)| p.wire_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_sdn::packet::Proto;

    fn spec() -> Workload {
        Workload {
            seed: 7,
            packets: 2000,
            mix: Mix { http: 0.6, dns: 0.2 },
            clients: vec![1, 2, 3, 4, 5],
            http_servers: vec![10, 20],
            dns_servers: vec![17],
            mean_payload: 400,
            packets_per_sec: 10_000,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate();
        let b = spec().generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2000);
    }

    #[test]
    fn mix_fractions_are_respected() {
        let pkts = spec().generate();
        let http = pkts.iter().filter(|(_, p)| p.proto == Proto::Tcp).count() as f64;
        let dns = pkts.iter().filter(|(_, p)| p.proto == Proto::Udp).count() as f64;
        let n = pkts.len() as f64;
        assert!((http / n - 0.6).abs() < 0.05, "http fraction {}", http / n);
        assert!((dns / n - 0.2).abs() < 0.05, "dns fraction {}", dns / n);
    }

    #[test]
    fn client_popularity_is_skewed() {
        let pkts = spec().generate();
        let count = |c: i64| pkts.iter().filter(|(src, _)| *src == c).count();
        // Zipf-ish: client 1 strictly more popular than client 5.
        assert!(count(1) > count(5) * 2);
    }

    #[test]
    fn profiles_differ_in_size_and_mix() {
        let a = Workload::trace_profile_a(vec![1, 2], vec![10], vec![17]);
        let b = Workload::trace_profile_b(vec![1, 2], vec![10], vec![17]);
        // Profile A is HTTP-heavy with larger packets → more bytes.
        assert!(a.total_bytes() > b.total_bytes());
    }

    #[test]
    fn empty_clients_yield_empty_workload() {
        let mut w = spec();
        w.clients.clear();
        assert!(w.generate().is_empty());
    }

    #[test]
    fn http_destinations_are_http_servers() {
        let pkts = spec().generate();
        for (_, p) in pkts {
            if p.proto == Proto::Tcp {
                assert!([10, 20].contains(&p.dst_ip));
                assert_eq!(p.dst_port, 80);
            } else if p.proto == Proto::Udp {
                assert_eq!(p.dst_ip, 17);
                assert_eq!(p.dst_port, 53);
            }
        }
    }
}
