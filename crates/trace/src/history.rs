//! The replayable history log.
//!
//! "At runtime, the controller and the network each record relevant
//! control-plane messages and packets to a log, which can be used to answer
//! diagnostic queries later" (§5.1). The history is also the input to
//! backtesting (§4.3): candidate repairs are evaluated against the packets
//! the network actually saw. Each entry is charged the paper's 120 bytes
//! (packet header + timestamp) for the §5.4 storage accounting.

use mpr_sdn::controller::PacketInMsg;
use mpr_sdn::packet::Packet;
use serde::{Deserialize, Serialize};

/// The paper's per-entry log cost (§5.4: "a 120-byte log entry that
/// contains the packet header and the timestamp").
pub const LOG_ENTRY_BYTES: u64 = 120;

/// One logged ingress packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// Simulated time of the PacketIn.
    pub time: u64,
    /// Switch that punted.
    pub switch: i64,
    /// Ingress port.
    pub in_port: i64,
    /// The packet.
    pub packet: Packet,
}

/// A replayable log of what the controller saw.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct History {
    /// Entries in time order.
    pub entries: Vec<HistoryEntry>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capture a simulation's PacketIn log.
    pub fn from_packet_ins(log: &[(u64, PacketInMsg)]) -> History {
        History {
            entries: log
                .iter()
                .map(|(t, m)| HistoryEntry {
                    time: *t,
                    switch: m.switch,
                    in_port: m.in_port,
                    packet: m.packet.clone(),
                })
                .collect(),
        }
    }

    /// Record one entry.
    pub fn push(&mut self, time: u64, switch: i64, in_port: i64, packet: Packet) {
        self.entries.push(HistoryEntry { time, switch, in_port, packet });
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Storage footprint under the paper's 120-byte entries.
    pub fn storage_bytes(&self) -> u64 {
        self.entries.len() as u64 * LOG_ENTRY_BYTES
    }

    /// Logging rate in MB/s given the wall-clock duration the log covers.
    pub fn rate_mb_per_s(&self, duration_secs: f64) -> f64 {
        if duration_secs <= 0.0 {
            return 0.0;
        }
        self.storage_bytes() as f64 / 1e6 / duration_secs
    }

    /// Take a deterministic 1-in-`n` sample ("to generate a plausible
    /// workload, we can use … a sample of packets", §4.3).
    pub fn sample(&self, n: usize) -> History {
        if n <= 1 {
            return self.clone();
        }
        History {
            entries: self
                .entries
                .iter()
                .enumerate()
                .filter(|(i, _)| i % n == 0)
                .map(|(_, e)| e.clone())
                .collect(),
        }
    }

    /// Entries within `[from, to)`.
    pub fn window(&self, from: u64, to: u64) -> History {
        History {
            entries: self
                .entries
                .iter()
                .filter(|e| e.time >= from && e.time < to)
                .cloned()
                .collect(),
        }
    }

    /// Serialize to JSON (the on-disk log format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("history serializes")
    }

    /// Parse the JSON log format.
    pub fn from_json(s: &str) -> Result<History, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(n: usize) -> History {
        let mut h = History::new();
        for i in 0..n {
            h.push(i as u64 * 10, 1, 0, Packet::http(i as u64, 5, 10));
        }
        h
    }

    #[test]
    fn storage_accounting_uses_paper_entry_size() {
        let h = hist(1000);
        assert_eq!(h.storage_bytes(), 120_000);
        assert!((h.rate_mb_per_s(1.0) - 0.12).abs() < 1e-9);
        assert_eq!(h.rate_mb_per_s(0.0), 0.0);
    }

    #[test]
    fn sampling_and_windowing() {
        let h = hist(100);
        assert_eq!(h.sample(10).len(), 10);
        assert_eq!(h.sample(1).len(), 100);
        let w = h.window(100, 300);
        assert_eq!(w.len(), 20);
        assert!(w.entries.iter().all(|e| e.time >= 100 && e.time < 300));
    }

    #[test]
    fn json_roundtrip() {
        let h = hist(5);
        let parsed = History::from_json(&h.to_json()).unwrap();
        assert_eq!(parsed, h);
        assert!(History::from_json("not json").is_err());
    }

    #[test]
    fn from_packet_ins_preserves_order() {
        use mpr_sdn::controller::PacketInMsg;
        let log = vec![
            (5u64, PacketInMsg { switch: 1, in_port: 0, packet: Packet::http(0, 1, 2) }),
            (9u64, PacketInMsg { switch: 2, in_port: 3, packet: Packet::dns(1, 1, 17) }),
        ];
        let h = History::from_packet_ins(&log);
        assert_eq!(h.len(), 2);
        assert_eq!(h.entries[0].time, 5);
        assert_eq!(h.entries[1].switch, 2);
        assert!(!h.is_empty());
    }
}
