//! # mpr-trace — workloads and replayable history
//!
//! The traffic substrate of the reproduction (§5.2/§5.4):
//!
//! - [`workload::Workload`] — deterministic synthetic campus traffic with
//!   protocol mixes, Zipf-ish client popularity, and two profiles standing
//!   in for the Benson et al. campus traces (synthetic stand-ins, since the
//!   original traces are not redistributable);
//! - [`history::History`] — the 120-byte-per-entry ingress log the
//!   controller records at runtime, which backtesting replays (§4.3) and
//!   the storage experiment sizes (§5.4).

#![warn(missing_docs)]

pub mod history;
pub mod workload;

pub use history::{History, HistoryEntry, LOG_ENTRY_BYTES};
pub use workload::{Injection, Mix, Workload};
