//! Abstract syntax of NDlog programs.
//!
//! The grammar follows §2.1 and Fig. 3 of the paper. A *rule* has the shape
//!
//! ```text
//! r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
//! ```
//!
//! i.e. a head atom, a set of body predicates (joins), a set of *selection
//! predicates* (comparisons), and a set of *assignments*. µDlog (Fig. 3) is
//! the restriction checked by [`crate::udlog`].

use crate::schema::Catalog;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators allowed in selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// All operators, in a stable order (used by the repair generator to
    /// enumerate operator mutations).
    pub const ALL: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

    /// The four µDlog operators of Fig. 3 (`==`, `!=`, `<`, `>`).
    pub const UDLOG: [CmpOp; 4] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Gt];

    /// Evaluate the comparison on two values. Integers compare numerically;
    /// strings and booleans support all orderings via their `Ord` instance
    /// (lexicographic for strings). Mixed-type comparisons are equal-never /
    /// unequal-always, which keeps repair search total.
    pub fn eval(&self, l: &Value, r: &Value) -> bool {
        use std::cmp::Ordering::*;
        let ord = match (l, r) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => {
                // Mixed types: only Eq/Ne are meaningful.
                return match self {
                    CmpOp::Eq => false,
                    CmpOp::Ne => true,
                    _ => false,
                };
            }
        };
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The negated operator (`==` ↔ `!=`, `<` ↔ `>=`, ...).
    pub fn negate(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Source form.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Binary arithmetic operators usable inside expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+` (integer addition; string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division)
    Div,
    /// `%`
    Mod,
}

impl BinOp {
    /// Source form.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Aggregate functions usable in rule heads (NDlog's `a_count<X>` et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggKind {
    /// `a_count<V>` — number of satisfying derivations.
    Count,
    /// `a_min<V>`
    Min,
    /// `a_max<V>`
    Max,
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggKind::Count => f.write_str("a_count"),
            AggKind::Min => f.write_str("a_min"),
            AggKind::Max => f.write_str("a_max"),
        }
    }
}

/// A term in an atom argument position.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A variable, e.g. `Swi`.
    Var(String),
    /// A constant, e.g. `80`.
    Const(Value),
    /// An aggregate over a variable (head positions only), e.g. `a_count<N>`.
    Agg(AggKind, String),
}

impl Term {
    /// Variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Constant value, if this is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Const(c) => write!(f, "{c}"),
            Term::Agg(k, v) => write!(f, "{k}<{v}>"),
        }
    }
}

/// An atom: `Table(@Loc, Arg1, ..., ArgN)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Table name.
    pub table: String,
    /// Location term (the `@` column).
    pub loc: Term,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(table: impl Into<String>, loc: Term, args: Vec<Term>) -> Self {
        Atom { table: table.into(), loc, args }
    }

    /// All variables appearing in this atom (location included).
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        if let Term::Var(v) = &self.loc {
            out.insert(v.clone());
        }
        for a in &self.args {
            match a {
                Term::Var(v) => {
                    out.insert(v.clone());
                }
                Term::Agg(_, v) => {
                    out.insert(v.clone());
                }
                Term::Const(_) => {}
            }
        }
        out
    }

    /// `true` when any argument is an aggregate.
    pub fn has_agg(&self) -> bool {
        self.args.iter().any(|t| matches!(t, Term::Agg(..)))
    }

    /// The columns of this atom whose value is determined once every
    /// variable in `bound` has a binding: constants, plus variables drawn
    /// from `bound`. Column `0` is the location, column `i + 1` is argument
    /// `i`. This is the join-planning hook: an evaluation engine can hash
    /// a relation on exactly these columns and probe instead of scanning.
    pub fn bound_positions(&self, bound: &BTreeSet<String>) -> Vec<(usize, &Term)> {
        let determined = |t: &Term| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
            Term::Agg(..) => false,
        };
        std::iter::once((0usize, &self.loc))
            .chain(self.args.iter().enumerate().map(|(i, t)| (i + 1, t)))
            .filter(|(_, t)| determined(t))
            .collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(@{}", self.table, self.loc)?;
        for a in &self.args {
            write!(f, ",{a}")?;
        }
        write!(f, ")")
    }
}

/// An expression: constants, variables, arithmetic, and built-in calls.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Literal constant.
    Const(Value),
    /// Variable reference.
    Var(String),
    /// Binary arithmetic.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Built-in function call, e.g. `f_unique()`, `f_match(A,B)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Self {
        Expr::Const(Value::Int(v))
    }

    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// All variables mentioned in the expression.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Binary(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// The sub-expression at `path` (a sequence of child indices), if any.
    pub fn at_path(&self, path: &[u8]) -> Option<&Expr> {
        let mut cur = self;
        for &step in path {
            cur = match cur {
                Expr::Binary(_, l, r) => match step {
                    0 => l,
                    1 => r,
                    _ => return None,
                },
                Expr::Call(_, args) => args.get(step as usize)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Mutable access to the sub-expression at `path`.
    pub fn at_path_mut(&mut self, path: &[u8]) -> Option<&mut Expr> {
        let mut cur = self;
        for &step in path {
            cur = match cur {
                Expr::Binary(_, l, r) => match step {
                    0 => l.as_mut(),
                    1 => r.as_mut(),
                    _ => return None,
                },
                Expr::Call(_, args) => args.get_mut(step as usize)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Enumerate `(path, value)` for every constant in the expression, in
    /// left-to-right order.
    pub fn constants(&self) -> Vec<(Vec<u8>, &Value)> {
        let mut out = Vec::new();
        self.collect_constants(&mut Vec::new(), &mut out);
        out
    }

    fn collect_constants<'a>(&'a self, path: &mut Vec<u8>, out: &mut Vec<(Vec<u8>, &'a Value)>) {
        match self {
            Expr::Const(v) => out.push((path.clone(), v)),
            Expr::Var(_) => {}
            Expr::Binary(_, l, r) => {
                path.push(0);
                l.collect_constants(path, out);
                path.pop();
                path.push(1);
                r.collect_constants(path, out);
                path.pop();
            }
            Expr::Call(_, args) => {
                for (i, a) in args.iter().enumerate() {
                    path.push(i as u8);
                    a.collect_constants(path, out);
                    path.pop();
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(v) => f.write_str(v),
            Expr::Binary(op, l, r) => {
                // Parenthesize nested binaries so precedence survives the
                // round trip without a precedence-aware printer.
                let fmt_side = |f: &mut fmt::Formatter<'_>, e: &Expr| -> fmt::Result {
                    match e {
                        Expr::Binary(..) => write!(f, "({e})"),
                        _ => write!(f, "{e}"),
                    }
                };
                fmt_side(f, l)?;
                write!(f, " {op} ")?;
                fmt_side(f, r)
            }
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A selection predicate: `lhs op rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Selection {
    /// Left-hand expression.
    pub lhs: Expr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand expression.
    pub rhs: Expr,
}

impl Selection {
    /// Build a selection.
    pub fn new(lhs: Expr, op: CmpOp, rhs: Expr) -> Self {
        Selection { lhs, op, rhs }
    }

    /// The selection ID (SID) used by the meta model: the source text of the
    /// predicate, e.g. `"Swi == 2"`.
    pub fn sid(&self) -> String {
        self.to_string()
    }

    /// All variables mentioned.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut v = self.lhs.vars();
        v.extend(self.rhs.vars());
        v
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// An assignment: `Var := expr`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assign {
    /// Target variable.
    pub var: String,
    /// Source expression.
    pub expr: Expr,
}

impl Assign {
    /// Build an assignment.
    pub fn new(var: impl Into<String>, expr: Expr) -> Self {
        Assign { var: var.into(), expr }
    }
}

impl fmt::Display for Assign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} := {}", self.var, self.expr)
    }
}

/// One derivation rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Rule identifier (`r1`, `h2`, ...). Unique within a program.
    pub id: String,
    /// Head atom.
    pub head: Atom,
    /// Body predicates (joined).
    pub body: Vec<Atom>,
    /// Selection predicates.
    pub sels: Vec<Selection>,
    /// Assignments, evaluated in order after the join.
    pub assigns: Vec<Assign>,
}

impl Rule {
    /// Build a rule.
    pub fn new(
        id: impl Into<String>,
        head: Atom,
        body: Vec<Atom>,
        sels: Vec<Selection>,
        assigns: Vec<Assign>,
    ) -> Self {
        Rule { id: id.into(), head, body, sels, assigns }
    }

    /// Variables bound by the body predicates (join variables).
    pub fn body_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for a in &self.body {
            out.extend(a.vars());
        }
        out
    }

    /// Variables bound by assignments.
    pub fn assigned_vars(&self) -> BTreeSet<String> {
        self.assigns.iter().map(|a| a.var.clone()).collect()
    }

    /// Head variables that are bound nowhere in the body — a validity error.
    pub fn unbound_head_vars(&self) -> BTreeSet<String> {
        let mut bound = self.body_vars();
        bound.extend(self.assigned_vars());
        self.head
            .vars()
            .into_iter()
            .filter(|v| !bound.contains(v))
            .collect()
    }

    /// `true` if the head carries an aggregate (an "AggWrap" rule, App. B.1).
    pub fn is_aggregate(&self) -> bool {
        self.head.has_agg()
    }

    /// Enumerate every constant in the rule with a stable [`ConstSite`]
    /// locator. This is the surface the repair generator mutates.
    pub fn constants(&self) -> Vec<(ConstSite, Value)> {
        let mut out = Vec::new();
        for (i, sel) in self.sels.iter().enumerate() {
            for (path, v) in sel.lhs.constants() {
                out.push((
                    ConstSite::Selection { idx: i, side: ExprSide::Lhs, path },
                    v.clone(),
                ));
            }
            for (path, v) in sel.rhs.constants() {
                out.push((
                    ConstSite::Selection { idx: i, side: ExprSide::Rhs, path },
                    v.clone(),
                ));
            }
        }
        for (i, asg) in self.assigns.iter().enumerate() {
            for (path, v) in asg.expr.constants() {
                out.push((ConstSite::Assign { idx: i, path }, v.clone()));
            }
        }
        for (i, t) in self.head.args.iter().enumerate() {
            if let Term::Const(v) = t {
                out.push((ConstSite::HeadArg { idx: i }, v.clone()));
            }
        }
        for (pi, atom) in self.body.iter().enumerate() {
            for (ai, t) in atom.args.iter().enumerate() {
                if let Term::Const(v) = t {
                    out.push((ConstSite::BodyArg { pred: pi, arg: ai }, v.clone()));
                }
            }
        }
        out
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} :- ", self.id, self.head)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, ", ")
            }
        };
        for a in &self.body {
            sep(f)?;
            write!(f, "{a}")?;
        }
        for s in &self.sels {
            sep(f)?;
            write!(f, "{s}")?;
        }
        for a in &self.assigns {
            sep(f)?;
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

/// Which side of a selection an expression constant sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExprSide {
    /// Left-hand side.
    Lhs,
    /// Right-hand side.
    Rhs,
}

/// A stable locator for a constant inside a rule. Used by the meta model
/// (the `ID` column of `Const` meta tuples) and by program patches.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstSite {
    /// Inside selection `idx`, on `side`, at expression `path`.
    Selection {
        /// Selection index in [`Rule::sels`].
        idx: usize,
        /// Which side of the comparison.
        side: ExprSide,
        /// Path of child indices inside the expression tree.
        path: Vec<u8>,
    },
    /// Inside assignment `idx`'s right-hand expression.
    Assign {
        /// Assignment index in [`Rule::assigns`].
        idx: usize,
        /// Path of child indices inside the expression tree.
        path: Vec<u8>,
    },
    /// A constant head argument.
    HeadArg {
        /// Argument index in the head atom.
        idx: usize,
    },
    /// A constant argument of a body predicate.
    BodyArg {
        /// Predicate index in [`Rule::body`].
        pred: usize,
        /// Argument index in that predicate.
        arg: usize,
    },
}

impl fmt::Display for ConstSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstSite::Selection { idx, side, path } => {
                write!(f, "sel{idx}.{}", if *side == ExprSide::Lhs { "l" } else { "r" })?;
                for p in path {
                    write!(f, ".{p}")?;
                }
                Ok(())
            }
            ConstSite::Assign { idx, path } => {
                write!(f, "asg{idx}")?;
                for p in path {
                    write!(f, ".{p}")?;
                }
                Ok(())
            }
            ConstSite::HeadArg { idx } => write!(f, "head.{idx}"),
            ConstSite::BodyArg { pred, arg } => write!(f, "body{pred}.{arg}"),
        }
    }
}

/// A full NDlog program: schema declarations plus rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Program {
    /// Program name (for reports).
    pub name: String,
    /// Declared table schemas.
    pub catalog: Catalog,
    /// Rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program { name: name.into(), catalog: Catalog::new(), rules: Vec::new() }
    }

    /// Find a rule by id.
    pub fn rule(&self, id: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// Mutable access to a rule by id.
    pub fn rule_mut(&mut self, id: &str) -> Option<&mut Rule> {
        self.rules.iter_mut().find(|r| r.id == id)
    }

    /// Rules whose head derives into `table`.
    pub fn rules_for_table(&self, table: &str) -> Vec<&Rule> {
        self.rules.iter().filter(|r| r.head.table == table).collect()
    }

    /// All table names mentioned anywhere (heads and bodies).
    pub fn tables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            out.insert(r.head.table.clone());
            for b in &r.body {
                out.insert(b.table.clone());
            }
        }
        out
    }

    /// Tables that appear only in bodies — they must be fed externally
    /// ("base tables", §2.1).
    pub fn base_tables(&self) -> BTreeSet<String> {
        let heads: BTreeSet<_> = self.rules.iter().map(|r| r.head.table.clone()).collect();
        self.tables().into_iter().filter(|t| !heads.contains(t)).collect()
    }

    /// Validate the program: unique rule ids, no unbound head variables,
    /// consistent arity per table.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = BTreeSet::new();
        let mut arities: std::collections::BTreeMap<&str, usize> = Default::default();
        for r in &self.rules {
            if !seen.insert(r.id.clone()) {
                return Err(format!("duplicate rule id `{}`", r.id));
            }
            let unbound = r.unbound_head_vars();
            if !unbound.is_empty() {
                return Err(format!(
                    "rule `{}`: unbound head variables {:?}",
                    r.id, unbound
                ));
            }
            for atom in std::iter::once(&r.head).chain(r.body.iter()) {
                let a = arities.entry(atom.table.as_str()).or_insert(atom.args.len());
                if *a != atom.args.len() {
                    return Err(format!(
                        "table `{}` used with arities {} and {}",
                        atom.table,
                        a,
                        atom.args.len()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total number of source lines when pretty-printed (schema declarations
    /// plus one line per rule). Used by the Fig. 10 program-size experiment.
    pub fn line_count(&self) -> usize {
        self.catalog.len() + self.rules.len()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in self.catalog.iter() {
            writeln!(f, "{s}")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_r7() -> Rule {
        // r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
        Rule::new(
            "r7",
            Atom::new(
                "FlowTable",
                Term::Var("Swi".into()),
                vec![Term::Var("Hdr".into()), Term::Var("Prt".into())],
            ),
            vec![Atom::new(
                "PacketIn",
                Term::Var("C".into()),
                vec![Term::Var("Swi".into()), Term::Var("Hdr".into())],
            )],
            vec![
                Selection::new(Expr::var("Swi"), CmpOp::Eq, Expr::int(2)),
                Selection::new(Expr::var("Hdr"), CmpOp::Eq, Expr::int(80)),
            ],
            vec![Assign::new("Prt", Expr::int(2))],
        )
    }

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(
            fig2_r7().to_string(),
            "r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2."
        );
    }

    #[test]
    fn cmp_op_eval_and_negate() {
        use Value::Int;
        assert!(CmpOp::Eq.eval(&Int(2), &Int(2)));
        assert!(CmpOp::Ne.eval(&Int(2), &Int(3)));
        assert!(CmpOp::Lt.eval(&Int(2), &Int(3)));
        assert!(CmpOp::Le.eval(&Int(3), &Int(3)));
        assert!(CmpOp::Gt.eval(&Int(4), &Int(3)));
        assert!(CmpOp::Ge.eval(&Int(3), &Int(3)));
        for op in CmpOp::ALL {
            // negation flips the outcome on every integer pair
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_ne!(
                    op.eval(&Int(a), &Int(b)),
                    op.negate().eval(&Int(a), &Int(b)),
                    "{op} on ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn mixed_type_comparisons_are_total() {
        assert!(!CmpOp::Eq.eval(&Value::Int(1), &Value::str("1")));
        assert!(CmpOp::Ne.eval(&Value::Int(1), &Value::str("1")));
        assert!(!CmpOp::Lt.eval(&Value::Int(1), &Value::str("1")));
    }

    #[test]
    fn rule_var_analysis() {
        let r = fig2_r7();
        assert!(r.body_vars().contains("Swi"));
        assert!(r.body_vars().contains("C"));
        assert_eq!(r.assigned_vars().len(), 1);
        assert!(r.unbound_head_vars().is_empty());
        assert!(!r.is_aggregate());
    }

    #[test]
    fn unbound_head_var_detected() {
        let mut r = fig2_r7();
        r.assigns.clear(); // Prt no longer bound
        assert_eq!(r.unbound_head_vars().into_iter().collect::<Vec<_>>(), vec!["Prt"]);
    }

    #[test]
    fn constant_enumeration_finds_all_sites() {
        let r = fig2_r7();
        let consts = r.constants();
        // Swi == 2 (rhs), Hdr == 80 (rhs), Prt := 2
        assert_eq!(consts.len(), 3);
        let descr: Vec<String> =
            consts.iter().map(|(s, v)| format!("{s}={v}")).collect();
        assert_eq!(descr, vec!["sel0.r=2", "sel1.r=80", "asg0=2"]);
    }

    #[test]
    fn expr_paths() {
        // (A + 2) * 3
        let e = Expr::Binary(
            BinOp::Mul,
            Box::new(Expr::Binary(BinOp::Add, Box::new(Expr::var("A")), Box::new(Expr::int(2)))),
            Box::new(Expr::int(3)),
        );
        assert_eq!(e.at_path(&[0, 1]), Some(&Expr::int(2)));
        assert_eq!(e.at_path(&[1]), Some(&Expr::int(3)));
        assert_eq!(e.at_path(&[0, 0]), Some(&Expr::var("A")));
        assert_eq!(e.at_path(&[2]), None);
        let consts = e.constants();
        assert_eq!(consts.len(), 2);
        assert_eq!(consts[0].0, vec![0, 1]);
        assert_eq!(consts[1].0, vec![1]);
        assert_eq!(e.to_string(), "(A + 2) * 3");
    }

    #[test]
    fn program_base_tables_and_validation() {
        let mut p = Program::new("test");
        p.rules.push(fig2_r7());
        assert!(p.validate().is_ok());
        assert_eq!(
            p.base_tables().into_iter().collect::<Vec<_>>(),
            vec!["PacketIn".to_string()]
        );
        assert!(p.rule("r7").is_some());
        assert!(p.rule("r8").is_none());
        assert_eq!(p.rules_for_table("FlowTable").len(), 1);

        // Duplicate id rejected.
        p.rules.push(fig2_r7());
        assert!(p.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut p = Program::new("test");
        p.rules.push(fig2_r7());
        let mut r2 = fig2_r7();
        r2.id = "r8".into();
        r2.head.args.push(Term::Const(Value::Int(1))); // FlowTable now arity 3
        p.rules.push(r2);
        assert!(p.validate().unwrap_err().contains("arities"));
    }
}
