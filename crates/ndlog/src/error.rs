//! Error types shared across the crate.

use std::fmt;

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub msg: String,
}

impl ParseError {
    /// Build an error at a position.
    pub fn at(line: u32, col: u32, msg: impl Into<String>) -> Self {
        ParseError { line, col, msg: msg.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// An expression-evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was not bound in the environment.
    UnboundVar(String),
    /// Integer division or modulo by zero.
    DivideByZero,
    /// Operand types did not fit the operator.
    TypeError(String),
    /// Unknown built-in function.
    UnknownFunc(String),
    /// Built-in called with the wrong number of arguments.
    BadArity { /// Function name.
        func: String, /// Expected argument count.
        expected: usize, /// Actual argument count.
        got: usize },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            EvalError::DivideByZero => f.write_str("division by zero"),
            EvalError::TypeError(m) => write!(f, "type error: {m}"),
            EvalError::UnknownFunc(n) => write!(f, "unknown function `{n}`"),
            EvalError::BadArity { func, expected, got } => {
                write!(f, "`{func}` expects {expected} argument(s), got {got}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// A patch-application error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// The referenced rule does not exist.
    NoSuchRule(String),
    /// The referenced site (selection/predicate/argument) does not exist.
    NoSuchSite(String),
    /// Applying the edit would produce a syntactically invalid program
    /// (§4.2: "we must ensure that the change does not violate the syntax").
    WouldBreakSyntax(String),
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::NoSuchRule(r) => write!(f, "no such rule `{r}`"),
            PatchError::NoSuchSite(s) => write!(f, "no such edit site: {s}"),
            PatchError::WouldBreakSyntax(m) => write!(f, "edit would break syntax: {m}"),
        }
    }
}

impl std::error::Error for PatchError {}
