//! Runtime values of the NDlog data model.
//!
//! µDlog (the toy language of §3) only has integers; full NDlog programs in
//! this workspace additionally use strings (table/rule identifiers inside
//! meta tuples, action names), booleans (selection results inside the meta
//! model) and the join-ID wildcard `*` from Fig. 4.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A first-class NDlog value.
///
/// `Value` is totally ordered so tuples can live in ordered indices; the
/// ordering across variants is arbitrary but stable (Int < Str < Bool <
/// Wild).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit signed integer — the only µDlog type.
    Int(i64),
    /// An interned-ish string (rule ids, table names, MAC addresses...).
    Str(String),
    /// A boolean, used by the meta model for selection outcomes.
    Bool(bool),
    /// The join-ID wildcard `*` of the meta model (Fig. 4): matches any
    /// join ID under [`Value::matches_wild`].
    Wild,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` when the value is the wildcard `*`.
    pub fn is_wild(&self) -> bool {
        matches!(self, Value::Wild)
    }

    /// Wildcard-aware equality: the meta model's `f_match(a, b)` — true iff
    /// `a == b` or either side is `*` (Fig. 4, §3.2).
    pub fn matches_wild(&self, other: &Value) -> bool {
        self.is_wild() || other.is_wild() || self == other
    }

    /// The meta model's `f_join(a, b)`: returns `a` if `b` is `*`, else `b`.
    ///
    /// Used to resolve the concrete join ID when one operand of a selection
    /// came from a constant (whose `Expr` meta tuple carries `JID = *`).
    pub fn join_wild(&self, other: &Value) -> Value {
        if other.is_wild() {
            self.clone()
        } else {
            other.clone()
        }
    }

    /// A short type tag, mirroring the `Typ` columns of the full NDlog meta
    /// model (Appendix B.1).
    pub fn type_tag(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
            Value::Wild => "wild",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => {
                // Bare identifiers print unquoted; anything else is quoted so
                // the pretty-printer round-trips through the parser.
                if !s.is_empty()
                    && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                    && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    write!(f, "{s}")
                } else {
                    write!(f, "'{s}'")
                }
            }
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Wild => write!(f, "*"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_matching_is_symmetric_and_reflexive() {
        let a = Value::Int(3);
        let b = Value::Int(4);
        assert!(a.matches_wild(&a));
        assert!(!a.matches_wild(&b));
        assert!(Value::Wild.matches_wild(&a));
        assert!(a.matches_wild(&Value::Wild));
        assert!(Value::Wild.matches_wild(&Value::Wild));
    }

    #[test]
    fn join_prefers_concrete_side() {
        let j = Value::Int(42);
        assert_eq!(j.join_wild(&Value::Wild), j);
        assert_eq!(Value::Wild.join_wild(&j), j);
        assert_eq!(j.join_wild(&Value::Int(7)), Value::Int(7));
    }

    #[test]
    fn display_round_trips_bare_and_quoted_strings() {
        assert_eq!(Value::str("output-1").to_string(), "output-1");
        assert_eq!(Value::str("FlowTable").to_string(), "'FlowTable'");
        assert_eq!(Value::str("Swi == 2").to_string(), "'Swi == 2'");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(5).as_str(), None);
        assert!(Value::Wild.is_wild());
        assert_eq!(Value::Int(1).type_tag(), "int");
        assert_eq!(Value::str("s").type_tag(), "str");
        assert_eq!(Value::Bool(false).type_tag(), "bool");
        assert_eq!(Value::Wild.type_tag(), "wild");
    }

    #[test]
    fn ordering_is_stable_across_variants() {
        let mut vs = vec![Value::Wild, Value::Bool(false), Value::str("a"), Value::Int(9)];
        vs.sort();
        assert_eq!(
            vs,
            vec![Value::Int(9), Value::str("a"), Value::Bool(false), Value::Wild]
        );
    }
}
