//! # mpr-ndlog — the NDlog controller language
//!
//! Network Datalog (NDlog, Loo et al., CACM'09) is the declarative language
//! the paper uses to express SDN controller programs (§2.1): a program is a
//! set of rules `Head(@Loc, ...) :- Body..., selections..., assignments...`
//! over tuples that live on nodes (`@` is the location specifier).
//!
//! This crate provides the *language substrate* of the reproduction:
//!
//! - [`value::Value`] / [`tuple::Tuple`] — the data model (integers,
//!   strings, booleans, and the meta model's `*` wildcard);
//! - [`ast`] — programs, rules, atoms, expressions, selections, assignments;
//! - [`parser`] — a recursive-descent parser for the concrete syntax of
//!   Fig. 2/Fig. 3, plus `materialize(...)` schema declarations;
//! - [`eval`] — expression/selection evaluation with built-in functions
//!   (`f_match`, `f_join`, `f_unique`, `f_concat`);
//! - [`patch`] — program edits, the concrete form of repairs (Table 2);
//! - [`udlog`] — the µDlog restriction checker (Fig. 3);
//! - [`schema`] — table schemas (state vs event, primary keys).
//!
//! The evaluation *engine* lives in `mpr-runtime`; the meta model and the
//! repair search live in `mpr-core`.

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod patch;
pub mod schema;
pub mod tuple;
pub mod udlog;
pub mod value;

pub use ast::{
    AggKind, Assign, Atom, BinOp, CmpOp, ConstSite, Expr, ExprSide, Program, Rule, Selection, Term,
};
pub use error::{EvalError, ParseError, PatchError};
pub use eval::{CountingFuncs, Env, FuncHost, PureFuncs};
pub use parser::{parse_program, parse_rule};
pub use patch::{Edit, Patch};
pub use schema::{Catalog, Persistence, Schema};
pub use tuple::{SignedTuple, Tuple};
pub use value::Value;
