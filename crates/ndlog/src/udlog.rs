//! µDlog — the restricted toy dialect of Fig. 3.
//!
//! µDlog is NDlog with: two payload columns per table, one or two body
//! predicates, at most two selection predicates, operators drawn from
//! `{==, !=, <, >}`, and integers as the only data type. The paper notes
//! that the Fig. 2 controller program "happens to already be a valid µDlog
//! program"; we relax "exactly two selection predicates" to "one or two"
//! accordingly (Fig. 2's `r1` has a single selection).

use crate::ast::{CmpOp, Expr, Program, Rule, Term};
use crate::value::Value;

/// Maximum payload arity of a µDlog table.
pub const UDLOG_ARITY: usize = 2;
/// Maximum number of body predicates in a µDlog rule.
pub const UDLOG_MAX_PREDS: usize = 2;
/// Maximum number of selection predicates in a µDlog rule.
pub const UDLOG_MAX_SELS: usize = 2;

/// Check whether `program` is valid µDlog; returns the list of violations
/// (empty means valid).
pub fn violations(program: &Program) -> Vec<String> {
    let mut out = Vec::new();
    for r in &program.rules {
        rule_violations(r, &mut out);
    }
    out
}

/// `true` when the program conforms to the µDlog grammar.
pub fn is_udlog(program: &Program) -> bool {
    violations(program).is_empty()
}

fn rule_violations(r: &Rule, out: &mut Vec<String>) {
    if r.body.is_empty() || r.body.len() > UDLOG_MAX_PREDS {
        out.push(format!(
            "rule `{}`: µDlog rules have 1..={UDLOG_MAX_PREDS} body predicates, found {}",
            r.id,
            r.body.len()
        ));
    }
    if r.sels.len() > UDLOG_MAX_SELS {
        out.push(format!(
            "rule `{}`: µDlog rules have at most {UDLOG_MAX_SELS} selections, found {}",
            r.id,
            r.sels.len()
        ));
    }
    for atom in std::iter::once(&r.head).chain(r.body.iter()) {
        if atom.args.len() != UDLOG_ARITY {
            out.push(format!(
                "rule `{}`: table `{}` has {} columns, µDlog requires {UDLOG_ARITY}",
                r.id,
                atom.table,
                atom.args.len()
            ));
        }
        for t in &atom.args {
            if let Term::Const(v) = t {
                if !matches!(v, Value::Int(_)) {
                    out.push(format!(
                        "rule `{}`: non-integer constant `{v}` (µDlog is integer-only)",
                        r.id
                    ));
                }
            }
            if matches!(t, Term::Agg(..)) {
                out.push(format!("rule `{}`: aggregates are not µDlog", r.id));
            }
        }
    }
    for s in &r.sels {
        if !CmpOp::UDLOG.contains(&s.op) {
            out.push(format!(
                "rule `{}`: operator `{}` is not in µDlog's {{==, !=, <, >}}",
                r.id, s.op
            ));
        }
        for e in [&s.lhs, &s.rhs] {
            expr_violations(&r.id, e, out);
        }
    }
    for a in &r.assigns {
        expr_violations(&r.id, &a.expr, out);
    }
}

fn expr_violations(rule: &str, e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Const(Value::Int(_)) | Expr::Var(_) => {}
        Expr::Const(v) => {
            out.push(format!("rule `{rule}`: non-integer constant `{v}` (µDlog is integer-only)"))
        }
        Expr::Binary(_, l, r) => {
            expr_violations(rule, l, out);
            expr_violations(rule, r, out);
        }
        Expr::Call(name, _) => {
            out.push(format!("rule `{rule}`: built-in `{name}` is not µDlog"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn fig2_is_valid_udlog() {
        let p = parse_program(
            "fig2",
            r"
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt), Swi == 1.
            r2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 53, Prt := 2.
            r3 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr != 53, Prt := -1.
            r4 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr != 80, Prt := -1.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            r6 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 53, Prt := 2.
            r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
            ",
        )
        .unwrap();
        assert!(is_udlog(&p), "{:?}", violations(&p));
    }

    #[test]
    fn rejects_wide_tables() {
        let p = parse_program("t", "x T(@A,B,C,D) :- S(@A,B,C,D), B == 1.").unwrap();
        assert!(!is_udlog(&p));
        assert!(violations(&p)[0].contains("columns"));
    }

    #[test]
    fn rejects_le_ge_operators() {
        let p = parse_program("t", "x T(@A,B,C) :- S(@A,B,C), B <= 1.").unwrap();
        let v = violations(&p);
        assert!(v.iter().any(|m| m.contains("<=")));
    }

    #[test]
    fn rejects_non_integer_and_builtins() {
        let p = parse_program("t", "x T(@A,B,C) :- S(@A,B,C), B == 'str'.").unwrap();
        assert!(!is_udlog(&p));
        let p = parse_program("t", "x T(@A,B,C) :- S(@A,B,C), B == 1, C := f_unique().").unwrap();
        assert!(!is_udlog(&p));
    }

    #[test]
    fn rejects_too_many_predicates_or_selections() {
        let p = parse_program("t", "x T(@A,B,C) :- S(@A,B,C), U(@A,B,C), V(@A,B,C), B == 1.")
            .unwrap();
        assert!(violations(&p).iter().any(|m| m.contains("body predicates")));
        let p =
            parse_program("t", "x T(@A,B,C) :- S(@A,B,C), B == 1, B != 2, C == 3.").unwrap();
        assert!(violations(&p).iter().any(|m| m.contains("selections")));
    }
}
