//! Recursive-descent parser for NDlog programs.
//!
//! Grammar (a superset of the µDlog grammar in Fig. 3):
//!
//! ```text
//! program    ← (materialize | rule)*
//! materialize← "materialize" "(" IDENT "," lifetime "," INT "," "keys" "(" ints? ")" ")" "."
//! lifetime   ← "infinity" | "event"
//! rule       ← [ID] atom ":-" elem ("," elem)* "."
//! elem       ← atom | VAR ":=" expr | expr cmp expr
//! atom       ← TABLE "(" "@" term ("," term)* ")"
//! term       ← VAR | const | agg
//! agg        ← ("a_count"|"a_min"|"a_max") "<" VAR ">"
//! const      ← ["-"] INT | STRING | "true" | "false" | "*" | lowercase-IDENT
//! expr       ← addsub ; usual precedence, "(" expr ")" allowed
//! cmp        ← "==" | "!=" | "<" | "<=" | ">" | ">="
//! ```
//!
//! Identifier conventions follow datalog practice: uppercase-initial
//! identifiers are variables (or table names when followed by `(`),
//! lowercase-initial identifiers are built-in functions when followed by
//! `(` and bare string constants otherwise.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{lex, Spanned, Tok};
use crate::schema::{Persistence, Schema};
use crate::value::Value;

/// Parse a full program.
pub fn parse_program(name: &str, src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, auto_rule: 0 };
    let mut prog = Program::new(name);
    while !p.at_end() {
        if p.peek_ident() == Some("materialize") {
            let schema = p.materialize()?;
            prog.catalog.insert(schema);
        } else {
            let rule = p.rule()?;
            prog.rules.push(rule);
        }
    }
    Ok(prog)
}

/// Parse a single rule (convenience for tests and the repair generator).
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, auto_rule: 0 };
    let r = p.rule()?;
    if !p.at_end() {
        return Err(p.err("trailing input after rule"));
    }
    Ok(r)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    auto_rule: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        ParseError::at(line, col, msg)
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if *t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected `{tok}`, found `{t}`"))),
            None => Err(self.err(format!("expected `{tok}`, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(self.err_back(format!("expected identifier, found `{t}`"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn err_back(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos.saturating_sub(1))
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        ParseError::at(line, col, msg)
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(i),
            Some(t) => Err(self.err_back(format!("expected integer, found `{t}`"))),
            None => Err(self.err("expected integer, found end of input")),
        }
    }

    // materialize(Table, infinity, 3, keys(0,1)).
    fn materialize(&mut self) -> Result<Schema, ParseError> {
        self.expect_ident()?; // "materialize"
        self.expect(Tok::LParen)?;
        let table = self.expect_ident()?;
        self.expect(Tok::Comma)?;
        let life = self.expect_ident()?;
        let persistence = match life.as_str() {
            "infinity" => Persistence::State,
            "event" => Persistence::Event,
            other => {
                return Err(self.err_back(format!(
                    "lifetime must be `infinity` or `event`, found `{other}`"
                )))
            }
        };
        self.expect(Tok::Comma)?;
        let arity = self.expect_int()? as usize;
        self.expect(Tok::Comma)?;
        let kw = self.expect_ident()?;
        if kw != "keys" {
            return Err(self.err_back(format!("expected `keys`, found `{kw}`")));
        }
        self.expect(Tok::LParen)?;
        let mut keys = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                keys.push(self.expect_int()? as usize);
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::Dot)?;
        Ok(Schema { table, arity, keys, persistence })
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        // Optional rule id: IDENT IDENT "(" means id + head; IDENT "(" means
        // the head directly (auto-id).
        let id = match (self.peek(), self.peek2()) {
            (Some(Tok::Ident(_)), Some(Tok::Ident(_))) => {
                let id = self.expect_ident()?;
                Some(id)
            }
            _ => None,
        };
        let id = id.unwrap_or_else(|| {
            self.auto_rule += 1;
            format!("auto{}", self.auto_rule)
        });
        let head = self.atom()?;
        self.expect(Tok::Derives)?;
        let mut body = Vec::new();
        let mut sels = Vec::new();
        let mut assigns = Vec::new();
        loop {
            self.elem(&mut body, &mut sels, &mut assigns)?;
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                Some(Tok::Dot) => {
                    self.pos += 1;
                    break;
                }
                Some(t) => return Err(self.err(format!("expected `,` or `.`, found `{t}`"))),
                None => return Err(self.err("unterminated rule (missing `.`)")),
            }
        }
        Ok(Rule { id, head, body, sels, assigns })
    }

    fn elem(
        &mut self,
        body: &mut Vec<Atom>,
        sels: &mut Vec<Selection>,
        assigns: &mut Vec<Assign>,
    ) -> Result<(), ParseError> {
        // Atom: Uppercase-ident followed by "(".
        if let (Some(Tok::Ident(name)), Some(Tok::LParen)) = (self.peek(), self.peek2()) {
            if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                let a = self.atom()?;
                body.push(a);
                return Ok(());
            }
        }
        // Assignment: VAR ":=" expr.
        if let (Some(Tok::Ident(v)), Some(Tok::Assign)) = (self.peek(), self.peek2()) {
            let var = v.clone();
            self.pos += 2;
            let expr = self.expr()?;
            assigns.push(Assign { var, expr });
            return Ok(());
        }
        // Otherwise: selection `expr cmp expr`.
        let lhs = self.expr()?;
        let op = match self.next() {
            Some(Tok::EqEq) => CmpOp::Eq,
            Some(Tok::NotEq) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(t) => return Err(self.err_back(format!("expected comparison operator, found `{t}`"))),
            None => return Err(self.err("expected comparison operator, found end of input")),
        };
        let rhs = self.expr()?;
        sels.push(Selection { lhs, op, rhs });
        Ok(())
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let table = self.expect_ident()?;
        self.expect(Tok::LParen)?;
        self.expect(Tok::At)?;
        let loc = self.term()?;
        let mut args = Vec::new();
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            args.push(self.term()?);
        }
        self.expect(Tok::RParen)?;
        Ok(Atom { table, loc, args })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                // Aggregate: a_count<V>
                if matches!(s.as_str(), "a_count" | "a_min" | "a_max")
                    && self.peek2() == Some(&Tok::Lt)
                {
                    self.pos += 2;
                    let var = self.expect_ident()?;
                    self.expect(Tok::Gt)?;
                    let kind = match s.as_str() {
                        "a_count" => AggKind::Count,
                        "a_min" => AggKind::Min,
                        _ => AggKind::Max,
                    };
                    return Ok(Term::Agg(kind, var));
                }
                self.pos += 1;
                if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    Ok(Term::Var(s))
                } else if s == "true" {
                    Ok(Term::Const(Value::Bool(true)))
                } else if s == "false" {
                    Ok(Term::Const(Value::Bool(false)))
                } else {
                    Ok(Term::Const(Value::Str(s)))
                }
            }
            Some(Tok::Int(i)) => {
                let i = *i;
                self.pos += 1;
                Ok(Term::Const(Value::Int(i)))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                let i = self.expect_int()?;
                Ok(Term::Const(Value::Int(-i)))
            }
            Some(Tok::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Term::Const(Value::Str(s)))
            }
            Some(Tok::Star) => {
                self.pos += 1;
                Ok(Term::Const(Value::Wild))
            }
            Some(t) => Err(self.err(format!("expected term, found `{t}`"))),
            None => Err(self.err("expected term, found end of input")),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.addsub()
    }

    fn addsub(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.muldiv()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.muldiv()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn muldiv(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            // Fold negation into integer literals; otherwise 0 - e.
            if let Some(Tok::Int(i)) = self.peek() {
                let i = *i;
                self.pos += 1;
                return Ok(Expr::Const(Value::Int(-i)));
            }
            let e = self.unary()?;
            return Ok(Expr::Binary(BinOp::Sub, Box::new(Expr::int(0)), Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Int(i)) => {
                let i = *i;
                self.pos += 1;
                Ok(Expr::Const(Value::Int(i)))
            }
            Some(Tok::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Expr::Const(Value::Str(s)))
            }
            Some(Tok::Star) => {
                // Wildcard constant in primary position (e.g. `JID := *`).
                self.pos += 1;
                Ok(Expr::Const(Value::Wild))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                if self.peek() == Some(&Tok::LParen) {
                    // Built-in call.
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(s, args))
                } else if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    Ok(Expr::Var(s))
                } else if s == "true" {
                    Ok(Expr::Const(Value::Bool(true)))
                } else if s == "false" {
                    Ok(Expr::Const(Value::Bool(false)))
                } else {
                    Ok(Expr::Const(Value::Str(s)))
                }
            }
            Some(t) => Err(self.err(format!("expected expression, found `{t}`"))),
            None => Err(self.err("expected expression, found end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2_rule() {
        let r = parse_rule(
            "r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.",
        )
        .unwrap();
        assert_eq!(r.id, "r7");
        assert_eq!(r.head.table, "FlowTable");
        assert_eq!(r.body.len(), 1);
        assert_eq!(r.sels.len(), 2);
        assert_eq!(r.assigns.len(), 1);
        assert_eq!(r.sels[0].sid(), "Swi == 2");
    }

    #[test]
    fn parses_full_fig2_program() {
        let src = r"
            materialize(FlowTable, infinity, 3, keys(0,1)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt), Swi == 1.
            r2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 53, Prt := 2.
            r3 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr != 53, Prt := -1.
            r4 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr != 80, Prt := -1.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            r6 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 53, Prt := 2.
            r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
        ";
        let p = parse_program("fig2", src).unwrap();
        assert_eq!(p.rules.len(), 7);
        assert!(p.validate().is_ok());
        assert_eq!(p.catalog.get("FlowTable").unwrap().keys, vec![0, 1]);
        // r3 assigns a negative constant
        let r3 = p.rule("r3").unwrap();
        assert_eq!(r3.assigns[0].expr, Expr::int(-1));
        // base tables: PacketIn + WebLoadBalancer
        let bases: Vec<_> = p.base_tables().into_iter().collect();
        assert_eq!(bases, vec!["PacketIn".to_string(), "WebLoadBalancer".to_string()]);
    }

    #[test]
    fn parses_aggregates_and_builtins() {
        let r = parse_rule(
            "p2 PredFuncCount(@C,Rul,a_count<N>) :- PredFunc(@C,Rul,Tab,N), JID := f_unique().",
        )
        .unwrap();
        assert!(r.is_aggregate());
        assert_eq!(r.assigns[0].expr, Expr::Call("f_unique".into(), vec![]));
    }

    #[test]
    fn parses_wildcard_and_strings() {
        let r = parse_rule("e1 Expr(@C,Rul,JID,ID,Val) :- Const(@C,Rul,ID,Val), JID := *.").unwrap();
        assert_eq!(r.assigns[0].expr, Expr::Const(Value::Wild));
        let r = parse_rule("x T(@C,A) :- S(@C,A), A == 'Swi == 2'.").unwrap();
        assert_eq!(r.sels[0].rhs, Expr::Const(Value::str("Swi == 2")));
    }

    #[test]
    fn auto_rule_ids() {
        let p = parse_program("t", "A(@X,Y) :- B(@X,Y). A(@X,Y) :- C(@X,Y).").unwrap();
        assert_eq!(p.rules[0].id, "auto1");
        assert_eq!(p.rules[1].id, "auto2");
    }

    #[test]
    fn expression_precedence() {
        let r = parse_rule("x T(@C,A) :- S(@C,B), A := 1 + B * 2.").unwrap();
        assert_eq!(
            r.assigns[0].expr,
            Expr::Binary(
                BinOp::Add,
                Box::new(Expr::int(1)),
                Box::new(Expr::Binary(BinOp::Mul, Box::new(Expr::var("B")), Box::new(Expr::int(2))))
            )
        );
        let r = parse_rule("x T(@C,A) :- S(@C,B), A := (1 + B) * 2.").unwrap();
        assert_eq!(
            r.assigns[0].expr,
            Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::Binary(BinOp::Add, Box::new(Expr::int(1)), Box::new(Expr::var("B")))),
                Box::new(Expr::int(2))
            )
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_program("t", "A(@X,Y) :- B(@X,Y)").unwrap_err();
        assert!(e.to_string().contains("unterminated rule"));
        let e = parse_program("t", "A(X) :- B(@X).").unwrap_err();
        assert!(e.to_string().contains('@'));
    }

    #[test]
    fn roundtrip_through_pretty_printer() {
        let src = "r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.";
        let r = parse_rule(src).unwrap();
        assert_eq!(parse_rule(&r.to_string()).unwrap(), r);
    }
}
