//! Hand-written lexer for NDlog source text.

use crate::error::ParseError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (variable, table, rule id, function name, bare string).
    Ident(String),
    /// Integer literal (unsigned; unary minus is a separate token).
    Int(i64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `:-`
    Derives,
    /// `:=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*` (multiplication or the JID wildcard, context decides)
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::Comma => f.write_str(","),
            Tok::Dot => f.write_str("."),
            Tok::At => f.write_str("@"),
            Tok::Derives => f.write_str(":-"),
            Tok::Assign => f.write_str(":="),
            Tok::EqEq => f.write_str("=="),
            Tok::NotEq => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Star => f.write_str("*"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
        }
    }
}

/// A token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Tokenize NDlog source. `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Spanned { tok: $tok, line: $l, col: $c })
        };
    }

    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '/' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'/') {
                    // line comment
                    for nc in chars.by_ref() {
                        if nc == '\n' {
                            line += 1;
                            col = 1;
                            break;
                        }
                    }
                } else {
                    push!(Tok::Slash, tl, tc);
                }
            }
            '(' => {
                chars.next();
                col += 1;
                push!(Tok::LParen, tl, tc);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(Tok::RParen, tl, tc);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(Tok::Comma, tl, tc);
            }
            '.' => {
                chars.next();
                col += 1;
                push!(Tok::Dot, tl, tc);
            }
            '@' => {
                chars.next();
                col += 1;
                push!(Tok::At, tl, tc);
            }
            '+' => {
                chars.next();
                col += 1;
                push!(Tok::Plus, tl, tc);
            }
            '-' => {
                chars.next();
                col += 1;
                push!(Tok::Minus, tl, tc);
            }
            '*' => {
                chars.next();
                col += 1;
                push!(Tok::Star, tl, tc);
            }
            '%' => {
                chars.next();
                col += 1;
                push!(Tok::Percent, tl, tc);
            }
            ':' => {
                chars.next();
                col += 1;
                match chars.peek() {
                    Some('-') => {
                        chars.next();
                        col += 1;
                        push!(Tok::Derives, tl, tc);
                    }
                    Some('=') => {
                        chars.next();
                        col += 1;
                        push!(Tok::Assign, tl, tc);
                    }
                    _ => {
                        return Err(ParseError::at(tl, tc, "expected `:-` or `:=` after `:`"));
                    }
                }
            }
            '=' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::EqEq, tl, tc);
                } else {
                    return Err(ParseError::at(tl, tc, "expected `==` (single `=` is not NDlog)"));
                }
            }
            '!' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::NotEq, tl, tc);
                } else {
                    return Err(ParseError::at(tl, tc, "expected `!=`"));
                }
            }
            '<' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::Le, tl, tc);
                } else {
                    push!(Tok::Lt, tl, tc);
                }
            }
            '>' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::Ge, tl, tc);
                } else {
                    push!(Tok::Gt, tl, tc);
                }
            }
            '\'' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                let mut closed = false;
                while let Some(nc) = chars.next() {
                    col += 1;
                    if nc == '\'' {
                        closed = true;
                        break;
                    }
                    if nc == '\n' {
                        return Err(ParseError::at(tl, tc, "unterminated string literal"));
                    }
                    s.push(nc);
                }
                if !closed {
                    return Err(ParseError::at(tl, tc, "unterminated string literal"));
                }
                push!(Tok::Str(s), tl, tc);
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(dd) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(dd as i64))
                            .ok_or_else(|| ParseError::at(tl, tc, "integer literal overflows i64"))?;
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Int(n), tl, tc);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(s), tl, tc);
            }
            other => {
                return Err(ParseError::at(tl, tc, format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_a_rule() {
        let t = toks("r7 FlowTable(@Swi,Hdr) :- Swi == 2.");
        assert_eq!(
            t,
            vec![
                Tok::Ident("r7".into()),
                Tok::Ident("FlowTable".into()),
                Tok::LParen,
                Tok::At,
                Tok::Ident("Swi".into()),
                Tok::Comma,
                Tok::Ident("Hdr".into()),
                Tok::RParen,
                Tok::Derives,
                Tok::Ident("Swi".into()),
                Tok::EqEq,
                Tok::Int(2),
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn lexes_operators_and_assign() {
        assert_eq!(
            toks(":= :- == != < <= > >= + - * / %"),
            vec![
                Tok::Assign,
                Tok::Derives,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
            ]
        );
    }

    #[test]
    fn lexes_strings_and_comments() {
        assert_eq!(
            toks("'Swi == 2' // trailing comment\n42"),
            vec![Tok::Str("Swi == 2".into()), Tok::Int(42)]
        );
    }

    #[test]
    fn tracks_positions() {
        let spanned = lex("A\n  B").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(lex("a = b").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("#").is_err());
        assert!(lex("999999999999999999999999").is_err());
    }
}
