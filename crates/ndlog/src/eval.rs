//! Expression and selection evaluation.
//!
//! Expressions are evaluated against a variable *environment* plus a
//! [`FuncHost`] that interprets built-in functions. Pure built-ins
//! (`f_match`, `f_join`, `f_concat`) are provided by [`PureFuncs`];
//! stateful ones (`f_unique`) are supplied by the engine.

use crate::ast::{BinOp, Expr, Selection};
use crate::error::EvalError;
use crate::value::Value;

/// A variable environment: name → value.
///
/// Rule bodies bind a handful of variables, so the map is a name-sorted
/// vector: lookups binary-search, iteration is ordered by name (like the
/// `BTreeMap` this replaces), and — the property the join loops lean on —
/// cloning is one allocation instead of one per tree node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Env {
    entries: Vec<(String, Value)>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, name: &str) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name))
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.position(name).ok().map(|i| &self.entries[i].1)
    }

    /// `true` when `name` is bound.
    pub fn contains_key(&self, name: &str) -> bool {
        self.position(name).is_ok()
    }

    /// Bind `name` to `value`, returning the previous binding if present.
    pub fn insert(&mut self, name: String, value: Value) -> Option<Value> {
        match self.position(&name) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (name, value));
                None
            }
        }
    }

    /// Remove the binding of `name`, returning its value if present.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.position(name).ok().map(|i| self.entries.remove(i).1)
    }

    /// The bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Env {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut env = Env::new();
        for (k, v) in iter {
            env.insert(k, v);
        }
        env
    }
}

impl<'a> IntoIterator for &'a Env {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Host for built-in functions referenced by `Expr::Call`.
pub trait FuncHost {
    /// Evaluate built-in `name` on `args`.
    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, EvalError>;
}

/// The pure built-ins of the meta model (Fig. 4):
///
/// - `f_match(a, b)` — wildcard-aware equality (returns a boolean);
/// - `f_join(a, b)` — wildcard-resolving join-ID combination;
/// - `f_concat(parts...)` — string concatenation (Appendix B.2 uses it to
///   build composite identifiers).
///
/// `f_unique()` is *not* pure; calling it through `PureFuncs` is an error.
#[derive(Debug, Default, Clone, Copy)]
pub struct PureFuncs;

impl FuncHost for PureFuncs {
    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        match name {
            "f_match" => {
                if args.len() != 2 {
                    return Err(EvalError::BadArity { func: name.into(), expected: 2, got: args.len() });
                }
                Ok(Value::Bool(args[0].matches_wild(&args[1])))
            }
            "f_join" => {
                if args.len() != 2 {
                    return Err(EvalError::BadArity { func: name.into(), expected: 2, got: args.len() });
                }
                Ok(args[0].join_wild(&args[1]))
            }
            "f_concat" => {
                let mut s = String::new();
                for a in args {
                    s.push_str(&a.to_string());
                }
                Ok(Value::Str(s))
            }
            "f_apply" => {
                // The meta model's `Val := (Val' Opr Val'')` (meta rule s1,
                // Fig. 4): the *operator itself is data*. `f_apply(op, a, b)`
                // applies the operator named by the string `op`.
                if args.len() != 3 {
                    return Err(EvalError::BadArity { func: name.into(), expected: 3, got: args.len() });
                }
                let op = args[0]
                    .as_str()
                    .ok_or_else(|| EvalError::TypeError("f_apply: operator must be a string".into()))?;
                let (a, b) = (&args[1], &args[2]);
                use crate::ast::{BinOp, CmpOp};
                let cmp = |o: CmpOp| Ok(Value::Bool(o.eval(a, b)));
                match op {
                    "==" => cmp(CmpOp::Eq),
                    "!=" => cmp(CmpOp::Ne),
                    "<" => cmp(CmpOp::Lt),
                    "<=" => cmp(CmpOp::Le),
                    ">" => cmp(CmpOp::Gt),
                    ">=" => cmp(CmpOp::Ge),
                    "+" => eval_binop(BinOp::Add, a, b),
                    "-" => eval_binop(BinOp::Sub, a, b),
                    "*" => eval_binop(BinOp::Mul, a, b),
                    "/" => eval_binop(BinOp::Div, a, b),
                    "%" => eval_binop(BinOp::Mod, a, b),
                    other => Err(EvalError::UnknownFunc(format!("f_apply operator `{other}`"))),
                }
            }
            other => Err(EvalError::UnknownFunc(other.into())),
        }
    }
}

/// A [`FuncHost`] that layers a deterministic `f_unique()` counter over
/// [`PureFuncs`]. Each call returns a fresh integer. The engine seeds one
/// per run so executions are reproducible.
#[derive(Debug, Default, Clone)]
pub struct CountingFuncs {
    next: i64,
}

impl CountingFuncs {
    /// Start counting from `start`.
    pub fn starting_at(start: i64) -> Self {
        CountingFuncs { next: start }
    }

    /// How many unique ids have been handed out.
    pub fn issued(&self) -> i64 {
        self.next
    }
}

impl FuncHost for CountingFuncs {
    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        if name == "f_unique" {
            if !args.is_empty() {
                return Err(EvalError::BadArity { func: name.into(), expected: 0, got: args.len() });
            }
            let v = self.next;
            self.next += 1;
            return Ok(Value::Int(v));
        }
        PureFuncs.call(name, args)
    }
}

impl Expr {
    /// Evaluate the expression under `env`, resolving built-ins via `host`.
    pub fn eval(&self, env: &Env, host: &mut dyn FuncHost) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVar(name.clone())),
            Expr::Binary(op, l, r) => {
                let lv = l.eval(env, host)?;
                let rv = r.eval(env, host)?;
                eval_binop(*op, &lv, &rv)
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(env, host)?);
                }
                host.call(name, &vals)
            }
        }
    }
}

/// Evaluate one binary arithmetic operation.
pub fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    match (op, l, r) {
        (BinOp::Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
        (BinOp::Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
        (BinOp::Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
        (BinOp::Div, Value::Int(_), Value::Int(0)) => Err(EvalError::DivideByZero),
        (BinOp::Div, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a / b)),
        (BinOp::Mod, Value::Int(_), Value::Int(0)) => Err(EvalError::DivideByZero),
        (BinOp::Mod, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a % b)),
        (BinOp::Add, Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
        _ => Err(EvalError::TypeError(format!(
            "cannot apply `{op}` to {} and {}",
            l.type_tag(),
            r.type_tag()
        ))),
    }
}

impl Selection {
    /// Evaluate the selection under `env`. Evaluation errors are *not*
    /// silently false — the caller decides (the engine treats them as a
    /// non-match; the repair generator propagates them as constraints).
    pub fn eval(&self, env: &Env, host: &mut dyn FuncHost) -> Result<bool, EvalError> {
        let l = self.lhs.eval(env, host)?;
        let r = self.rhs.eval(env, host)?;
        Ok(self.op.eval(&l, &r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    fn env(pairs: &[(&str, Value)]) -> Env {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn arithmetic() {
        let e = crate::parser::parse_rule("x T(@C,A) :- S(@C,B), A := (B + 1) * 3 - 4 / 2.")
            .unwrap()
            .assigns[0]
            .expr
            .clone();
        let v = e.eval(&env(&[("B", Value::Int(5))]), &mut PureFuncs).unwrap();
        assert_eq!(v, Value::Int(16));
    }

    #[test]
    fn division_by_zero_reported() {
        let e = Expr::Binary(BinOp::Div, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert_eq!(e.eval(&Env::new(), &mut PureFuncs), Err(EvalError::DivideByZero));
        let e = Expr::Binary(BinOp::Mod, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert_eq!(e.eval(&Env::new(), &mut PureFuncs), Err(EvalError::DivideByZero));
    }

    #[test]
    fn unbound_variable_reported() {
        let e = Expr::var("Missing");
        assert_eq!(
            e.eval(&Env::new(), &mut PureFuncs),
            Err(EvalError::UnboundVar("Missing".into()))
        );
    }

    #[test]
    fn string_concat_via_add() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Const(Value::str("a"))),
            Box::new(Expr::Const(Value::str("b"))),
        );
        assert_eq!(e.eval(&Env::new(), &mut PureFuncs).unwrap(), Value::str("ab"));
    }

    #[test]
    fn f_match_and_f_join() {
        let mut h = PureFuncs;
        assert_eq!(
            h.call("f_match", &[Value::Wild, Value::Int(3)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            h.call("f_match", &[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            h.call("f_join", &[Value::Int(2), Value::Wild]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            h.call("f_join", &[Value::Wild, Value::Int(3)]).unwrap(),
            Value::Int(3)
        );
        assert!(h.call("f_unique", &[]).is_err());
        assert!(h.call("nope", &[]).is_err());
        assert!(h.call("f_match", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn f_unique_counts_deterministically() {
        let mut h = CountingFuncs::default();
        assert_eq!(h.call("f_unique", &[]).unwrap(), Value::Int(0));
        assert_eq!(h.call("f_unique", &[]).unwrap(), Value::Int(1));
        assert_eq!(h.issued(), 2);
        // still answers pure builtins
        assert_eq!(
            h.call("f_join", &[Value::Int(2), Value::Wild]).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn f_apply_interprets_operator_values() {
        let mut h = PureFuncs;
        assert_eq!(
            h.call("f_apply", &[Value::str("=="), Value::Int(2), Value::Int(2)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            h.call("f_apply", &[Value::str("<"), Value::Int(3), Value::Int(2)]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            h.call("f_apply", &[Value::str("+"), Value::Int(3), Value::Int(2)]).unwrap(),
            Value::Int(5)
        );
        assert!(h.call("f_apply", &[Value::str("??"), Value::Int(3), Value::Int(2)]).is_err());
        assert!(h.call("f_apply", &[Value::Int(1), Value::Int(3), Value::Int(2)]).is_err());
        assert!(h.call("f_apply", &[Value::str("==")]).is_err());
    }

    #[test]
    fn selection_eval() {
        let s = Selection::new(Expr::var("Swi"), CmpOp::Eq, Expr::int(2));
        assert!(s.eval(&env(&[("Swi", Value::Int(2))]), &mut PureFuncs).unwrap());
        assert!(!s.eval(&env(&[("Swi", Value::Int(3))]), &mut PureFuncs).unwrap());
        assert!(s.eval(&Env::new(), &mut PureFuncs).is_err());
    }
}
