//! Table schemas: arity, primary keys, and persistence.
//!
//! NDlog distinguishes *materialized state* (tables that persist, declared
//! with `materialize(...)` in RapidNet) from *event streams* (transient
//! messages). The distinction matters to the meta model: meta rules `h1–h4`
//! of the full model (Appendix B.1) branch on `Timeout == 0` (event) vs
//! `Timeout == 1` (state).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Whether a table's tuples persist (state) or are transient (events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Persistence {
    /// Materialized state: persists until deleted; replaced on key conflict.
    State,
    /// Event stream: consumed by rule evaluation, never stored.
    Event,
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Table name.
    pub table: String,
    /// Number of payload arguments (the `@` location column excluded).
    pub arity: usize,
    /// Primary-key columns, as indices into the payload arguments. The
    /// location column is always implicitly part of the key. An empty key
    /// means "all columns" (set semantics).
    pub keys: Vec<usize>,
    /// State vs event.
    pub persistence: Persistence,
}

impl Schema {
    /// A state table keyed on all columns (set semantics).
    pub fn state(table: impl Into<String>, arity: usize) -> Self {
        Schema { table: table.into(), arity, keys: Vec::new(), persistence: Persistence::State }
    }

    /// A state table with explicit primary-key columns.
    pub fn state_keyed(table: impl Into<String>, arity: usize, keys: Vec<usize>) -> Self {
        Schema { table: table.into(), arity, keys, persistence: Persistence::State }
    }

    /// An event (transient) table.
    pub fn event(table: impl Into<String>, arity: usize) -> Self {
        Schema { table: table.into(), arity, keys: Vec::new(), persistence: Persistence::Event }
    }

    /// Effective key columns: the declared keys, or all columns when none
    /// were declared.
    pub fn effective_keys(&self) -> Vec<usize> {
        if self.keys.is_empty() {
            (0..self.arity).collect()
        } else {
            self.keys.clone()
        }
    }

    /// `true` when this table persists.
    pub fn is_state(&self) -> bool {
        self.persistence == Persistence::State
    }

    /// The `Timeout` encoding used by the meta model (0 = event, 1 = state).
    pub fn timeout_code(&self) -> i64 {
        match self.persistence {
            Persistence::Event => 0,
            Persistence::State => 1,
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let life = match self.persistence {
            Persistence::State => "infinity",
            Persistence::Event => "event",
        };
        write!(f, "materialize({}, {}, {}, keys(", self.table, life, self.arity)?;
        for (i, k) in self.keys.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, ")).")
    }
}

/// A catalogue of schemas for a program. Lookups fall back to a synthesized
/// all-key state schema so programs without declarations still run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    schemas: BTreeMap<String, Schema>,
}

impl Catalog {
    /// Empty catalogue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a schema.
    pub fn insert(&mut self, schema: Schema) {
        self.schemas.insert(schema.table.clone(), schema);
    }

    /// Declared schema for `table`, if any.
    pub fn get(&self, table: &str) -> Option<&Schema> {
        self.schemas.get(table)
    }

    /// Schema for `table`, synthesizing `Schema::state(table, arity)` when
    /// undeclared.
    pub fn get_or_default(&self, table: &str, arity: usize) -> Schema {
        self.schemas
            .get(table)
            .cloned()
            .unwrap_or_else(|| Schema::state(table, arity))
    }

    /// Iterate over declared schemas in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Schema> {
        self.schemas.values()
    }

    /// Number of declared schemas.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// `true` when no schemas are declared.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_keys_default_to_all_columns() {
        let s = Schema::state("T", 3);
        assert_eq!(s.effective_keys(), vec![0, 1, 2]);
        let s = Schema::state_keyed("T", 3, vec![1]);
        assert_eq!(s.effective_keys(), vec![1]);
    }

    #[test]
    fn timeout_codes_match_meta_model() {
        assert_eq!(Schema::event("E", 2).timeout_code(), 0);
        assert_eq!(Schema::state("S", 2).timeout_code(), 1);
    }

    #[test]
    fn catalog_fallback() {
        let mut c = Catalog::new();
        c.insert(Schema::state_keyed("FlowTable", 2, vec![0]));
        assert_eq!(c.get("FlowTable").unwrap().keys, vec![0]);
        assert!(c.get("Missing").is_none());
        let d = c.get_or_default("Missing", 4);
        assert_eq!(d.arity, 4);
        assert!(d.is_state());
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn display_materialize() {
        let s = Schema::state_keyed("FlowTable", 3, vec![0, 1]);
        assert_eq!(s.to_string(), "materialize(FlowTable, infinity, 3, keys(0,1)).");
    }
}
