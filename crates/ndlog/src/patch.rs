//! Program patches — the concrete form of a repair.
//!
//! A [`Patch`] is an ordered list of [`Edit`]s against a [`Program`]. The
//! repair generator (in `mpr-core`) emits patches; this module applies them
//! and renders the paper's human-readable descriptions ("Changing Swi == 2
//! in r7 to Swi == 3", Table 2).
//!
//! Syntax preservation (§4.2): every edit is checked against the grammar —
//! e.g. deleting one side of a comparison is impossible by construction,
//! and deleting the last body predicate of a rule is rejected.

use crate::ast::{Atom, CmpOp, ConstSite, Expr, ExprSide, Program, Rule, Term};
use crate::error::PatchError;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One elementary program edit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Edit {
    /// Replace the constant at `site` in `rule` with `value`.
    SetConst {
        /// Target rule id.
        rule: String,
        /// Constant locator.
        site: ConstSite,
        /// New value.
        value: Value,
    },
    /// Replace the comparison operator of selection `sel` in `rule`.
    SetSelectionOp {
        /// Target rule id.
        rule: String,
        /// Selection index.
        sel: usize,
        /// New operator.
        op: CmpOp,
    },
    /// Replace one whole side of selection `sel` (e.g. a variable swap
    /// `Sip < 6` → `Dpt < 6`, Table 6a candidates J–L).
    SetSelectionExpr {
        /// Target rule id.
        rule: String,
        /// Selection index.
        sel: usize,
        /// Which side to replace.
        side: ExprSide,
        /// New expression.
        expr: Expr,
    },
    /// Delete selection `sel` from `rule`.
    DeleteSelection {
        /// Target rule id.
        rule: String,
        /// Selection index.
        sel: usize,
    },
    /// Delete body predicate `pred` from `rule`.
    DeletePredicate {
        /// Target rule id.
        rule: String,
        /// Predicate index.
        pred: usize,
    },
    /// Replace the right-hand expression of the assignment to `var`.
    SetAssignExpr {
        /// Target rule id.
        rule: String,
        /// Assigned variable.
        var: String,
        /// New expression.
        expr: Expr,
    },
    /// Replace head argument `idx` of `rule`.
    SetHeadArg {
        /// Target rule id.
        rule: String,
        /// Head argument index.
        idx: usize,
        /// New term.
        term: Term,
    },
    /// Re-target the head of `rule` to a different table (Q4 repairs:
    /// "changing the head of r5 to packetOut(...)").
    SetHeadTable {
        /// Target rule id.
        rule: String,
        /// New head table.
        table: String,
    },
    /// Add a complete new rule (also used for "copy rule and modify" repairs).
    AddRule {
        /// The rule to append.
        rule: Rule,
    },
    /// Delete a whole rule.
    DeleteRule {
        /// Rule id to remove.
        rule: String,
    },
}

impl Edit {
    /// The rule this edit touches, if any.
    pub fn rule_id(&self) -> Option<&str> {
        match self {
            Edit::SetConst { rule, .. }
            | Edit::SetSelectionOp { rule, .. }
            | Edit::SetSelectionExpr { rule, .. }
            | Edit::DeleteSelection { rule, .. }
            | Edit::DeletePredicate { rule, .. }
            | Edit::SetAssignExpr { rule, .. }
            | Edit::SetHeadArg { rule, .. }
            | Edit::SetHeadTable { rule, .. }
            | Edit::DeleteRule { rule } => Some(rule),
            Edit::AddRule { rule } => Some(&rule.id),
        }
    }
}

/// An ordered collection of edits applied atomically.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Patch {
    /// Edits, applied in order (deletions are internally reordered
    /// descending so earlier deletions do not shift later indices).
    pub edits: Vec<Edit>,
}

impl Patch {
    /// A patch with a single edit.
    pub fn single(edit: Edit) -> Self {
        Patch { edits: vec![edit] }
    }

    /// A patch with several edits.
    pub fn of(edits: Vec<Edit>) -> Self {
        Patch { edits }
    }

    /// `true` when the patch contains no edits.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Rule ids modified by this patch (used by the multi-query optimizer to
    /// decide which rules need per-candidate copies, §4.4).
    pub fn touched_rules(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.edits.iter().filter_map(|e| e.rule_id().map(String::from)).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Apply the patch to `program`, returning the repaired program.
    ///
    /// The input program is left untouched; candidate repairs are backtested
    /// side by side (§4.4), so patches never mutate in place.
    pub fn apply(&self, program: &Program) -> Result<Program, PatchError> {
        let mut out = program.clone();
        // Deletions of indexed sites are applied after other edits and in
        // descending index order, so that a multi-delete patch ("Deleting
        // Swi==2 and Dpt==53 in r6", Table 2 candidate G) is well defined.
        let mut dels: Vec<&Edit> = Vec::new();
        for e in &self.edits {
            match e {
                Edit::DeleteSelection { .. } | Edit::DeletePredicate { .. } => dels.push(e),
                _ => apply_one(&mut out, e)?,
            }
        }
        dels.sort_by_key(|e| {
            std::cmp::Reverse(match e {
                Edit::DeleteSelection { sel, .. } => *sel,
                Edit::DeletePredicate { pred, .. } => *pred,
                _ => 0,
            })
        });
        for e in dels {
            apply_one(&mut out, e)?;
        }
        out.validate().map_err(PatchError::WouldBreakSyntax)?;
        Ok(out)
    }

    /// Render a human-readable description against the *original* program,
    /// in the style of the paper's Table 2.
    pub fn describe(&self, program: &Program) -> String {
        let parts: Vec<String> = self.edits.iter().map(|e| describe_one(program, e)).collect();
        parts.join("; ")
    }
}

impl fmt::Display for Patch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.edits.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e:?}")?;
        }
        Ok(())
    }
}

fn rule_mut<'a>(p: &'a mut Program, id: &str) -> Result<&'a mut Rule, PatchError> {
    p.rule_mut(id).ok_or_else(|| PatchError::NoSuchRule(id.to_string()))
}

fn rule_ref<'a>(p: &'a Program, id: &str) -> Option<&'a Rule> {
    p.rule(id)
}

fn apply_one(p: &mut Program, e: &Edit) -> Result<(), PatchError> {
    match e {
        Edit::SetConst { rule, site, value } => {
            let r = rule_mut(p, rule)?;
            set_const(r, site, value.clone())
        }
        Edit::SetSelectionOp { rule, sel, op } => {
            let r = rule_mut(p, rule)?;
            let s = r
                .sels
                .get_mut(*sel)
                .ok_or_else(|| PatchError::NoSuchSite(format!("{rule}: selection {sel}")))?;
            s.op = *op;
            Ok(())
        }
        Edit::SetSelectionExpr { rule, sel, side, expr } => {
            let r = rule_mut(p, rule)?;
            let s = r
                .sels
                .get_mut(*sel)
                .ok_or_else(|| PatchError::NoSuchSite(format!("{rule}: selection {sel}")))?;
            match side {
                ExprSide::Lhs => s.lhs = expr.clone(),
                ExprSide::Rhs => s.rhs = expr.clone(),
            }
            Ok(())
        }
        Edit::DeleteSelection { rule, sel } => {
            let r = rule_mut(p, rule)?;
            if *sel >= r.sels.len() {
                return Err(PatchError::NoSuchSite(format!("{rule}: selection {sel}")));
            }
            r.sels.remove(*sel);
            Ok(())
        }
        Edit::DeletePredicate { rule, pred } => {
            let r = rule_mut(p, rule)?;
            if *pred >= r.body.len() {
                return Err(PatchError::NoSuchSite(format!("{rule}: predicate {pred}")));
            }
            if r.body.len() == 1 {
                return Err(PatchError::WouldBreakSyntax(format!(
                    "rule `{rule}` would have an empty body"
                )));
            }
            r.body.remove(*pred);
            Ok(())
        }
        Edit::SetAssignExpr { rule, var, expr } => {
            let r = rule_mut(p, rule)?;
            let a = r
                .assigns
                .iter_mut()
                .find(|a| &a.var == var)
                .ok_or_else(|| PatchError::NoSuchSite(format!("{rule}: assignment to {var}")))?;
            a.expr = expr.clone();
            Ok(())
        }
        Edit::SetHeadArg { rule, idx, term } => {
            let r = rule_mut(p, rule)?;
            let slot = r
                .head
                .args
                .get_mut(*idx)
                .ok_or_else(|| PatchError::NoSuchSite(format!("{rule}: head arg {idx}")))?;
            *slot = term.clone();
            Ok(())
        }
        Edit::SetHeadTable { rule, table } => {
            let r = rule_mut(p, rule)?;
            r.head.table = table.clone();
            Ok(())
        }
        Edit::AddRule { rule } => {
            if p.rule(&rule.id).is_some() {
                return Err(PatchError::WouldBreakSyntax(format!(
                    "duplicate rule id `{}`",
                    rule.id
                )));
            }
            p.rules.push(rule.clone());
            Ok(())
        }
        Edit::DeleteRule { rule } => {
            let before = p.rules.len();
            p.rules.retain(|r| &r.id != rule);
            if p.rules.len() == before {
                return Err(PatchError::NoSuchRule(rule.clone()));
            }
            Ok(())
        }
    }
}

fn set_const(r: &mut Rule, site: &ConstSite, value: Value) -> Result<(), PatchError> {
    let missing = || PatchError::NoSuchSite(format!("{}: {site}", r.id));
    match site {
        ConstSite::Selection { idx, side, path } => {
            let sel = r.sels.get_mut(*idx).ok_or_else(missing)?;
            let e = match side {
                ExprSide::Lhs => sel.lhs.at_path_mut(path),
                ExprSide::Rhs => sel.rhs.at_path_mut(path),
            }
            .ok_or_else(missing)?;
            if !matches!(e, Expr::Const(_)) {
                return Err(missing());
            }
            *e = Expr::Const(value);
            Ok(())
        }
        ConstSite::Assign { idx, path } => {
            let a = r.assigns.get_mut(*idx).ok_or_else(missing)?;
            let e = a.expr.at_path_mut(path).ok_or_else(missing)?;
            if !matches!(e, Expr::Const(_)) {
                return Err(missing());
            }
            *e = Expr::Const(value);
            Ok(())
        }
        ConstSite::HeadArg { idx } => {
            let t = r.head.args.get_mut(*idx).ok_or_else(missing)?;
            if !matches!(t, Term::Const(_)) {
                return Err(missing());
            }
            *t = Term::Const(value);
            Ok(())
        }
        ConstSite::BodyArg { pred, arg } => {
            let a: &mut Atom = r.body.get_mut(*pred).ok_or_else(missing)?;
            let t = a.args.get_mut(*arg).ok_or_else(missing)?;
            if !matches!(t, Term::Const(_)) {
                return Err(missing());
            }
            *t = Term::Const(value);
            Ok(())
        }
    }
}

fn describe_one(p: &Program, e: &Edit) -> String {
    match e {
        Edit::SetConst { rule, site, value } => {
            if let Some(r) = rule_ref(p, rule) {
                if let ConstSite::Selection { idx, side, .. } = site {
                    if let Some(sel) = r.sels.get(*idx) {
                        let mut new_sel = sel.clone();
                        match side {
                            ExprSide::Lhs => new_sel.lhs = Expr::Const(value.clone()),
                            ExprSide::Rhs => new_sel.rhs = Expr::Const(value.clone()),
                        }
                        return format!("Changing {sel} in {rule} to {new_sel}");
                    }
                }
                if let ConstSite::Assign { idx, .. } = site {
                    if let Some(a) = r.assigns.get(*idx) {
                        return format!(
                            "Changing {} := {} in {rule} to {} := {value}",
                            a.var, a.expr, a.var
                        );
                    }
                }
            }
            format!("Changing constant at {site} in {rule} to {value}")
        }
        Edit::SetSelectionOp { rule, sel, op } => {
            if let Some(s) = rule_ref(p, rule).and_then(|r| r.sels.get(*sel)) {
                let mut ns = s.clone();
                ns.op = *op;
                format!("Changing {s} in {rule} to {ns}")
            } else {
                format!("Changing operator of selection {sel} in {rule} to {op}")
            }
        }
        Edit::SetSelectionExpr { rule, sel, side, expr } => {
            if let Some(s) = rule_ref(p, rule).and_then(|r| r.sels.get(*sel)) {
                let mut ns = s.clone();
                match side {
                    ExprSide::Lhs => ns.lhs = expr.clone(),
                    ExprSide::Rhs => ns.rhs = expr.clone(),
                }
                format!("Changing {s} in {rule} to {ns}")
            } else {
                format!("Changing selection {sel} in {rule} to {expr}")
            }
        }
        Edit::DeleteSelection { rule, sel } => {
            if let Some(s) = rule_ref(p, rule).and_then(|r| r.sels.get(*sel)) {
                format!("Deleting {s} in {rule}")
            } else {
                format!("Deleting selection {sel} in {rule}")
            }
        }
        Edit::DeletePredicate { rule, pred } => {
            if let Some(a) = rule_ref(p, rule).and_then(|r| r.body.get(*pred)) {
                format!("Deleting predicate {} in {rule}", a.table)
            } else {
                format!("Deleting predicate {pred} in {rule}")
            }
        }
        Edit::SetAssignExpr { rule, var, expr } => {
            if let Some(a) =
                rule_ref(p, rule).and_then(|r| r.assigns.iter().find(|a| &a.var == var))
            {
                format!("Changing {} := {} in {rule} to {} := {expr}", a.var, a.expr, var)
            } else {
                format!("Changing assignment to {var} in {rule} to {expr}")
            }
        }
        Edit::SetHeadArg { rule, idx, term } => {
            format!("Changing head argument {idx} of {rule} to {term}")
        }
        Edit::SetHeadTable { rule, table } => {
            format!("Changing the head of {rule} to {table}(...)")
        }
        Edit::AddRule { rule } => format!("Adding rule: {rule}"),
        Edit::DeleteRule { rule } => format!("Deleting rule {rule}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_rule};

    fn fig2() -> Program {
        parse_program(
            "fig2",
            r"
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            r6 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 53, Prt := 2.
            r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
            ",
        )
        .unwrap()
    }

    #[test]
    fn candidate_b_changes_constant() {
        // Table 2 candidate B: Swi==2 in r7 → Swi==3.
        let p = fig2();
        let patch = Patch::single(Edit::SetConst {
            rule: "r7".into(),
            site: ConstSite::Selection { idx: 0, side: ExprSide::Rhs, path: vec![] },
            value: Value::Int(3),
        });
        assert_eq!(patch.describe(&p), "Changing Swi == 2 in r7 to Swi == 3");
        let p2 = patch.apply(&p).unwrap();
        assert_eq!(p2.rule("r7").unwrap().sels[0].sid(), "Swi == 3");
        // original untouched
        assert_eq!(p.rule("r7").unwrap().sels[0].sid(), "Swi == 2");
    }

    #[test]
    fn candidate_c_changes_operator() {
        let p = fig2();
        let patch = Patch::single(Edit::SetSelectionOp { rule: "r7".into(), sel: 0, op: CmpOp::Ne });
        assert_eq!(patch.describe(&p), "Changing Swi == 2 in r7 to Swi != 2");
        let p2 = patch.apply(&p).unwrap();
        assert_eq!(p2.rule("r7").unwrap().sels[0].op, CmpOp::Ne);
    }

    #[test]
    fn candidate_g_deletes_two_selections() {
        // "Deleting Swi==2 and Dpt==53 in r6" — indices 0 and 1.
        let p = fig2();
        let patch = Patch::of(vec![
            Edit::DeleteSelection { rule: "r6".into(), sel: 0 },
            Edit::DeleteSelection { rule: "r6".into(), sel: 1 },
        ]);
        assert_eq!(patch.describe(&p), "Deleting Swi == 2 in r6; Deleting Hdr == 53 in r6");
        let p2 = patch.apply(&p).unwrap();
        assert!(p2.rule("r6").unwrap().sels.is_empty());
    }

    #[test]
    fn deleting_last_predicate_is_rejected() {
        let p = fig2();
        let patch = Patch::single(Edit::DeletePredicate { rule: "r7".into(), pred: 0 });
        assert!(matches!(patch.apply(&p), Err(PatchError::WouldBreakSyntax(_))));
    }

    #[test]
    fn head_retarget_and_add_rule() {
        let mut p = fig2();
        p.rules.push(
            parse_rule("e2 PacketOut(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 9, Prt := 1.")
                .unwrap(),
        );
        let patch = Patch::single(Edit::SetHeadTable { rule: "r5".into(), table: "PacketOut".into() });
        let p2 = patch.apply(&p).unwrap();
        assert_eq!(p2.rule("r5").unwrap().head.table, "PacketOut");

        // Copy-rule repair: copy r5 under a fresh id with a new head.
        let mut copy = p.rule("r5").unwrap().clone();
        copy.id = "r5_copy".into();
        copy.head.table = "PacketOut".into();
        let patch = Patch::single(Edit::AddRule { rule: copy });
        let p3 = patch.apply(&p).unwrap();
        assert_eq!(p3.rules.len(), p.rules.len() + 1);
        assert!(p3.rule("r5_copy").is_some());

        // Duplicate id rejected.
        let dup = p.rule("r5").unwrap().clone();
        assert!(Patch::single(Edit::AddRule { rule: dup }).apply(&p).is_err());
    }

    #[test]
    fn errors_on_missing_sites() {
        let p = fig2();
        assert!(matches!(
            Patch::single(Edit::DeleteRule { rule: "zz".into() }).apply(&p),
            Err(PatchError::NoSuchRule(_))
        ));
        assert!(matches!(
            Patch::single(Edit::DeleteSelection { rule: "r7".into(), sel: 9 }).apply(&p),
            Err(PatchError::NoSuchSite(_))
        ));
        assert!(matches!(
            Patch::single(Edit::SetAssignExpr {
                rule: "r7".into(),
                var: "Nope".into(),
                expr: Expr::int(1)
            })
            .apply(&p),
            Err(PatchError::NoSuchSite(_))
        ));
        assert!(matches!(
            Patch::single(Edit::SetConst {
                rule: "r7".into(),
                site: ConstSite::Selection { idx: 0, side: ExprSide::Lhs, path: vec![] },
                value: Value::Int(1)
            })
            .apply(&p),
            Err(PatchError::NoSuchSite(_)) // lhs is a variable, not a constant
        ));
    }

    #[test]
    fn touched_rules_are_deduped_and_sorted() {
        let patch = Patch::of(vec![
            Edit::DeleteSelection { rule: "r7".into(), sel: 0 },
            Edit::SetSelectionOp { rule: "r5".into(), sel: 0, op: CmpOp::Gt },
            Edit::DeleteSelection { rule: "r7".into(), sel: 1 },
        ]);
        assert_eq!(patch.touched_rules(), vec!["r5".to_string(), "r7".to_string()]);
    }

    #[test]
    fn variable_swap_description() {
        // Table 6a candidate J: Changing Sip<6 in r1 to Dpt<6.
        let p = parse_program(
            "q2",
            "r1 FlowTable(@Swi,Sip,Prt) :- PacketIn(@C,Swi,Sip,Dpt), Sip < 6, Prt := 1.",
        )
        .unwrap();
        let patch = Patch::single(Edit::SetSelectionExpr {
            rule: "r1".into(),
            sel: 0,
            side: ExprSide::Lhs,
            expr: Expr::var("Dpt"),
        });
        assert_eq!(patch.describe(&p), "Changing Sip < 6 in r1 to Dpt < 6");
        assert!(patch.apply(&p).is_ok());
    }
}
