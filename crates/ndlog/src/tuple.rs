//! Concrete tuples — the facts that flow through the engine.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete NDlog tuple: `Table(@loc, arg1, ..., argN)`.
///
/// The location (`@` column) is kept separate from the payload arguments,
/// mirroring NDlog's semantics where the location specifier determines the
/// node a tuple resides on and is not part of ordinary joins.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple {
    /// Table (relation) name, e.g. `FlowTable`.
    pub table: String,
    /// The node the tuple resides on (the `@` column).
    pub loc: Value,
    /// Payload arguments.
    pub args: Vec<Value>,
}

impl Tuple {
    /// Build a tuple.
    pub fn new(table: impl Into<String>, loc: impl Into<Value>, args: Vec<Value>) -> Self {
        Tuple { table: table.into(), loc: loc.into(), args }
    }

    /// Total arity including the location column.
    pub fn arity(&self) -> usize {
        self.args.len() + 1
    }

    /// Project the key columns (indices into `args`).
    pub fn key(&self, key_cols: &[usize]) -> Vec<Value> {
        key_cols.iter().filter_map(|&i| self.args.get(i).cloned()).collect()
    }

    /// All columns as a flat vector, location first. Useful for hashing and
    /// for the meta model, which treats the location as `Val0`.
    pub fn columns(&self) -> Vec<Value> {
        let mut v = Vec::with_capacity(self.arity());
        v.push(self.loc.clone());
        v.extend(self.args.iter().cloned());
        v
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(@{}", self.table, self.loc)?;
        for a in &self.args {
            write!(f, ",{a}")?;
        }
        write!(f, ")")
    }
}

/// A signed tuple: `+τ` (appearance) or `-τ` (disappearance), as carried by
/// SEND/RECEIVE provenance vertices (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignedTuple {
    /// The tuple in question.
    pub tuple: Tuple,
    /// `true` for `+τ`, `false` for `-τ`.
    pub positive: bool,
}

impl fmt::Display for SignedTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.positive { "+" } else { "-" }, self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new("FlowTable", 3i64, vec![Value::Int(80), Value::Int(2)])
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(t().to_string(), "FlowTable(@3,80,2)");
    }

    #[test]
    fn key_projection() {
        assert_eq!(t().key(&[1]), vec![Value::Int(2)]);
        assert_eq!(t().key(&[0, 1]), vec![Value::Int(80), Value::Int(2)]);
        // Out-of-range key columns are skipped rather than panicking.
        assert_eq!(t().key(&[7]), Vec::<Value>::new());
    }

    #[test]
    fn columns_put_location_first() {
        assert_eq!(
            t().columns(),
            vec![Value::Int(3), Value::Int(80), Value::Int(2)]
        );
        assert_eq!(t().arity(), 3);
    }

    #[test]
    fn signed_display() {
        let s = SignedTuple { tuple: t(), positive: true };
        assert_eq!(s.to_string(), "+FlowTable(@3,80,2)");
        let s = SignedTuple { tuple: t(), positive: false };
        assert_eq!(s.to_string(), "-FlowTable(@3,80,2)");
    }
}
