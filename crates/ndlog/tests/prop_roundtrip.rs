//! Property-based tests: the pretty-printer and parser are inverse maps,
//! and patch application is site-faithful, on randomly generated programs.

use mpr_ndlog::ast::*;
use mpr_ndlog::parser::{parse_program, parse_rule};
use mpr_ndlog::patch::{Edit, Patch};
use mpr_ndlog::value::Value;
use proptest::prelude::*;

fn var_name() -> impl Strategy<Value = String> {
    // Uppercase-initial identifiers, short, from a small alphabet so joins occur.
    prop::sample::select(vec!["Swi", "Hdr", "Prt", "Sip", "Dip", "Spt", "Dpt", "A", "B", "C"])
        .prop_map(String::from)
}

fn table_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["PacketIn", "FlowTable", "Acl", "Lb", "T1", "T2"])
        .prop_map(String::from)
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-100i64..100).prop_map(Value::Int),
        prop::sample::select(vec!["output", "drop", "fwd"]).prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Wild),
    ]
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        var_name().prop_map(Term::Var),
        value().prop_map(Term::Const),
    ]
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        var_name().prop_map(Expr::Var),
        (-100i64..100).prop_map(Expr::int),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (
                prop::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Binary(op, Box::new(l), Box::new(r))),
            prop::collection::vec(inner, 0..3)
                .prop_map(|args| Expr::Call("f_concat".to_string(), args)),
        ]
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(CmpOp::ALL.to_vec())
}

fn atom() -> impl Strategy<Value = Atom> {
    (table_name(), term(), prop::collection::vec(term(), 1..4))
        .prop_map(|(t, loc, args)| Atom::new(t, loc, args))
}

prop_compose! {
    fn rule()(
        idn in 1u32..999,
        body in prop::collection::vec(atom(), 1..3),
        sels in prop::collection::vec((expr(), cmp_op(), expr()).prop_map(|(l, o, r)| Selection::new(l, o, r)), 0..3),
        loc in var_name(),
    ) -> Rule {
        // The head repeats body variables plus one assigned variable, so the
        // rule is always well-formed (no unbound head vars).
        let mut head_args: Vec<Term> = body[0].args.clone();
        head_args.push(Term::Var("Zz".into()));
        let assigns = vec![Assign::new("Zz", Expr::int(1))];
        // Bind the head location to something always available.
        let mut r = Rule::new(format!("r{idn}"), Atom::new("Out", Term::Var(loc), head_args), body, sels, assigns);
        // Ensure head location var is bound: add it as first arg of first body atom.
        let head_loc = r.head.loc.clone();
        r.body[0].loc = head_loc;
        r
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rule_roundtrips_through_parser(r in rule()) {
        let printed = r.to_string();
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(reparsed, r);
    }

    #[test]
    fn program_roundtrips_through_parser(rules in prop::collection::vec(rule(), 1..6)) {
        let mut p = Program::new("prop");
        // Deduplicate ids to keep the program valid.
        let mut seen = std::collections::BTreeSet::new();
        for (i, mut r) in rules.into_iter().enumerate() {
            if !seen.insert(r.id.clone()) {
                r.id = format!("{}_{i}", r.id);
                seen.insert(r.id.clone());
            }
            p.rules.push(r);
        }
        let printed = p.to_string();
        let reparsed = parse_program("prop", &printed)
            .unwrap_or_else(|e| panic!("failed to reparse:\n{printed}\n{e}"));
        prop_assert_eq!(reparsed.rules, p.rules);
    }

    #[test]
    fn expr_display_is_stable(e in expr()) {
        // Printing is idempotent: print→parse→print is a fixed point.
        let r = Rule::new(
            "x",
            Atom::new("Out", Term::Var("A".into()), vec![Term::Var("Zz".into())]),
            vec![Atom::new("In", Term::Var("A".into()), vec![Term::Var("B".into())])],
            vec![],
            vec![Assign::new("Zz", e)],
        );
        let once = r.to_string();
        let reparsed = parse_rule(&once).unwrap();
        prop_assert_eq!(reparsed.to_string(), once);
    }

    #[test]
    fn set_const_patch_changes_exactly_one_site(r in rule(), v in -50i64..50) {
        let mut p = Program::new("prop");
        p.rules.push(r.clone());
        // Random same-name atoms may disagree on arity; such programs are
        // invalid and patches rightly refuse them.
        prop_assume!(p.validate().is_ok());
        let consts = r.constants();
        if consts.is_empty() {
            return Ok(());
        }
        let (site, old) = consts[0].clone();
        let patch = Patch::single(Edit::SetConst {
            rule: r.id.clone(),
            site: site.clone(),
            value: Value::Int(v),
        });
        let p2 = patch.apply(&p).unwrap();
        let new_consts = p2.rule(&r.id).unwrap().constants();
        prop_assert_eq!(new_consts.len(), consts.len());
        // The targeted site changed; all others are untouched.
        for (s, val) in &new_consts {
            if *s == site {
                prop_assert_eq!(val.clone(), Value::Int(v));
            }
        }
        let changed = new_consts
            .iter()
            .zip(consts.iter())
            .filter(|((_, a), (_, b))| a != &b.clone())
            .count();
        prop_assert!(changed <= 1, "old={old}");
    }
}
