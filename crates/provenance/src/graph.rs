//! Provenance trees and the explanation queries.
//!
//! [`explain_exist`] answers "why does tuple τ exist?" by folding the
//! engine's execution log into the §3.1 graph: EXIST ← APPEAR ←
//! INSERT/DERIVE (← RECEIVE ← SEND for cross-node installs) ← body EXISTs,
//! recursively down to base tuples.
//!
//! [`explain_absent`] answers "why does no tuple matching this pattern
//! exist?" with negative provenance: NEXIST ← NDERIVE per candidate rule ←
//! the missing precondition (recursively) or the selection predicate that
//! blocked an otherwise-complete join. This is the *diagnosis* flavor —
//! every failing rule is explained. The *repair* flavor, which forks a
//! forest instead (§3.3), lives in `mpr-core`.

use crate::vertex::{Pattern, Vertex};
use mpr_ndlog::eval::{Env, PureFuncs};
use mpr_ndlog::{Program, Rule, Term, Tuple};
use mpr_runtime::engine::match_atom;
use mpr_runtime::{ExecEvent, ExecLog, Time, TupleId, TupleKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A provenance explanation tree. The root is the queried (non-)event;
/// children are its direct causes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvTree {
    /// This vertex.
    pub vertex: Vertex,
    /// Direct causes.
    pub children: Vec<ProvTree>,
}

impl ProvTree {
    /// Leaf tree.
    pub fn leaf(vertex: Vertex) -> Self {
        ProvTree { vertex, children: Vec::new() }
    }

    /// Number of vertices.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProvTree::size).sum::<usize>()
    }

    /// Height (leaf = 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(ProvTree::depth).max().unwrap_or(0)
    }

    /// All leaves.
    pub fn leaves(&self) -> Vec<&Vertex> {
        if self.children.is_empty() {
            vec![&self.vertex]
        } else {
            self.children.iter().flat_map(ProvTree::leaves).collect()
        }
    }

    /// Indented ASCII rendering (one vertex per line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push_str(&self.vertex.label());
        out.push('\n');
        for c in &self.children {
            c.render_into(out, indent + 1);
        }
    }

    /// GraphViz DOT rendering.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph provenance {\n  rankdir=BT;\n");
        let mut next = 0usize;
        self.dot_into(&mut out, &mut next);
        out.push_str("}\n");
        out
    }

    fn dot_into(&self, out: &mut String, next: &mut usize) -> usize {
        let me = *next;
        *next += 1;
        let shape = if self.vertex.is_negative() { "box" } else { "ellipse" };
        let color = if self.vertex.is_negative() { "firebrick" } else { "black" };
        out.push_str(&format!(
            "  n{me} [label=\"{}\", shape={shape}, color={color}];\n",
            self.vertex.label().replace('"', "\\\"")
        ));
        for c in &self.children {
            let cid = c.dot_into(out, next);
            out.push_str(&format!("  n{cid} -> n{me};\n"));
        }
        me
    }
}

/// Options bounding an explanation.
#[derive(Debug, Clone, Copy)]
pub struct ExplainOptions {
    /// Maximum recursion depth (tuple hops).
    pub max_depth: usize,
    /// Maximum total vertices.
    pub max_vertices: usize,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        ExplainOptions { max_depth: 32, max_vertices: 10_000 }
    }
}

/// The *net* derivation set of an execution: every `(rule, head, body)`
/// combination whose DERIVE events strictly outnumber its UNDERIVE events,
/// keyed by tuple **values** rather than instance ids (body tuples sorted).
///
/// This is the provenance-equivalence invariant the differential harness
/// checks: the pipelined and batch strategies may fire a shared body
/// combination a different number of times (support-count multiplicities
/// differ), but because duplicate firings carry identical body sets, every
/// retraction cascade underives them together — so the *net* sets agree.
pub fn derivation_set(log: &ExecLog) -> BTreeSet<(String, Tuple, Vec<Tuple>)> {
    let value_of = |tid: TupleId| log.tuples[tid as usize].tuple.clone();
    let mut net: std::collections::BTreeMap<(String, Tuple, Vec<Tuple>), i64> =
        std::collections::BTreeMap::new();
    for ev in &log.events {
        let (rule, head, body, sign) = match ev {
            ExecEvent::Derive { rule, head, body, .. } => (rule, head, body, 1),
            ExecEvent::Underive { rule, head, body, .. } => (rule, head, body, -1),
            _ => continue,
        };
        let mut body_vals: Vec<Tuple> = body.iter().map(|&t| value_of(t)).collect();
        body_vals.sort();
        *net.entry((rule.clone(), value_of(*head), body_vals)).or_insert(0) += sign;
    }
    net.into_iter().filter(|&(_, n)| n > 0).map(|(k, _)| k).collect()
}

/// Explain why `tuple` existed at time `at`. Returns `None` if no matching
/// instance was alive then.
pub fn explain_exist(log: &ExecLog, tuple: &Tuple, at: Time) -> Option<ProvTree> {
    explain_exist_with(log, tuple, at, ExplainOptions::default())
}

/// [`explain_exist`] with explicit bounds.
pub fn explain_exist_with(
    log: &ExecLog,
    tuple: &Tuple,
    at: Time,
    opts: ExplainOptions,
) -> Option<ProvTree> {
    let rec = log
        .tuples
        .iter()
        .find(|r| &r.tuple == tuple && r.alive_at(at))?;
    let mut budget = opts.max_vertices;
    Some(exist_tree(log, rec.tid, opts.max_depth, &mut budget))
}

fn exist_tree(log: &ExecLog, tid: TupleId, depth: usize, budget: &mut usize) -> ProvTree {
    let rec = log.record(tid);
    let node = rec.tuple.loc.clone();
    let mut root = ProvTree::leaf(Vertex::Exist {
        from: rec.appear,
        to: rec.disappear,
        node: node.clone(),
        tuple: rec.tuple.clone(),
    });
    if depth == 0 || *budget == 0 {
        return root;
    }
    *budget = budget.saturating_sub(1);
    let mut appear = ProvTree::leaf(Vertex::Appear {
        at: rec.appear,
        node: node.clone(),
        tuple: rec.tuple.clone(),
    });
    match rec.kind {
        TupleKind::Base | TupleKind::Event => {
            appear.children.push(ProvTree::leaf(Vertex::Insert {
                at: rec.appear,
                node,
                tuple: rec.tuple.clone(),
            }));
        }
        TupleKind::Derived => {
            // All derivations of this instance at its appearance instant.
            for ev in &log.events {
                let ExecEvent::Derive { time, rule, head, body } = ev else {
                    continue;
                };
                if *head != tid {
                    continue;
                }
                let mut derive = ProvTree::leaf(Vertex::Derive {
                    at: *time,
                    node: node.clone(),
                    rule: rule.clone(),
                    tuple: rec.tuple.clone(),
                });
                for &btid in body {
                    if *budget == 0 {
                        break;
                    }
                    derive.children.push(exist_tree(log, btid, depth - 1, budget));
                }
                // Cross-node installs interpose SEND → RECEIVE.
                let shipped = log.events.iter().find_map(|e| match e {
                    ExecEvent::Send { time: st, from, to, tid: stid, positive: true }
                        if *stid == tid =>
                    {
                        Some((*st, from.clone(), to.clone()))
                    }
                    _ => None,
                });
                if let Some((st, from, to)) = shipped {
                    let send = ProvTree {
                        vertex: Vertex::Send {
                            at: st,
                            from: from.clone(),
                            to: to.clone(),
                            tuple: rec.tuple.clone(),
                            positive: true,
                        },
                        children: vec![derive],
                    };
                    let receive = ProvTree {
                        vertex: Vertex::Receive {
                            at: st,
                            from,
                            to,
                            tuple: rec.tuple.clone(),
                            positive: true,
                        },
                        children: vec![send],
                    };
                    appear.children.push(receive);
                } else {
                    appear.children.push(derive);
                }
            }
        }
    }
    root.children.push(appear);
    root
}

/// Explain why no tuple matching `pattern` existed at time `at` under
/// `program`. Always returns a tree (the root is NEXIST over `[0, at]`).
pub fn explain_absent(
    log: &ExecLog,
    program: &Program,
    pattern: &Pattern,
    at: Time,
) -> ProvTree {
    explain_absent_with(log, program, pattern, at, ExplainOptions::default())
}

/// [`explain_absent`] with explicit bounds.
pub fn explain_absent_with(
    log: &ExecLog,
    program: &Program,
    pattern: &Pattern,
    at: Time,
    opts: ExplainOptions,
) -> ProvTree {
    let mut budget = opts.max_vertices;
    absent_tree(log, program, pattern, at, opts.max_depth, &mut budget)
}

fn absent_tree(
    log: &ExecLog,
    program: &Program,
    pattern: &Pattern,
    at: Time,
    depth: usize,
    budget: &mut usize,
) -> ProvTree {
    let mut root = ProvTree::leaf(Vertex::NExist { from: 0, to: at, pattern: pattern.clone() });
    if depth == 0 || *budget == 0 {
        return root;
    }
    *budget = budget.saturating_sub(1);
    let deriving: Vec<&Rule> = program.rules_for_table(&pattern.table);
    if deriving.is_empty() {
        root.children
            .push(ProvTree::leaf(Vertex::NInsert { at, pattern: pattern.clone() }));
        return root;
    }
    for rule in deriving {
        if let Some(nd) = explain_failed_rule(log, program, rule, pattern, at, depth, budget) {
            root.children.push(nd);
        }
    }
    root
}

/// Why did `rule` fail to derive a tuple matching `pattern`?
fn explain_failed_rule(
    log: &ExecLog,
    program: &Program,
    rule: &Rule,
    pattern: &Pattern,
    at: Time,
    depth: usize,
    budget: &mut usize,
) -> Option<ProvTree> {
    // Head feasibility: constants in the head must agree with the pattern.
    let mut seed = Env::new();
    if let (Some(pl), Term::Const(c)) = (&pattern.loc, &rule.head.loc) {
        if pl != c {
            return None;
        }
    }
    if let (Some(pl), Term::Var(v)) = (&pattern.loc, &rule.head.loc) {
        seed.insert(v.clone(), pl.clone());
    }
    for (t, pv) in rule.head.args.iter().zip(pattern.args.iter()) {
        match (t, pv) {
            (Term::Const(c), Some(v)) if c != v => return None,
            (Term::Var(name), Some(v)) => match seed.get(name) {
                Some(bound) if bound != v => return None,
                _ => {
                    seed.insert(name.clone(), v.clone());
                }
            },
            _ => {}
        }
    }
    let mut nd = ProvTree::leaf(Vertex::NDerive {
        at,
        rule: rule.id.clone(),
        pattern: pattern.clone(),
    });
    // Join body atoms left-to-right against tuples alive at `at`.
    let mut envs: Vec<Env> = vec![seed];
    for atom in &rule.body {
        let alive: Vec<Tuple> = log
            .alive_at(&atom.table, at)
            .into_iter()
            .map(|r| r.tuple.clone())
            .collect();
        let mut next: Vec<Env> = Vec::new();
        for env in &envs {
            for t in &alive {
                if let Some(e2) = match_atom(atom, t, env) {
                    next.push(e2);
                }
            }
        }
        if next.is_empty() {
            // Missing precondition: instantiate what we can and recurse.
            let sub = instantiate_pattern(atom, envs.first().unwrap_or(&Env::new()).clone());
            if *budget > 0 {
                nd.children.push(absent_tree(log, program, &sub, at, depth - 1, budget));
            } else {
                nd.children.push(ProvTree::leaf(Vertex::NAppear { at, pattern: sub }));
            }
            return Some(nd);
        }
        envs = next;
    }
    // All atoms matched at least once: a selection (or head-value mismatch)
    // must be to blame. Report the first blocking selection of the first
    // binding for concreteness.
    'envs: for mut env in envs {
        let mut funcs = PureFuncs;
        for a in &rule.assigns {
            match a.expr.eval(&env, &mut funcs) {
                Ok(v) => {
                    env.insert(a.var.clone(), v);
                }
                Err(_) => continue 'envs,
            }
        }
        for sel in &rule.sels {
            match sel.eval(&env, &mut funcs) {
                Ok(true) => {}
                _ => {
                    let vars: BTreeSet<String> = sel.vars();
                    let bindings = vars
                        .iter()
                        .filter_map(|v| env.get(v).map(|x| format!("{v}={x}")))
                        .collect::<Vec<_>>()
                        .join(",");
                    nd.children.push(ProvTree::leaf(Vertex::FailedSelection {
                        at,
                        rule: rule.id.clone(),
                        sid: sel.sid(),
                        bindings,
                    }));
                    continue 'envs;
                }
            }
        }
        // Selections passed — the head simply has different values than the
        // pattern (e.g. assigned constants disagree). Report as a failed
        // "head match" pseudo-selection.
        nd.children.push(ProvTree::leaf(Vertex::FailedSelection {
            at,
            rule: rule.id.clone(),
            sid: format!("head {} matches {}", rule.head, pattern),
            bindings: String::new(),
        }));
    }
    Some(nd)
}

fn instantiate_pattern(atom: &mpr_ndlog::Atom, env: Env) -> Pattern {
    let loc = match &atom.loc {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => env.get(v).cloned(),
        Term::Agg(..) => None,
    };
    let args = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => env.get(v).cloned(),
            Term::Agg(..) => None,
        })
        .collect();
    Pattern { table: atom.table.clone(), loc, args }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::{parse_program, Value};
    use mpr_runtime::Engine;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    fn fig2() -> Program {
        parse_program(
            "fig2",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0)).
            materialize(WebLoadBalancer, infinity, 2, keys(0)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt), Swi == 1.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
            ",
        )
        .unwrap()
    }

    #[test]
    fn positive_explanation_reaches_base_tuples() {
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("WebLoadBalancer", Value::str("C"), vec![v(80), v(7)])).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(1), v(80)])).unwrap();
        let ft = Tuple::new("FlowTable", v(1), vec![v(80), v(7)]);
        assert!(e.contains(&ft));
        let tree = explain_exist(e.log(), &ft, e.now()).expect("tuple exists");
        let rendered = tree.render();
        assert!(rendered.contains("EXIST"), "{rendered}");
        assert!(rendered.contains("DERIVE"), "{rendered}");
        // The flow entry was installed across nodes C→1: SEND/RECEIVE.
        assert!(rendered.contains("SEND"), "{rendered}");
        assert!(rendered.contains("RECEIVE"), "{rendered}");
        // Leaves include the two base insertions.
        let leaves = tree.leaves();
        assert!(leaves.iter().any(|l| matches!(l, Vertex::Insert { tuple, .. } if tuple.table == "PacketIn")));
        assert!(leaves.iter().any(|l| matches!(l, Vertex::Insert { tuple, .. } if tuple.table == "WebLoadBalancer")));
    }

    #[test]
    fn missing_tuple_explained_by_failed_selection() {
        // The Fig. 1 symptom: no flow entry sending HTTP to port 2 on S3.
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(3), v(80)])).unwrap();
        // No FlowTable at switch 3.
        assert!(e.tuples_at(&v(3), "FlowTable").is_empty());
        let pat = Pattern {
            table: "FlowTable".into(),
            loc: Some(v(3)),
            args: vec![Some(v(80)), Some(v(2))],
        };
        let tree = explain_absent(e.log(), &p, &pat, e.now());
        let rendered = tree.render();
        // r7 is the near-miss: its join succeeded but Swi==2 failed (Swi=3).
        assert!(rendered.contains("NDERIVE"), "{rendered}");
        assert!(rendered.contains("Swi == 2"), "{rendered}");
        assert!(rendered.contains("Swi=3"), "{rendered}");
    }

    #[test]
    fn missing_base_tuple_explained_by_ninsert() {
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(1), v(80)])).unwrap();
        // r1 fails because WebLoadBalancer is empty; recursion bottoms out
        // in NINSERT for the missing base tuple.
        let pat = Pattern {
            table: "FlowTable".into(),
            loc: Some(v(1)),
            args: vec![Some(v(80)), None],
        };
        let tree = explain_absent(e.log(), &p, &pat, e.now());
        let rendered = tree.render();
        assert!(rendered.contains("NINSERT"), "{rendered}");
        assert!(rendered.contains("WebLoadBalancer"), "{rendered}");
    }

    #[test]
    fn absent_with_no_deriving_rules() {
        let p = fig2();
        let e = Engine::new(&p).unwrap();
        let pat = Pattern::any("WebLoadBalancer", 2);
        let tree = explain_absent(e.log(), &p, &pat, 0);
        assert!(matches!(tree.children[0].vertex, Vertex::NInsert { .. }));
    }

    #[test]
    fn tree_metrics_and_dot() {
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(2), v(80)])).unwrap();
        let ft = Tuple::new("FlowTable", v(2), vec![v(80), v(2)]);
        let tree = explain_exist(e.log(), &ft, e.now()).unwrap();
        assert!(tree.size() >= 4);
        assert!(tree.depth() >= 3);
        let dot = tree.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("EXIST"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn depth_bound_truncates() {
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("WebLoadBalancer", Value::str("C"), vec![v(80), v(7)])).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(1), v(80)])).unwrap();
        let ft = Tuple::new("FlowTable", v(1), vec![v(80), v(7)]);
        let shallow = explain_exist_with(
            e.log(),
            &ft,
            e.now(),
            ExplainOptions { max_depth: 0, max_vertices: 10 },
        )
        .unwrap();
        assert_eq!(shallow.size(), 1);
    }
}
