//! Provenance trees and the explanation queries.
//!
//! [`explain_exist`] answers "why does tuple τ exist?" by folding the
//! engine's execution log into the §3.1 graph: EXIST ← APPEAR ←
//! INSERT/DERIVE (← RECEIVE ← SEND for cross-node installs) ← body EXISTs,
//! recursively down to base tuples.
//!
//! [`explain_absent`] answers "why does no tuple matching this pattern
//! exist?" with negative provenance: NEXIST ← NDERIVE per candidate rule ←
//! the missing precondition (recursively) or the selection predicate that
//! blocked an otherwise-complete join. This is the *diagnosis* flavor —
//! every failing rule is explained. The *repair* flavor, which forks a
//! forest instead (§3.3), lives in `mpr-core`.

use crate::vertex::{Pattern, Vertex};
use mpr_ndlog::eval::{Env, PureFuncs};
use mpr_ndlog::{Program, Rule, Term, Tuple};
use mpr_runtime::codec::{put_str, put_tuple, put_u32, put_u64, put_value, Reader};
use mpr_runtime::engine::match_atom;
use mpr_runtime::{ExecEvent, ExecLog, Time, TupleId, TupleKind};
use mpr_storage::{Recovery, StorageBackend, StorageError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A provenance explanation tree. The root is the queried (non-)event;
/// children are its direct causes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvTree {
    /// This vertex.
    pub vertex: Vertex,
    /// Direct causes.
    pub children: Vec<ProvTree>,
}

impl ProvTree {
    /// Leaf tree.
    pub fn leaf(vertex: Vertex) -> Self {
        ProvTree { vertex, children: Vec::new() }
    }

    /// Number of vertices.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProvTree::size).sum::<usize>()
    }

    /// Height (leaf = 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(ProvTree::depth).max().unwrap_or(0)
    }

    /// All leaves.
    pub fn leaves(&self) -> Vec<&Vertex> {
        if self.children.is_empty() {
            vec![&self.vertex]
        } else {
            self.children.iter().flat_map(ProvTree::leaves).collect()
        }
    }

    /// Indented ASCII rendering (one vertex per line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push_str(&self.vertex.label());
        out.push('\n');
        for c in &self.children {
            c.render_into(out, indent + 1);
        }
    }

    /// GraphViz DOT rendering.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph provenance {\n  rankdir=BT;\n");
        let mut next = 0usize;
        self.dot_into(&mut out, &mut next);
        out.push_str("}\n");
        out
    }

    fn dot_into(&self, out: &mut String, next: &mut usize) -> usize {
        let me = *next;
        *next += 1;
        let shape = if self.vertex.is_negative() { "box" } else { "ellipse" };
        let color = if self.vertex.is_negative() { "firebrick" } else { "black" };
        out.push_str(&format!(
            "  n{me} [label=\"{}\", shape={shape}, color={color}];\n",
            self.vertex.label().replace('"', "\\\"")
        ));
        for c in &self.children {
            let cid = c.dot_into(out, next);
            out.push_str(&format!("  n{cid} -> n{me};\n"));
        }
        me
    }
}

/// Options bounding an explanation.
#[derive(Debug, Clone, Copy)]
pub struct ExplainOptions {
    /// Maximum recursion depth (tuple hops).
    pub max_depth: usize,
    /// Maximum total vertices.
    pub max_vertices: usize,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        ExplainOptions { max_depth: 32, max_vertices: 10_000 }
    }
}

/// The *net* derivation set of an execution: every `(rule, head, body)`
/// combination whose DERIVE events strictly outnumber its UNDERIVE events,
/// keyed by tuple **values** rather than instance ids (body tuples sorted).
///
/// This is the provenance-equivalence invariant the differential harness
/// checks: the pipelined and batch strategies may fire a shared body
/// combination a different number of times (support-count multiplicities
/// differ), but because duplicate firings carry identical body sets, every
/// retraction cascade underives them together — so the *net* sets agree.
pub fn derivation_set(log: &ExecLog) -> BTreeSet<(String, Tuple, Vec<Tuple>)> {
    let value_of = |tid: TupleId| log.tuples[tid as usize].tuple.clone();
    let mut net: std::collections::BTreeMap<(String, Tuple, Vec<Tuple>), i64> =
        std::collections::BTreeMap::new();
    for ev in &log.events {
        let (rule, head, body, sign) = match ev {
            ExecEvent::Derive { rule, head, body, .. } => (rule, head, body, 1),
            ExecEvent::Underive { rule, head, body, .. } => (rule, head, body, -1),
            _ => continue,
        };
        let mut body_vals: Vec<Tuple> = body.iter().map(|&t| value_of(t)).collect();
        body_vals.sort();
        *net.entry((rule.clone(), value_of(*head), body_vals)).or_insert(0) += sign;
    }
    net.into_iter().filter(|&(_, n)| n > 0).map(|(k, _)| k).collect()
}

/// Explain why `tuple` existed at time `at`. Returns `None` if no matching
/// instance was alive then.
pub fn explain_exist(log: &ExecLog, tuple: &Tuple, at: Time) -> Option<ProvTree> {
    explain_exist_with(log, tuple, at, ExplainOptions::default())
}

/// [`explain_exist`] with explicit bounds.
pub fn explain_exist_with(
    log: &ExecLog,
    tuple: &Tuple,
    at: Time,
    opts: ExplainOptions,
) -> Option<ProvTree> {
    let rec = log
        .tuples
        .iter()
        .find(|r| &r.tuple == tuple && r.alive_at(at))?;
    let mut budget = opts.max_vertices;
    Some(exist_tree(log, rec.tid, opts.max_depth, &mut budget))
}

fn exist_tree(log: &ExecLog, tid: TupleId, depth: usize, budget: &mut usize) -> ProvTree {
    let rec = log.record(tid);
    let node = rec.tuple.loc.clone();
    let mut root = ProvTree::leaf(Vertex::Exist {
        from: rec.appear,
        to: rec.disappear,
        node: node.clone(),
        tuple: rec.tuple.clone(),
    });
    if depth == 0 || *budget == 0 {
        return root;
    }
    *budget = budget.saturating_sub(1);
    let mut appear = ProvTree::leaf(Vertex::Appear {
        at: rec.appear,
        node: node.clone(),
        tuple: rec.tuple.clone(),
    });
    match rec.kind {
        TupleKind::Base | TupleKind::Event => {
            appear.children.push(ProvTree::leaf(Vertex::Insert {
                at: rec.appear,
                node,
                tuple: rec.tuple.clone(),
            }));
        }
        TupleKind::Derived => {
            // All derivations of this instance at its appearance instant.
            for ev in &log.events {
                let ExecEvent::Derive { time, rule, head, body } = ev else {
                    continue;
                };
                if *head != tid {
                    continue;
                }
                let mut derive = ProvTree::leaf(Vertex::Derive {
                    at: *time,
                    node: node.clone(),
                    rule: rule.clone(),
                    tuple: rec.tuple.clone(),
                });
                for &btid in body {
                    if *budget == 0 {
                        break;
                    }
                    derive.children.push(exist_tree(log, btid, depth - 1, budget));
                }
                // Cross-node installs interpose SEND → RECEIVE.
                let shipped = log.events.iter().find_map(|e| match e {
                    ExecEvent::Send { time: st, from, to, tid: stid, positive: true }
                        if *stid == tid =>
                    {
                        Some((*st, from.clone(), to.clone()))
                    }
                    _ => None,
                });
                if let Some((st, from, to)) = shipped {
                    let send = ProvTree {
                        vertex: Vertex::Send {
                            at: st,
                            from: from.clone(),
                            to: to.clone(),
                            tuple: rec.tuple.clone(),
                            positive: true,
                        },
                        children: vec![derive],
                    };
                    let receive = ProvTree {
                        vertex: Vertex::Receive {
                            at: st,
                            from,
                            to,
                            tuple: rec.tuple.clone(),
                            positive: true,
                        },
                        children: vec![send],
                    };
                    appear.children.push(receive);
                } else {
                    appear.children.push(derive);
                }
            }
        }
    }
    root.children.push(appear);
    root
}

/// Explain why no tuple matching `pattern` existed at time `at` under
/// `program`. Always returns a tree (the root is NEXIST over `[0, at]`).
pub fn explain_absent(
    log: &ExecLog,
    program: &Program,
    pattern: &Pattern,
    at: Time,
) -> ProvTree {
    explain_absent_with(log, program, pattern, at, ExplainOptions::default())
}

/// [`explain_absent`] with explicit bounds.
pub fn explain_absent_with(
    log: &ExecLog,
    program: &Program,
    pattern: &Pattern,
    at: Time,
    opts: ExplainOptions,
) -> ProvTree {
    let mut budget = opts.max_vertices;
    absent_tree(log, program, pattern, at, opts.max_depth, &mut budget)
}

fn absent_tree(
    log: &ExecLog,
    program: &Program,
    pattern: &Pattern,
    at: Time,
    depth: usize,
    budget: &mut usize,
) -> ProvTree {
    let mut root = ProvTree::leaf(Vertex::NExist { from: 0, to: at, pattern: pattern.clone() });
    if depth == 0 || *budget == 0 {
        return root;
    }
    *budget = budget.saturating_sub(1);
    let deriving: Vec<&Rule> = program.rules_for_table(&pattern.table);
    if deriving.is_empty() {
        root.children
            .push(ProvTree::leaf(Vertex::NInsert { at, pattern: pattern.clone() }));
        return root;
    }
    for rule in deriving {
        if let Some(nd) = explain_failed_rule(log, program, rule, pattern, at, depth, budget) {
            root.children.push(nd);
        }
    }
    root
}

/// Why did `rule` fail to derive a tuple matching `pattern`?
fn explain_failed_rule(
    log: &ExecLog,
    program: &Program,
    rule: &Rule,
    pattern: &Pattern,
    at: Time,
    depth: usize,
    budget: &mut usize,
) -> Option<ProvTree> {
    // Head feasibility: constants in the head must agree with the pattern.
    let mut seed = Env::new();
    if let (Some(pl), Term::Const(c)) = (&pattern.loc, &rule.head.loc) {
        if pl != c {
            return None;
        }
    }
    if let (Some(pl), Term::Var(v)) = (&pattern.loc, &rule.head.loc) {
        seed.insert(v.clone(), pl.clone());
    }
    for (t, pv) in rule.head.args.iter().zip(pattern.args.iter()) {
        match (t, pv) {
            (Term::Const(c), Some(v)) if c != v => return None,
            (Term::Var(name), Some(v)) => match seed.get(name) {
                Some(bound) if bound != v => return None,
                _ => {
                    seed.insert(name.clone(), v.clone());
                }
            },
            _ => {}
        }
    }
    let mut nd = ProvTree::leaf(Vertex::NDerive {
        at,
        rule: rule.id.clone(),
        pattern: pattern.clone(),
    });
    // Join body atoms left-to-right against tuples alive at `at`.
    let mut envs: Vec<Env> = vec![seed];
    for atom in &rule.body {
        let alive: Vec<Tuple> = log
            .alive_at(&atom.table, at)
            .into_iter()
            .map(|r| r.tuple.clone())
            .collect();
        let mut next: Vec<Env> = Vec::new();
        for env in &envs {
            for t in &alive {
                if let Some(e2) = match_atom(atom, t, env) {
                    next.push(e2);
                }
            }
        }
        if next.is_empty() {
            // Missing precondition: instantiate what we can and recurse.
            let sub = instantiate_pattern(atom, envs.first().unwrap_or(&Env::new()).clone());
            if *budget > 0 {
                nd.children.push(absent_tree(log, program, &sub, at, depth - 1, budget));
            } else {
                nd.children.push(ProvTree::leaf(Vertex::NAppear { at, pattern: sub }));
            }
            return Some(nd);
        }
        envs = next;
    }
    // All atoms matched at least once: a selection (or head-value mismatch)
    // must be to blame. Report the first blocking selection of the first
    // binding for concreteness.
    'envs: for mut env in envs {
        let mut funcs = PureFuncs;
        for a in &rule.assigns {
            match a.expr.eval(&env, &mut funcs) {
                Ok(v) => {
                    env.insert(a.var.clone(), v);
                }
                Err(_) => continue 'envs,
            }
        }
        for sel in &rule.sels {
            match sel.eval(&env, &mut funcs) {
                Ok(true) => {}
                _ => {
                    let vars: BTreeSet<String> = sel.vars();
                    let bindings = vars
                        .iter()
                        .filter_map(|v| env.get(v).map(|x| format!("{v}={x}")))
                        .collect::<Vec<_>>()
                        .join(",");
                    nd.children.push(ProvTree::leaf(Vertex::FailedSelection {
                        at,
                        rule: rule.id.clone(),
                        sid: sel.sid(),
                        bindings,
                    }));
                    continue 'envs;
                }
            }
        }
        // Selections passed — the head simply has different values than the
        // pattern (e.g. assigned constants disagree). Report as a failed
        // "head match" pseudo-selection.
        nd.children.push(ProvTree::leaf(Vertex::FailedSelection {
            at,
            rule: rule.id.clone(),
            sid: format!("head {} matches {}", rule.head, pattern),
            bindings: String::new(),
        }));
    }
    Some(nd)
}

fn instantiate_pattern(atom: &mpr_ndlog::Atom, env: Env) -> Pattern {
    let loc = match &atom.loc {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => env.get(v).cloned(),
        Term::Agg(..) => None,
    };
    let args = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => env.get(v).cloned(),
            Term::Agg(..) => None,
        })
        .collect();
    Pattern { table: atom.table.clone(), loc, args }
}

// ---------------------------------------------------------------------------
// canonical graph snapshots

/// Version byte of the graph snapshot payload format.
pub const GRAPH_SNAPSHOT_VERSION: u8 = 1;

/// A provenance graph in canonical form: explanation trees flattened into a
/// deduplicated vertex set with cause→effect edges, all held in one
/// deterministic order — vertices sorted by their canonical byte encoding,
/// edges and roots sorted numerically in that id space.
///
/// The payoff is [`ProvGraph::to_bytes`]: graphs built from explanations of
/// identical states are byte-identical regardless of the order trees were
/// added or the order the explainer emitted children, so snapshots can be
/// checksummed, diffed, and persisted through any
/// [`mpr_storage::StorageBackend`] ([`ProvGraph::save`] /
/// [`ProvGraph::load`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProvGraph {
    /// Sorted by canonical encoding (strictly increasing ⇒ deduplicated).
    vertices: Vec<Vertex>,
    /// `(cause, effect)` vertex-id pairs, sorted, deduplicated.
    edges: Vec<(u32, u32)>,
    /// Ids of the queried tree roots, sorted, deduplicated.
    roots: Vec<u32>,
}

impl ProvGraph {
    /// Flatten one explanation tree.
    pub fn from_tree(tree: &ProvTree) -> Self {
        Self::from_trees(std::slice::from_ref(tree))
    }

    /// Flatten a forest of explanation trees into one deduplicated graph.
    /// The result is independent of the order of `trees`.
    pub fn from_trees(trees: &[ProvTree]) -> Self {
        // Pass 1: a vertex's id is the rank of its canonical encoding.
        let mut by_enc: BTreeMap<Vec<u8>, Vertex> = BTreeMap::new();
        for t in trees {
            collect_vertices(t, &mut by_enc);
        }
        let ids: BTreeMap<&[u8], u32> =
            by_enc.keys().enumerate().map(|(i, k)| (k.as_slice(), i as u32)).collect();
        // Pass 2: edges and roots, rewritten into id space.
        let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut roots: BTreeSet<u32> = BTreeSet::new();
        for t in trees {
            roots.insert(ids[encode_vertex(&t.vertex).as_slice()]);
            collect_edges(t, &ids, &mut edges);
        }
        ProvGraph {
            vertices: by_enc.values().cloned().collect(),
            edges: edges.into_iter().collect(),
            roots: roots.into_iter().collect(),
        }
    }

    /// Vertices in canonical order; a vertex's index is its id.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// `(cause, effect)` edges in canonical order.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Ids of the tree roots the graph was built from.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Number of distinct vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Is `v` a vertex of the graph?
    pub fn contains(&self, v: &Vertex) -> bool {
        let enc = encode_vertex(v);
        self.vertices
            .binary_search_by(|u| encode_vertex(u).cmp(&enc))
            .is_ok()
    }

    /// Direct causes of vertex `effect`.
    pub fn causes(&self, effect: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges.iter().filter(move |&&(_, e)| e == effect).map(|&(c, _)| c)
    }

    /// Canonical byte serialization. Identical graphs — however they were
    /// built — produce identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.vertices.len() * 48);
        buf.push(GRAPH_SNAPSHOT_VERSION);
        put_u32(&mut buf, self.vertices.len() as u32);
        for v in &self.vertices {
            buf.extend_from_slice(&encode_vertex(v));
        }
        put_u32(&mut buf, self.edges.len() as u32);
        for &(c, e) in &self.edges {
            put_u32(&mut buf, c);
            put_u32(&mut buf, e);
        }
        put_u32(&mut buf, self.roots.len() as u32);
        for &r in &self.roots {
            put_u32(&mut buf, r);
        }
        buf
    }

    /// Decode a snapshot, verifying canonical form (sorted deduplicated
    /// vertices, sorted in-range edges and roots) so that
    /// `from_bytes(g.to_bytes()) == g` and corrupt or non-canonical input
    /// is rejected with an error, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(bytes);
        let v = r.u8()?;
        if v != GRAPH_SNAPSHOT_VERSION {
            return Err(format!("unsupported graph snapshot version {v}"));
        }
        let nv = r.u32()? as usize;
        if nv > 1 << 26 {
            return Err(format!("implausible vertex count {nv}"));
        }
        let mut vertices = Vec::with_capacity(nv);
        let mut prev: Option<Vec<u8>> = None;
        for _ in 0..nv {
            let v = read_vertex(&mut r)?;
            let enc = encode_vertex(&v);
            if let Some(p) = &prev {
                if *p >= enc {
                    return Err("vertices not in canonical order".into());
                }
            }
            prev = Some(enc);
            vertices.push(v);
        }
        let ne = r.u32()? as usize;
        if ne > 1 << 26 {
            return Err(format!("implausible edge count {ne}"));
        }
        let mut edges = Vec::with_capacity(ne);
        for _ in 0..ne {
            let c = r.u32()?;
            let e = r.u32()?;
            if c as usize >= nv || e as usize >= nv {
                return Err(format!("edge ({c},{e}) out of range"));
            }
            if let Some(&last) = edges.last() {
                if last >= (c, e) {
                    return Err("edges not in canonical order".into());
                }
            }
            edges.push((c, e));
        }
        let nr = r.u32()? as usize;
        if nr > nv {
            return Err(format!("implausible root count {nr}"));
        }
        let mut roots = Vec::with_capacity(nr);
        for _ in 0..nr {
            let id = r.u32()?;
            if id as usize >= nv {
                return Err(format!("root {id} out of range"));
            }
            if let Some(&last) = roots.last() {
                if last >= id {
                    return Err("roots not in canonical order".into());
                }
            }
            roots.push(id);
        }
        r.finish()?;
        Ok(ProvGraph { vertices, edges, roots })
    }

    /// Persist the graph as the backend's current snapshot (the WAL backend
    /// writes a checksummed snapshot file and rolls to a fresh epoch).
    pub fn save(&self, backend: &mut dyn StorageBackend) -> Result<(), StorageError> {
        backend.install_snapshot(&self.to_bytes())?;
        backend.flush()
    }

    /// Load the graph previously [`saved`](ProvGraph::save) to `backend`,
    /// along with the backend's recovery status. `None` if the backend
    /// holds no snapshot (fresh store).
    pub fn load(
        backend: &mut dyn StorageBackend,
    ) -> Result<Option<(ProvGraph, Recovery)>, StorageError> {
        let rec = backend.recover()?;
        let Some(bytes) = rec.snapshot else {
            return Ok(None);
        };
        let g = ProvGraph::from_bytes(&bytes)
            .map_err(|reason| StorageError::Corrupt { offset: 0, reason })?;
        Ok(Some((g, rec.status)))
    }
}

fn collect_vertices(tree: &ProvTree, out: &mut BTreeMap<Vec<u8>, Vertex>) {
    out.entry(encode_vertex(&tree.vertex)).or_insert_with(|| tree.vertex.clone());
    for c in &tree.children {
        collect_vertices(c, out);
    }
}

fn collect_edges(tree: &ProvTree, ids: &BTreeMap<&[u8], u32>, out: &mut BTreeSet<(u32, u32)>) {
    let me = ids[encode_vertex(&tree.vertex).as_slice()];
    for c in &tree.children {
        let cid = ids[encode_vertex(&c.vertex).as_slice()];
        out.insert((cid, me));
        collect_edges(c, ids, out);
    }
}

// --- vertex codec (little-endian, tagged; canonical: one encoding per value)

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u64(buf, x);
        }
    }
}

fn put_opt_value(buf: &mut Vec<u8>, v: &Option<mpr_ndlog::Value>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_value(buf, x);
        }
    }
}

fn put_pattern(buf: &mut Vec<u8>, p: &Pattern) {
    put_str(buf, &p.table);
    put_opt_value(buf, &p.loc);
    put_u32(buf, p.args.len() as u32);
    for a in &p.args {
        put_opt_value(buf, a);
    }
}

/// Canonical byte encoding of one vertex (self-delimiting).
fn encode_vertex(v: &Vertex) -> Vec<u8> {
    let mut buf = Vec::with_capacity(48);
    match v {
        Vertex::Exist { from, to, node, tuple } => {
            buf.push(0);
            put_u64(&mut buf, *from);
            put_opt_u64(&mut buf, *to);
            put_value(&mut buf, node);
            put_tuple(&mut buf, tuple);
        }
        Vertex::Insert { at, node, tuple } => {
            buf.push(1);
            put_u64(&mut buf, *at);
            put_value(&mut buf, node);
            put_tuple(&mut buf, tuple);
        }
        Vertex::Delete { at, node, tuple } => {
            buf.push(2);
            put_u64(&mut buf, *at);
            put_value(&mut buf, node);
            put_tuple(&mut buf, tuple);
        }
        Vertex::Derive { at, node, rule, tuple } => {
            buf.push(3);
            put_u64(&mut buf, *at);
            put_value(&mut buf, node);
            put_str(&mut buf, rule);
            put_tuple(&mut buf, tuple);
        }
        Vertex::Underive { at, node, rule, tuple } => {
            buf.push(4);
            put_u64(&mut buf, *at);
            put_value(&mut buf, node);
            put_str(&mut buf, rule);
            put_tuple(&mut buf, tuple);
        }
        Vertex::Appear { at, node, tuple } => {
            buf.push(5);
            put_u64(&mut buf, *at);
            put_value(&mut buf, node);
            put_tuple(&mut buf, tuple);
        }
        Vertex::Disappear { at, node, tuple } => {
            buf.push(6);
            put_u64(&mut buf, *at);
            put_value(&mut buf, node);
            put_tuple(&mut buf, tuple);
        }
        Vertex::Send { at, from, to, tuple, positive } => {
            buf.push(7);
            put_u64(&mut buf, *at);
            put_value(&mut buf, from);
            put_value(&mut buf, to);
            put_tuple(&mut buf, tuple);
            buf.push(u8::from(*positive));
        }
        Vertex::Receive { at, from, to, tuple, positive } => {
            buf.push(8);
            put_u64(&mut buf, *at);
            put_value(&mut buf, from);
            put_value(&mut buf, to);
            put_tuple(&mut buf, tuple);
            buf.push(u8::from(*positive));
        }
        Vertex::NExist { from, to, pattern } => {
            buf.push(9);
            put_u64(&mut buf, *from);
            put_u64(&mut buf, *to);
            put_pattern(&mut buf, pattern);
        }
        Vertex::NDerive { at, rule, pattern } => {
            buf.push(10);
            put_u64(&mut buf, *at);
            put_str(&mut buf, rule);
            put_pattern(&mut buf, pattern);
        }
        Vertex::NInsert { at, pattern } => {
            buf.push(11);
            put_u64(&mut buf, *at);
            put_pattern(&mut buf, pattern);
        }
        Vertex::NAppear { at, pattern } => {
            buf.push(12);
            put_u64(&mut buf, *at);
            put_pattern(&mut buf, pattern);
        }
        Vertex::FailedSelection { at, rule, sid, bindings } => {
            buf.push(13);
            put_u64(&mut buf, *at);
            put_str(&mut buf, rule);
            put_str(&mut buf, sid);
            put_str(&mut buf, bindings);
        }
    }
    buf
}

fn read_opt_u64(r: &mut Reader) -> Result<Option<u64>, String> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        t => Err(format!("unknown option tag {t}")),
    }
}

fn read_opt_value(r: &mut Reader) -> Result<Option<mpr_ndlog::Value>, String> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.value()?)),
        t => Err(format!("unknown option tag {t}")),
    }
}

fn read_pattern(r: &mut Reader) -> Result<Pattern, String> {
    let table = r.str()?;
    let loc = read_opt_value(r)?;
    let n = r.u32()? as usize;
    if n > 1 << 20 {
        return Err(format!("implausible pattern arity {n}"));
    }
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(read_opt_value(r)?);
    }
    Ok(Pattern { table, loc, args })
}

fn read_vertex(r: &mut Reader) -> Result<Vertex, String> {
    Ok(match r.u8()? {
        0 => Vertex::Exist {
            from: r.u64()?,
            to: read_opt_u64(r)?,
            node: r.value()?,
            tuple: r.tuple()?,
        },
        1 => Vertex::Insert { at: r.u64()?, node: r.value()?, tuple: r.tuple()? },
        2 => Vertex::Delete { at: r.u64()?, node: r.value()?, tuple: r.tuple()? },
        3 => Vertex::Derive { at: r.u64()?, node: r.value()?, rule: r.str()?, tuple: r.tuple()? },
        4 => {
            Vertex::Underive { at: r.u64()?, node: r.value()?, rule: r.str()?, tuple: r.tuple()? }
        }
        5 => Vertex::Appear { at: r.u64()?, node: r.value()?, tuple: r.tuple()? },
        6 => Vertex::Disappear { at: r.u64()?, node: r.value()?, tuple: r.tuple()? },
        7 => Vertex::Send {
            at: r.u64()?,
            from: r.value()?,
            to: r.value()?,
            tuple: r.tuple()?,
            positive: r.u8()? != 0,
        },
        8 => Vertex::Receive {
            at: r.u64()?,
            from: r.value()?,
            to: r.value()?,
            tuple: r.tuple()?,
            positive: r.u8()? != 0,
        },
        9 => Vertex::NExist { from: r.u64()?, to: r.u64()?, pattern: read_pattern(r)? },
        10 => Vertex::NDerive { at: r.u64()?, rule: r.str()?, pattern: read_pattern(r)? },
        11 => Vertex::NInsert { at: r.u64()?, pattern: read_pattern(r)? },
        12 => Vertex::NAppear { at: r.u64()?, pattern: read_pattern(r)? },
        13 => Vertex::FailedSelection {
            at: r.u64()?,
            rule: r.str()?,
            sid: r.str()?,
            bindings: r.str()?,
        },
        t => return Err(format!("unknown vertex tag {t}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::{parse_program, Value};
    use mpr_runtime::Engine;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    fn fig2() -> Program {
        parse_program(
            "fig2",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0)).
            materialize(WebLoadBalancer, infinity, 2, keys(0)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt), Swi == 1.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
            ",
        )
        .unwrap()
    }

    #[test]
    fn positive_explanation_reaches_base_tuples() {
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("WebLoadBalancer", Value::str("C"), vec![v(80), v(7)])).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(1), v(80)])).unwrap();
        let ft = Tuple::new("FlowTable", v(1), vec![v(80), v(7)]);
        assert!(e.contains(&ft));
        let tree = explain_exist(e.log(), &ft, e.now()).expect("tuple exists");
        let rendered = tree.render();
        assert!(rendered.contains("EXIST"), "{rendered}");
        assert!(rendered.contains("DERIVE"), "{rendered}");
        // The flow entry was installed across nodes C→1: SEND/RECEIVE.
        assert!(rendered.contains("SEND"), "{rendered}");
        assert!(rendered.contains("RECEIVE"), "{rendered}");
        // Leaves include the two base insertions.
        let leaves = tree.leaves();
        assert!(leaves.iter().any(|l| matches!(l, Vertex::Insert { tuple, .. } if tuple.table == "PacketIn")));
        assert!(leaves.iter().any(|l| matches!(l, Vertex::Insert { tuple, .. } if tuple.table == "WebLoadBalancer")));
    }

    #[test]
    fn missing_tuple_explained_by_failed_selection() {
        // The Fig. 1 symptom: no flow entry sending HTTP to port 2 on S3.
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(3), v(80)])).unwrap();
        // No FlowTable at switch 3.
        assert!(e.tuples_at(&v(3), "FlowTable").is_empty());
        let pat = Pattern {
            table: "FlowTable".into(),
            loc: Some(v(3)),
            args: vec![Some(v(80)), Some(v(2))],
        };
        let tree = explain_absent(e.log(), &p, &pat, e.now());
        let rendered = tree.render();
        // r7 is the near-miss: its join succeeded but Swi==2 failed (Swi=3).
        assert!(rendered.contains("NDERIVE"), "{rendered}");
        assert!(rendered.contains("Swi == 2"), "{rendered}");
        assert!(rendered.contains("Swi=3"), "{rendered}");
    }

    #[test]
    fn missing_base_tuple_explained_by_ninsert() {
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(1), v(80)])).unwrap();
        // r1 fails because WebLoadBalancer is empty; recursion bottoms out
        // in NINSERT for the missing base tuple.
        let pat = Pattern {
            table: "FlowTable".into(),
            loc: Some(v(1)),
            args: vec![Some(v(80)), None],
        };
        let tree = explain_absent(e.log(), &p, &pat, e.now());
        let rendered = tree.render();
        assert!(rendered.contains("NINSERT"), "{rendered}");
        assert!(rendered.contains("WebLoadBalancer"), "{rendered}");
    }

    #[test]
    fn absent_with_no_deriving_rules() {
        let p = fig2();
        let e = Engine::new(&p).unwrap();
        let pat = Pattern::any("WebLoadBalancer", 2);
        let tree = explain_absent(e.log(), &p, &pat, 0);
        assert!(matches!(tree.children[0].vertex, Vertex::NInsert { .. }));
    }

    #[test]
    fn tree_metrics_and_dot() {
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(2), v(80)])).unwrap();
        let ft = Tuple::new("FlowTable", v(2), vec![v(80), v(2)]);
        let tree = explain_exist(e.log(), &ft, e.now()).unwrap();
        assert!(tree.size() >= 4);
        assert!(tree.depth() >= 3);
        let dot = tree.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("EXIST"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn depth_bound_truncates() {
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("WebLoadBalancer", Value::str("C"), vec![v(80), v(7)])).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(1), v(80)])).unwrap();
        let ft = Tuple::new("FlowTable", v(1), vec![v(80), v(7)]);
        let shallow = explain_exist_with(
            e.log(),
            &ft,
            e.now(),
            ExplainOptions { max_depth: 0, max_vertices: 10 },
        )
        .unwrap();
        assert_eq!(shallow.size(), 1);
    }

    // -- canonical graph snapshots

    /// One full run of the Fig. 2 scenario, explained both positively and
    /// negatively.
    fn fig2_explanations() -> Vec<ProvTree> {
        let p = fig2();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("WebLoadBalancer", Value::str("C"), vec![v(80), v(7)])).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(1), v(80)])).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(3), v(80)])).unwrap();
        let ft = Tuple::new("FlowTable", v(1), vec![v(80), v(7)]);
        let exist = explain_exist(e.log(), &ft, e.now()).unwrap();
        let pat = Pattern {
            table: "FlowTable".into(),
            loc: Some(v(3)),
            args: vec![Some(v(80)), Some(v(2))],
        };
        let absent = explain_absent(e.log(), &p, &pat, e.now());
        vec![exist, absent]
    }

    #[test]
    fn graph_snapshot_is_byte_identical_across_runs() {
        // Two completely independent engine runs of the same scenario must
        // serialize their provenance to the same bytes.
        let a = ProvGraph::from_trees(&fig2_explanations()).to_bytes();
        let b = ProvGraph::from_trees(&fig2_explanations()).to_bytes();
        assert_eq!(a, b, "repeated runs must produce byte-identical snapshots");
    }

    #[test]
    fn graph_snapshot_is_insertion_order_independent() {
        let trees = fig2_explanations();
        let fwd = ProvGraph::from_trees(&trees);
        let rev: Vec<ProvTree> = trees.iter().rev().cloned().collect();
        let bwd = ProvGraph::from_trees(&rev);
        assert_eq!(fwd, bwd);
        assert_eq!(fwd.to_bytes(), bwd.to_bytes());
    }

    #[test]
    fn graph_dedups_shared_subtrees() {
        let trees = fig2_explanations();
        let total: usize = trees.iter().map(ProvTree::size).sum();
        let g = ProvGraph::from_trees(&trees);
        assert!(g.vertex_count() <= total);
        assert_eq!(g.roots().len(), 2);
        // Every tree vertex is in the graph; every edge points both ways
        // into the vertex set (checked by from_bytes below too).
        for t in &trees {
            assert!(g.contains(&t.vertex));
        }
        // Adding the same tree twice changes nothing.
        let doubled: Vec<ProvTree> =
            trees.iter().chain(trees.iter()).cloned().collect();
        assert_eq!(ProvGraph::from_trees(&doubled), g);
    }

    #[test]
    fn graph_snapshot_round_trips() {
        let g = ProvGraph::from_trees(&fig2_explanations());
        let bytes = g.to_bytes();
        let g2 = ProvGraph::from_bytes(&bytes).unwrap();
        assert_eq!(g2, g);
        assert_eq!(g2.to_bytes(), bytes);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn graph_decode_rejects_corruption_without_panicking() {
        let g = ProvGraph::from_trees(&fig2_explanations());
        let bytes = g.to_bytes();
        // Truncations at every prefix length: error, never panic.
        for cut in 0..bytes.len() {
            assert!(ProvGraph::from_bytes(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
        // A flipped bit either fails to decode or decodes to different
        // bytes — it must never be silently accepted as the same graph.
        for pos in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            if let Ok(g2) = ProvGraph::from_bytes(&bad) {
                assert_ne!(g2.to_bytes(), bytes, "flip at {pos} undetected");
            }
        }
        assert!(ProvGraph::from_bytes(&[]).is_err());
        assert!(ProvGraph::from_bytes(&[99]).is_err(), "bad version accepted");
    }

    #[test]
    fn graph_persists_through_a_storage_backend() {
        use mpr_storage::{MemBackend, WalBackend, WalConfig};

        let g = ProvGraph::from_trees(&fig2_explanations());

        let mut mem = MemBackend::new();
        g.save(&mut mem).unwrap();
        let (g2, status) = ProvGraph::load(&mut mem).unwrap().expect("snapshot saved");
        assert!(status.is_clean());
        assert_eq!(g2, g);

        // And through the WAL backend, across a close/reopen.
        let dir = std::env::temp_dir()
            .join(format!("mpr-provgraph-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = WalBackend::open(WalConfig::new(&dir)).unwrap();
        g.save(&mut wal).unwrap();
        drop(wal);
        let mut wal = WalBackend::open(WalConfig::new(&dir)).unwrap();
        let (g3, status) = ProvGraph::load(&mut wal).unwrap().expect("snapshot on disk");
        assert!(status.is_clean());
        assert_eq!(g3.to_bytes(), g.to_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn graph_load_on_fresh_backend_is_none() {
        let mut mem = mpr_storage::MemBackend::new();
        assert!(ProvGraph::load(&mut mem).unwrap().is_none());
    }
}
