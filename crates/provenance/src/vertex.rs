//! Provenance graph vertices (§3.1 of the paper).
//!
//! Positive vertices describe events that happened; each has a negative
//! "twin" describing events that *failed* to happen, enabling negative
//! provenance (Wu et al., SIGCOMM'14). One extra vertex kind,
//! [`Vertex::FailedSelection`], names the selection predicate that blocked
//! a rule — the paper's meta model expresses the same information through
//! `Sel` meta tuples.

use mpr_ndlog::{Tuple, Value};
use mpr_runtime::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A tuple *pattern*: a table plus optionally-constrained columns. Used by
/// negative vertices, which talk about tuples that do not exist.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    /// Table name.
    pub table: String,
    /// Location constraint (`None` = any node).
    pub loc: Option<Value>,
    /// Per-column constraints (`None` = any value).
    pub args: Vec<Option<Value>>,
}

impl Pattern {
    /// Pattern matching exactly one concrete tuple.
    pub fn exact(t: &Tuple) -> Self {
        Pattern {
            table: t.table.clone(),
            loc: Some(t.loc.clone()),
            args: t.args.iter().cloned().map(Some).collect(),
        }
    }

    /// Pattern with a table and arity but no constraints.
    pub fn any(table: impl Into<String>, arity: usize) -> Self {
        Pattern { table: table.into(), loc: None, args: vec![None; arity] }
    }

    /// Does `t` satisfy the pattern?
    pub fn matches(&self, t: &Tuple) -> bool {
        if t.table != self.table || t.args.len() != self.args.len() {
            return false;
        }
        if let Some(l) = &self.loc {
            if l != &t.loc {
                return false;
            }
        }
        self.args
            .iter()
            .zip(t.args.iter())
            .all(|(p, v)| p.as_ref().map_or(true, |pv| pv == v))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(@", self.table)?;
        match &self.loc {
            Some(v) => write!(f, "{v}")?,
            None => write!(f, "?")?,
        }
        for a in &self.args {
            match a {
                Some(v) => write!(f, ",{v}")?,
                None => write!(f, ",?")?,
            }
        }
        write!(f, ")")
    }
}

/// One provenance vertex.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vertex {
    /// `EXIST([t1,t2], N, τ)`: τ existed on node N from t1 to t2.
    Exist {
        /// Start of the interval.
        from: Time,
        /// End of the interval (`None` = still alive).
        to: Option<Time>,
        /// Node.
        node: Value,
        /// The tuple.
        tuple: Tuple,
    },
    /// `INSERT(t, N, τ)`: base tuple τ was inserted.
    Insert {
        /// Timestamp.
        at: Time,
        /// Node.
        node: Value,
        /// The tuple.
        tuple: Tuple,
    },
    /// `DELETE(t, N, τ)`: base tuple τ was deleted.
    Delete {
        /// Timestamp.
        at: Time,
        /// Node.
        node: Value,
        /// The tuple.
        tuple: Tuple,
    },
    /// `DERIVE(t, N, τ)` via `rule`.
    Derive {
        /// Timestamp.
        at: Time,
        /// Node.
        node: Value,
        /// Rule id.
        rule: String,
        /// The derived tuple.
        tuple: Tuple,
    },
    /// `UNDERIVE(t, N, τ)` via `rule`.
    Underive {
        /// Timestamp.
        at: Time,
        /// Node.
        node: Value,
        /// Rule id.
        rule: String,
        /// The underived tuple.
        tuple: Tuple,
    },
    /// `APPEAR(t, N, τ)`.
    Appear {
        /// Timestamp.
        at: Time,
        /// Node.
        node: Value,
        /// The tuple.
        tuple: Tuple,
    },
    /// `DISAPPEAR(t, N, τ)`.
    Disappear {
        /// Timestamp.
        at: Time,
        /// Node.
        node: Value,
        /// The tuple.
        tuple: Tuple,
    },
    /// `SEND(t, N→N', ±τ)`.
    Send {
        /// Timestamp.
        at: Time,
        /// Sender.
        from: Value,
        /// Receiver.
        to: Value,
        /// The tuple.
        tuple: Tuple,
        /// `+τ` or `-τ`.
        positive: bool,
    },
    /// `RECEIVE(t, N←N', ±τ)`.
    Receive {
        /// Timestamp.
        at: Time,
        /// Sender.
        from: Value,
        /// Receiver.
        to: Value,
        /// The tuple.
        tuple: Tuple,
        /// `+τ` or `-τ`.
        positive: bool,
    },
    /// `NEXIST([t1,t2], N, τ-pattern)`: no matching tuple existed.
    NExist {
        /// Start of the interval.
        from: Time,
        /// End of the interval.
        to: Time,
        /// The unmatched pattern.
        pattern: Pattern,
    },
    /// `NDERIVE(t, rule, τ-pattern)`: the rule failed to derive a match.
    NDerive {
        /// Time of the (non-)event.
        at: Time,
        /// Rule id.
        rule: String,
        /// The pattern the rule failed to derive.
        pattern: Pattern,
    },
    /// `NINSERT`: the pattern names a base table into which no matching
    /// tuple was ever inserted.
    NInsert {
        /// Time of the (non-)event.
        at: Time,
        /// The missing base pattern.
        pattern: Pattern,
    },
    /// `NAPPEAR`.
    NAppear {
        /// Time of the (non-)event.
        at: Time,
        /// The pattern that failed to appear.
        pattern: Pattern,
    },
    /// A selection predicate evaluated to false under a concrete binding,
    /// blocking an otherwise-complete join.
    FailedSelection {
        /// Time of evaluation.
        at: Time,
        /// Rule id.
        rule: String,
        /// The selection's source text (its SID, e.g. `"Swi == 2"`).
        sid: String,
        /// Rendered bindings, e.g. `"Swi=3"`.
        bindings: String,
    },
}

impl Vertex {
    /// `true` for the negative vertex kinds.
    pub fn is_negative(&self) -> bool {
        matches!(
            self,
            Vertex::NExist { .. }
                | Vertex::NDerive { .. }
                | Vertex::NInsert { .. }
                | Vertex::NAppear { .. }
                | Vertex::FailedSelection { .. }
        )
    }

    /// Short label for graph rendering.
    pub fn label(&self) -> String {
        match self {
            Vertex::Exist { from, to, node, tuple } => match to {
                Some(t2) => format!("EXIST([{from},{t2}], @{node}, {tuple})"),
                None => format!("EXIST([{from},now], @{node}, {tuple})"),
            },
            Vertex::Insert { at, node, tuple } => format!("INSERT({at}, @{node}, {tuple})"),
            Vertex::Delete { at, node, tuple } => format!("DELETE({at}, @{node}, {tuple})"),
            Vertex::Derive { at, node, rule, tuple } => {
                format!("DERIVE({at}, @{node}, {rule}, {tuple})")
            }
            Vertex::Underive { at, node, rule, tuple } => {
                format!("UNDERIVE({at}, @{node}, {rule}, {tuple})")
            }
            Vertex::Appear { at, node, tuple } => format!("APPEAR({at}, @{node}, {tuple})"),
            Vertex::Disappear { at, node, tuple } => {
                format!("DISAPPEAR({at}, @{node}, {tuple})")
            }
            Vertex::Send { at, from, to, tuple, positive } => {
                format!("SEND({at}, {from}->{to}, {}{tuple})", if *positive { "+" } else { "-" })
            }
            Vertex::Receive { at, from, to, tuple, positive } => {
                format!("RECEIVE({at}, {to}<-{from}, {}{tuple})", if *positive { "+" } else { "-" })
            }
            Vertex::NExist { from, to, pattern } => {
                format!("NEXIST([{from},{to}], {pattern})")
            }
            Vertex::NDerive { at, rule, pattern } => format!("NDERIVE({at}, {rule}, {pattern})"),
            Vertex::NInsert { at, pattern } => format!("NINSERT({at}, {pattern})"),
            Vertex::NAppear { at, pattern } => format!("NAPPEAR({at}, {pattern})"),
            Vertex::FailedSelection { at, rule, sid, bindings } => {
                format!("FAILED-SEL({at}, {rule}, \"{sid}\" with {bindings})")
            }
        }
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new("FlowTable", 3i64, vec![Value::Int(80), Value::Int(2)])
    }

    #[test]
    fn pattern_matching() {
        let p = Pattern::exact(&t());
        assert!(p.matches(&t()));
        let mut p2 = Pattern::exact(&t());
        p2.args[1] = None;
        assert!(p2.matches(&t()));
        assert!(p2.matches(&Tuple::new("FlowTable", 3i64, vec![Value::Int(80), Value::Int(9)])));
        assert!(!p2.matches(&Tuple::new("FlowTable", 3i64, vec![Value::Int(81), Value::Int(2)])));
        assert!(!p2.matches(&Tuple::new("Other", 3i64, vec![Value::Int(80), Value::Int(2)])));
        let any = Pattern::any("FlowTable", 2);
        assert!(any.matches(&t()));
        // arity mismatch
        assert!(!any.matches(&Tuple::new("FlowTable", 3i64, vec![Value::Int(80)])));
    }

    #[test]
    fn pattern_display_shows_wildcards() {
        let mut p = Pattern::exact(&t());
        p.args[1] = None;
        assert_eq!(p.to_string(), "FlowTable(@3,80,?)");
        assert_eq!(Pattern::any("T", 1).to_string(), "T(@?,?)");
    }

    #[test]
    fn vertex_labels_and_polarity() {
        let v = Vertex::Exist { from: 1, to: Some(5), node: Value::Int(3), tuple: t() };
        assert_eq!(v.label(), "EXIST([1,5], @3, FlowTable(@3,80,2))");
        assert!(!v.is_negative());
        let v = Vertex::NExist { from: 0, to: 9, pattern: Pattern::exact(&t()) };
        assert!(v.is_negative());
        assert!(v.label().starts_with("NEXIST"));
        let v = Vertex::FailedSelection {
            at: 3,
            rule: "r7".into(),
            sid: "Swi == 2".into(),
            bindings: "Swi=3".into(),
        };
        assert!(v.is_negative());
        assert!(v.label().contains("Swi == 2"));
    }
}
