//! # mpr-provenance — classical network provenance
//!
//! The provenance substrate of the reproduction (§2.2/§3.1): positive and
//! negative provenance graphs over NDlog executions, in the style of
//! ExSPAN/SNP/Y! — the systems the paper builds on.
//!
//! - [`vertex::Vertex`] — the §3.1 vertex alphabet (EXIST, INSERT, DELETE,
//!   DERIVE, UNDERIVE, APPEAR, DISAPPEAR, SEND, RECEIVE) plus negative
//!   twins (NEXIST, NDERIVE, NINSERT, NAPPEAR) and failed-selection
//!   vertices;
//! - [`graph::explain_exist`] — "why does this tuple exist?" (positive);
//! - [`graph::explain_absent`] — "why is this tuple missing?" (negative,
//!   diagnosis-flavored: all failing rules are explained);
//! - [`graph::ProvTree`] — rendering (ASCII / GraphViz DOT);
//! - [`graph::ProvGraph`] — explanation forests flattened to a canonical
//!   (sorted, deduplicated) graph whose byte serialization is identical
//!   for identical states, persistable through any
//!   `mpr_storage::StorageBackend`.
//!
//! Classical provenance can *diagnose* but not *repair* (§2.4): the graph
//! treats the program as immutable. The meta-provenance layer in
//! `mpr-core` lifts the same machinery over programs-as-data.

#![warn(missing_docs)]

pub mod graph;
pub mod vertex;

pub use graph::{
    derivation_set, explain_absent, explain_absent_with, explain_exist, explain_exist_with,
    ExplainOptions, ProvGraph, ProvTree, GRAPH_SNAPSHOT_VERSION,
};
pub use vertex::{Pattern, Vertex};
