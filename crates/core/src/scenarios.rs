//! The five diagnostic scenarios of §5.3, recreated as in the paper "based
//! on their published description":
//!
//! - **Q1** copy-and-paste error (CP-Miner class, Fig. 1/Fig. 2);
//! - **Q2** forwarding error (ATPG class);
//! - **Q3** uncoordinated policy update (OFf class);
//! - **Q4** forgotten packets (NICE class);
//! - **Q5** incorrect MAC learning (the HotSDN assertion-language class).
//!
//! Each scenario bundles the buggy program, the network, the seeded
//! controller state, a deterministic workload, the operator's symptom
//! query, and the effectiveness criterion used by backtesting.

use crate::cost::{CostModel, SearchBudget};
use mpr_ndlog::{parse_program, Program, Tuple, Value};
use mpr_provenance::Pattern;
use mpr_sdn::controller::{PktArg, TupleCodec};
use mpr_sdn::packet::Packet;
use mpr_sdn::sim::SimConfig;
use mpr_sdn::topology::{fig1_hosts, NodeRef, Topology};
use mpr_trace::workload::Injection;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What the operator observed.
#[derive(Debug, Clone)]
pub enum Symptom {
    /// A tuple that should exist does not (negative, the common case).
    Missing(Pattern),
    /// A tuple exists that should not (positive, Fig. 7).
    Existing(Tuple),
}

/// The effectiveness criterion: did the repair fix the problem at hand?
/// ("the repair caused the server to receive at least a few packets",
/// §5.3.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effect {
    /// `delivered_on(host, port) > 0`.
    DeliversOn {
        /// Destination host.
        host: i64,
        /// Destination port.
        port: i64,
    },
    /// `delivered_to(host) >= min` (Q4's first-packet criterion).
    DeliversAtLeast {
        /// Destination host.
        host: i64,
        /// Minimum delivered count.
        min: u64,
    },
}

impl Effect {
    /// Evaluate against a replay outcome.
    pub fn holds(&self, stats: &mpr_sdn::sim::SimStats) -> bool {
        match self {
            Effect::DeliversOn { host, port } => stats.delivered_on(*host, *port) > 0,
            Effect::DeliversAtLeast { host, min } => stats.delivered_to(*host) >= *min,
        }
    }
}

/// A full diagnostic scenario.
#[derive(Clone)]
pub struct Scenario {
    /// Short id ("Q1").
    pub id: String,
    /// The paper's query text.
    pub query: String,
    /// The buggy controller program.
    pub program: Program,
    /// The network (shared: backtests hand it to many replays unchanged).
    pub topology: Arc<Topology>,
    /// Packet ↔ tuple mapping.
    pub codec: TupleCodec,
    /// Configuration tuples seeded into the controller.
    pub seeds: Vec<Tuple>,
    /// The deterministic workload.
    pub workload: Vec<Injection>,
    /// The observed symptom.
    pub symptom: Symptom,
    /// Effectiveness criterion for backtesting.
    pub effect: Effect,
    /// A substring identifying the repair a human would pick (used by the
    /// integration tests: the intuitive fix must be generated).
    pub reference_fix: String,
    /// Search bounds for this scenario.
    pub budget: SearchBudget,
    /// Cost model (default unless the scenario overrides it).
    pub cost: CostModel,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Controller language the program was written in (§5.8).
    pub language: Language,
    /// Does the language's syntax admit operator repairs? Pyretic's
    /// `match` is equality-only (§5.8), so operator mutations are not
    /// legal Pyretic repairs.
    pub op_repairs: bool,
}

/// Controller language of a scenario (§5.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Language {
    /// RapidNet-style declarative NDlog.
    NDlog,
    /// Mini-Trema (imperative, Ruby-flavored).
    Trema,
    /// Mini-Pyretic (NetCore policy algebra).
    Pyretic,
}

fn v(i: i64) -> Value {
    Value::Int(i)
}

const C: &str = "C";

/// Hosts specific to the Q1 extended topology.
pub mod q1_hosts {
    /// Client behind S2 (its HTTP rides r5's entry).
    pub const C2: i64 = 25;
    /// Edge web server behind S4.
    pub const H30: i64 = 30;
    /// Edge client behind S4.
    pub const C31: i64 = 31;
    /// Edge web server behind S5.
    pub const H40: i64 = 40;
    /// Edge client behind S5.
    pub const C41: i64 = 41;
}

/// Fig. 1 topology extended with two edge networks (S4, S5) so that
/// over-general repairs have observable side effects (the campus flavor of
/// §5.2 at fixture scale).
pub fn q1_topology() -> Topology {
    let mut t = mpr_sdn::topology::fig1();
    t.add_switch(4);
    t.add_switch(5);
    for h in [q1_hosts::C2, q1_hosts::H30, q1_hosts::C31, q1_hosts::H40, q1_hosts::C41] {
        t.add_host(h);
    }
    t.connect_ports(NodeRef::Switch(2), 3, NodeRef::Host(q1_hosts::C2), 0);
    t.connect_ports(NodeRef::Switch(4), 0, NodeRef::Switch(1), 3);
    t.connect_ports(NodeRef::Switch(4), 1, NodeRef::Host(q1_hosts::H30), 0);
    t.connect_ports(NodeRef::Switch(4), 2, NodeRef::Host(q1_hosts::C31), 0);
    t.connect_ports(NodeRef::Switch(5), 0, NodeRef::Switch(1), 4);
    t.connect_ports(NodeRef::Switch(5), 1, NodeRef::Host(q1_hosts::H40), 0);
    t.connect_ports(NodeRef::Switch(5), 2, NodeRef::Host(q1_hosts::C41), 0);
    t
}

/// The Q1 (buggy) controller program — Fig. 2 extended with the edge-switch
/// policies. The copy-and-paste bug is in `r7`: `Swi == 2` should be
/// `Swi == 3`.
pub fn q1_program() -> Program {
    parse_program(
        "q1-loadbalancer",
        r"
        materialize(PacketIn, event, 2, keys()).
        materialize(FlowTable, infinity, 2, keys(0,1)).
        materialize(WebLoadBalancer, infinity, 2, keys(0)).
        r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt), Swi == 1.
        r2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 53, Prt := 2.
        r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
        r6 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 53, Prt := 2.
        r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
        p1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 4, Hdr == 80, Prt := 1.
        p2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 5, Hdr == 80, Prt := 1.
        p3 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 3, Hdr == 53, Prt := 1.
        ",
    )
    .expect("q1 program parses")
}

/// Q1 workload: edge-local web traffic dominates; a small stream of
/// offloaded Internet HTTP plus Internet DNS exercises the buggy path.
fn q1_workload(packets_per_flow: u64) -> Vec<Injection> {
    let mut w = Vec::new();
    let n = packets_per_flow;
    let mut seq = 0u64;
    for i in 0..n {
        // Background: clients hammer their local web servers (dominant).
        for _ in 0..6 {
            w.push((q1_hosts::C31, Packet::http(seq, q1_hosts::C31, q1_hosts::H30)));
            seq += 1;
            w.push((q1_hosts::C41, Packet::http(seq + 1000_000, q1_hosts::C41, q1_hosts::H40)));
            seq += 1;
        }
        // A client behind S2 rides r5's entry to the primary server H1 —
        // repairs that re-target r5 (Table 2 candidate I) hurt this flow.
        for _ in 0..2 {
            w.push((q1_hosts::C2, Packet::http(seq, q1_hosts::C2, fig1_hosts::H1)));
            seq += 1;
        }
        // Internet DNS (delivered in the buggy network).
        w.push((fig1_hosts::INTERNET, Packet::dns(seq, 100, fig1_hosts::DNS)));
        seq += 1;
        // Offloaded Internet HTTP — the symptom flow (small share).
        if i % 8 == 0 {
            w.push((fig1_hosts::INTERNET, Packet::http(seq, 100, fig1_hosts::H2)));
            seq += 1;
        }
    }
    w
}

impl Scenario {
    /// **Q1 — copy-and-paste error** (Fig. 1/Fig. 2; CP-Miner class).
    /// "H2 is not receiving HTTP requests": the operator copied `r5` into
    /// `r7` for the new backup server but forgot to change `Swi == 2`.
    pub fn q1_copy_paste() -> Scenario {
        Scenario {
            id: "Q1".into(),
            query: "H2 is not receiving HTTP requests from the Internet".into(),
            program: q1_program(),
            topology: Arc::new(q1_topology()),
            codec: TupleCodec::fig2(),
            seeds: vec![Tuple::new("WebLoadBalancer", Value::str(C), vec![v(80), v(2)])],
            workload: q1_workload(128),
            symptom: Symptom::Missing(Pattern {
                table: "FlowTable".into(),
                loc: Some(v(3)),
                args: vec![Some(v(80)), Some(v(2))],
            }),
            effect: Effect::DeliversOn { host: fig1_hosts::H2, port: 80 },
            reference_fix: "Changing Swi == 2 in r7 to Swi == 3".into(),
            budget: SearchBudget::default(),
            cost: CostModel::default(),
            sim: SimConfig::default(),
            language: Language::NDlog,
            op_repairs: true,
        }
    }

    /// **Q2 — forwarding error** (ATPG class). "H17 is not receiving DNS
    /// queries from client 6": the allow predicate `Sip < 6` excludes the
    /// newest permitted client; `Sip < 7` (or `<= 6`) is the fix.
    pub fn q2_forwarding_error() -> Scenario {
        let program = parse_program(
            "q2-forwarding",
            r"
            materialize(PacketIn, event, 6, keys()).
            materialize(FlowTable, infinity, 5, keys(0,1,2,3)).
            r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Swi == 3, Dpt == 53, Sip < 6, Prt := 1.
            r2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Swi == 1, Dpt == 53, Ipt < 16, Prt := 2.
            r3 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Swi == 1, Dpt == 80, Sip < 99, Prt := 1.
            r5 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Swi == 2, Dpt == 80, Sip < 2009, Prt := 1.
            ",
        )
        .expect("q2 program parses");
        // Clients 1..=12 send DNS; policy intent: clients 1..=6 allowed.
        // Client 6 is wrongly blocked (the symptom); 7..=12 stay blocked.
        let mut workload = Vec::new();
        let mut seq = 0u64;
        for round in 0..40 {
            for c in 1..=12i64 {
                workload.push((fig1_hosts::INTERNET, {
                    let mut p = Packet::dns(seq, c, fig1_hosts::DNS);
                    p.src_mac = c;
                    p.src_port = 1000 + c; // one flow per client
                    p
                }));
                seq += 1;
            }
            // Background HTTP keeps the overall distribution broad.
            for c in 1..=4i64 {
                let _ = round;
                let mut p = Packet::http(seq, c, fig1_hosts::H1);
                p.src_port = 2000 + c; // one flow per client
                workload.push((fig1_hosts::INTERNET, p));
                seq += 1;
            }
        }
        Scenario {
            id: "Q2".into(),
            query: "The DNS server is not receiving queries from client 6".into(),
            program,
            topology: Arc::new(mpr_sdn::topology::fig1()),
            codec: TupleCodec::five_tuple(),
            seeds: vec![],
            workload,
            symptom: Symptom::Missing(Pattern {
                table: "FlowTable".into(),
                loc: Some(v(3)),
                args: vec![Some(v(6)), Some(v(fig1_hosts::DNS)), None, Some(v(53)), Some(v(1))],
            }),
            effect: Effect::DeliversOn { host: fig1_hosts::DNS, port: 53 },
            reference_fix: "Changing Sip < 6 in r1 to Sip < 7".into(),
            budget: SearchBudget { max_candidates: 12, ..SearchBudget::default() },
            cost: CostModel::default(),
            sim: SimConfig::default(),
            language: Language::NDlog,
            op_repairs: true,
        }
    }

    /// **Q3 — uncoordinated policy update** (OFf class). The load balancer
    /// started offloading clients 1 and 3 through S3, but the stale
    /// firewall whitelist `Sip > 3` blocks client 3 (client 1 is blocked
    /// *by policy* and must stay blocked — `Sip > 0` overshoots).
    pub fn q3_policy_update() -> Scenario {
        let program = parse_program(
            "q3-firewall",
            r"
            materialize(PacketIn, event, 6, keys()).
            materialize(FlowTable, infinity, 5, keys(0,1,2,3)).
            lb1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Swi == 1, Dpt == 80, Sip > 4, Prt := 1.
            lb2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Swi == 1, Dpt == 80, Sip < 5, Prt := 2.
            w1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Swi == 2, Dpt == 80, Sip > 0, Prt := 1.
            f1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Swi == 3, Dpt == 80, Sip > 3, Prt := 2.
            ",
        )
        .expect("q3 program parses");
        // Clients 5..=9 take the primary path (S1→S2→H1). Clients 1 and 3
        // are offloaded via S3 toward the backup H2; the firewall must pass
        // 3 (whitelisted) and keep dropping 1.
        let mut workload = Vec::new();
        let mut seq = 0u64;
        for round in 0..100u64 {
            for c in 5..=9i64 {
                let mut p = Packet::http(seq, c, fig1_hosts::H1);
                p.src_port = 2000 + c; // one flow per client
                workload.push((fig1_hosts::INTERNET, p));
                seq += 1;
            }
            // The offloaded flow (blocked by the bug) — a small share, so
            // admitting it passes the KS filter.
            if round % 4 == 0 {
                let mut p3 = Packet::http(seq, 3, fig1_hosts::H2);
                p3.src_port = 2003;
                workload.push((fig1_hosts::INTERNET, p3));
            }
            seq += 1;
            // Client 1: also offloaded, but *intentionally* blocked — a
            // larger share, so over-permissive repairs fail the filter.
            if round % 2 == 0 {
                let mut p1 = Packet::http(seq, 1, fig1_hosts::H2);
                p1.src_port = 2001;
                workload.push((fig1_hosts::INTERNET, p1));
            }
            seq += 1;
        }
        Scenario {
            id: "Q3".into(),
            query: "H2 is not receiving the offloaded HTTP requests".into(),
            program,
            topology: Arc::new(mpr_sdn::topology::fig1()),
            codec: TupleCodec::five_tuple(),
            seeds: vec![],
            workload,
            symptom: Symptom::Missing(Pattern {
                table: "FlowTable".into(),
                loc: Some(v(3)),
                args: vec![Some(v(3)), Some(v(fig1_hosts::H2)), Some(v(2003)), Some(v(80)), Some(v(2))],
            }),
            effect: Effect::DeliversOn { host: fig1_hosts::H2, port: 80 },
            reference_fix: "Changing Sip > 3 in f1 to Sip > 2".into(),
            budget: SearchBudget { max_candidates: 12, ..SearchBudget::default() },
            cost: CostModel::default(),
            sim: SimConfig::default(),
            language: Language::NDlog,
            op_repairs: true,
        }
    }

    /// **Q4 — forgotten packets** (NICE class). The app installs flow
    /// entries correctly but only sends `PacketOut` for S1 — S2's first
    /// packet of every flow is buffered and lost.
    pub fn q4_forgotten_packets() -> Scenario {
        let program = parse_program(
            "q4-forgotten",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0,1)).
            materialize(PacketOut, event, 2, keys()).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 1.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            e2 PacketOut(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 1.
            ",
        )
        .expect("q4 program parses");
        let mut codec = TupleCodec::fig2();
        codec.packet_out_table = Some("PacketOut".into());
        // One flow of N packets: the buggy program delivers N−1 (the first
        // dies buffered at S2).
        let n = 40u64;
        let workload: Vec<Injection> = (0..n)
            .map(|i| (fig1_hosts::INTERNET, Packet::http(i, 100, fig1_hosts::H1)))
            .collect();
        Scenario {
            id: "Q4".into(),
            query: "The first HTTP packet of each flow is not received".into(),
            program,
            topology: Arc::new(mpr_sdn::topology::fig1()),
            codec,
            seeds: vec![],
            workload,
            symptom: Symptom::Missing(Pattern {
                table: "PacketOut".into(),
                loc: Some(v(2)),
                args: vec![Some(v(80)), None],
            }),
            effect: Effect::DeliversAtLeast { host: fig1_hosts::H1, min: 40 },
            reference_fix: "Copying r5 and replacing head with PacketOut".into(),
            budget: SearchBudget { max_cost: 7, max_candidates: 13, consts_per_site: 3, ..SearchBudget::default() },
            cost: CostModel::default(),
            sim: SimConfig::default(),
            language: Language::NDlog,
            op_repairs: true,
        }
    }

    /// **Q5 — incorrect MAC learning** (HotSDN assertion class). The
    /// learning rule records a wildcard (0) instead of the packet's source
    /// address, so no host is ever learned and no forwarding entry matches.
    pub fn q5_mac_learning() -> Scenario {
        let program = parse_program(
            "q5-maclearning",
            r"
            materialize(PacketIn, event, 6, keys()).
            materialize(FlowTable, infinity, 5, keys(0,1,2,3)).
            materialize(Learned, infinity, 3, keys(0,1)).
            f0 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Swi == 1, Dpt == 53, Prt := 2.
            f1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Swi == 3, Dpt == 53, Prt := 1.
            f2 Learned(@C,Swi,Lip,Lpt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Lip := 0, Lpt := Ipt.
            f3 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Learned(@C,Swi,Dip,Prt).
            ",
        )
        .expect("q5 program parses");
        // Hosts behind S2: H1 (port 1) and the client C30 (port 3 — added
        // below). Pings go back and forth; with learning broken nothing is
        // ever delivered.
        let mut topo = mpr_sdn::topology::fig1();
        topo.add_host(30);
        topo.connect_ports(NodeRef::Switch(2), 3, NodeRef::Host(30), 0);
        let mut workload = Vec::new();
        let mut seq = 0u64;
        for round in 0..40u64 {
            // Background DNS rides the static rules f0/f1 regardless of
            // the learning bug, so the baseline distribution is non-empty
            // and dominates (repairing the small learned flows then passes
            // the KS filter, like the paper's accepted candidates A/G/I).
            for k in 0..12u64 {
                let mut d = Packet::dns(seq, 100, fig1_hosts::DNS);
                d.src_port = 5000 + k as i64;
                workload.push((fig1_hosts::INTERNET, d));
                seq += 1;
            }
            // C30 → H1 then H1 → C30 (so both get learned when fixed).
            if round % 4 == 0 {
                let mut a = Packet::http(seq, 30, fig1_hosts::H1);
                a.src_port = 4000;
                workload.push((30, a));
                seq += 1;
                let mut b = Packet::http(seq, fig1_hosts::H1, 30);
                b.src_port = 4001;
                workload.push((fig1_hosts::H1, b));
                seq += 1;
            }
        }
        Scenario {
            id: "Q5".into(),
            query: "H1's address is never learned by the controller".into(),
            program,
            topology: Arc::new(topo),
            codec: TupleCodec::five_tuple(),
            seeds: vec![],
            workload,
            symptom: Symptom::Missing(Pattern {
                table: "Learned".into(),
                loc: Some(Value::str(C)),
                args: vec![Some(v(2)), Some(v(fig1_hosts::H1)), None],
            }),
            effect: Effect::DeliversOn { host: fig1_hosts::H1, port: 80 },
            reference_fix: "Changing Lip := 0 in f2 to Lip := Sip".into(),
            budget: SearchBudget { max_cost: 7, max_candidates: 9, consts_per_site: 2, ..SearchBudget::default() },
            cost: CostModel::default(),
            sim: SimConfig::default(),
            language: Language::NDlog,
            op_repairs: true,
        }
    }

    /// **Fig. 7 — a harmful flow entry** (positive symptom). The operator
    /// misconfigured the load balancer: HTTP is being offloaded to the
    /// backup even though the primary has capacity. The offending
    /// `FlowTable(@1,80,2)` entry *exists*; repairs must make it disappear
    /// (§4.2): delete/change the `WebLoadBalancer` base tuple, or change a
    /// literal of the deriving rule so this binding no longer fires.
    pub fn fig7_harmful_entry() -> Scenario {
        let program = parse_program(
            "fig7-harmful",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0,1)).
            materialize(WebLoadBalancer, infinity, 2, keys(0)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt), Swi == 1.
            r0 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 1.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 3, Hdr == 80, Prt := 2.
            d1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 53, Prt := 2.
            d3 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 3, Hdr == 53, Prt := 1.
            ",
        )
        .expect("fig7 program parses");
        // DNS background dominates; the hijacked HTTP flow is a small
        // share, so restoring it passes the KS filter.
        let mut workload: Vec<Injection> = Vec::new();
        for i in 0..60u64 {
            for _ in 0..4 {
                workload.push((fig1_hosts::INTERNET, Packet::dns(i * 10, 100, fig1_hosts::DNS)));
            }
            if i % 8 == 0 {
                workload
                    .push((fig1_hosts::INTERNET, Packet::http(i, 100, fig1_hosts::H1)));
            }
        }
        Scenario {
            id: "Fig7".into(),
            query: "HTTP is misrouted to the backup server (harmful flow entry exists)".into(),
            program,
            topology: Arc::new(mpr_sdn::topology::fig1()),
            codec: TupleCodec::fig2(),
            seeds: vec![Tuple::new("WebLoadBalancer", Value::str(C), vec![v(80), v(2)])],
            workload,
            symptom: Symptom::Existing(Tuple::new("FlowTable", v(1), vec![v(80), v(2)])),
            effect: Effect::DeliversOn { host: fig1_hosts::H1, port: 80 },
            reference_fix: "Deleting the WebLoadBalancer tuple".into(),
            budget: SearchBudget::default(),
            cost: CostModel::default(),
            sim: SimConfig::default(),
            language: Language::NDlog,
            op_repairs: true,
        }
    }

    /// All five scenarios in Table 1 order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::q1_copy_paste(),
            Scenario::q2_forwarding_error(),
            Scenario::q3_policy_update(),
            Scenario::q4_forgotten_packets(),
            Scenario::q5_mac_learning(),
        ]
    }

    /// Q1 scaled onto a campus topology with `switches` total switches —
    /// the Fig. 9c scalability sweep. The Fig. 1 fixture is embedded as
    /// switches 1–3 and the campus carries background traffic.
    pub fn q1_on_campus(switches: usize) -> Scenario {
        let mut s = Scenario::q1_copy_paste();
        let params = mpr_sdn::topology::CampusParams::with_total_switches(
            switches.saturating_sub(5).max(1),
        );
        let campus = mpr_sdn::topology::campus(&params);
        // Graft the campus onto S1 and generate background host pairs.
        let mut topo = (*s.topology).clone();
        let base = 200i64;
        for sw in &campus.switches {
            topo.add_switch(base + sw);
        }
        for h in &campus.hosts {
            topo.add_host(base * 10 + h);
        }
        // Recreate campus links under the offset ids.
        for sw in &campus.switches {
            for p in campus.ports(NodeRef::Switch(*sw)) {
                if let Some((peer, _)) = campus.peer(NodeRef::Switch(*sw), p) {
                    let a = NodeRef::Switch(base + sw);
                    let b = match peer {
                        NodeRef::Switch(t) => NodeRef::Switch(base + t),
                        NodeRef::Host(h) => NodeRef::Host(base * 10 + h),
                    };
                    // connect() deduplicates nothing; add each link once.
                    if matches!(peer, NodeRef::Host(_)) || *sw < peer.id() {
                        topo.connect(a, b);
                    }
                }
            }
        }
        topo.connect(NodeRef::Switch(base + 1), NodeRef::Switch(1));
        s.topology = Arc::new(topo);
        // Campus hosts exchange background traffic over proactive routes.
        let hosts: Vec<i64> = s.topology.hosts.iter().copied().filter(|h| *h >= base * 10).collect();
        let mut seq = 5_000_000u64;
        let mut extra = Vec::new();
        for (i, h) in hosts.iter().enumerate() {
            let dst = hosts[(i * 7 + 3) % hosts.len()];
            if dst != *h {
                extra.push((*h, Packet::icmp(seq, *h, dst)));
                seq += 1;
            }
        }
        s.workload.extend(extra);
        s.id = format!("Q1@{switches}sw");
        s
    }

    /// Q1 scaled onto a fat-tree/Clos fabric with roughly `switches` total
    /// switches — the fig9c-XL sweep (169 → 10k). Same construction as
    /// [`Scenario::q1_on_campus`] but over [`mpr_sdn::topology::fat_tree`],
    /// whose host count is capped so the 10k-switch point stays runnable;
    /// background traffic is additionally capped at 1024 flows to keep the
    /// workload size independent of fabric scale.
    pub fn q1_on_fabric(switches: usize) -> Scenario {
        let mut s = Scenario::q1_copy_paste();
        let params = mpr_sdn::topology::FabricParams::with_total_switches(
            switches.saturating_sub(5).max(4),
        );
        let fabric = mpr_sdn::topology::fat_tree(&params);
        // Graft the fabric onto S1 under offset switch ids (fabric host
        // ids already live in their own 10M+ range).
        let mut topo = (*s.topology).clone();
        let base = 100_000i64;
        for sw in &fabric.switches {
            topo.add_switch(base + sw);
        }
        for h in &fabric.hosts {
            topo.add_host(*h);
        }
        for ((a, _ap), (b, _bp)) in fabric.all_links() {
            // The links map holds both directions; add each link once.
            if (a, _ap) < (b, _bp) {
                let off = |n: NodeRef| match n {
                    NodeRef::Switch(t) => NodeRef::Switch(base + t),
                    NodeRef::Host(h) => NodeRef::Host(h),
                };
                topo.connect(off(a), off(b));
            }
        }
        topo.connect(NodeRef::Switch(base + 1), NodeRef::Switch(1));
        s.topology = Arc::new(topo);
        // Fabric hosts exchange background traffic over proactive routes,
        // capped so workload growth doesn't drown the scaling signal.
        let hosts: Vec<i64> =
            s.topology.hosts.iter().copied().filter(|h| *h >= mpr_sdn::topology::fabric_ids::HOST_BASE).collect();
        let mut seq = 6_000_000u64;
        let mut extra = Vec::new();
        for (i, h) in hosts.iter().enumerate().take(1024) {
            let dst = hosts[(i * 7 + 3) % hosts.len()];
            if dst != *h {
                extra.push((*h, Packet::icmp(seq, *h, dst)));
                seq += 1;
            }
        }
        s.workload.extend(extra);
        s.id = format!("Q1@fabric{switches}sw");
        s
    }

    /// Q1 with the program padded to roughly `lines` rules — the Fig. 10
    /// program-size sweep. Padding rules are real policies for inert
    /// switches (high ids), mirroring "policies of an operational zone
    /// switch in the Stanford campus network".
    pub fn q1_padded(lines: usize) -> Scenario {
        let mut s = Scenario::q1_copy_paste();
        let mut src = s.program.to_string();
        let existing = s.program.rules.len();
        for i in 0..lines.saturating_sub(existing) {
            let sw = 1000 + (i as i64 % 400);
            let port = 1 + (i as i64 % 4);
            let dpt = [22, 25, 110, 143, 443, 8080][i % 6];
            src.push_str(&format!(
                "oz{i} FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == {sw}, Hdr == {dpt}, Prt := {port}.\n"
            ));
        }
        s.program = parse_program("q1-padded", &src).expect("padded program parses");
        s.id = format!("Q1@{lines}loc");
        s
    }

    /// The mini-Trema port of a scenario (§5.8): the handler compiles to
    /// NDlog, all repair kinds remain legal. For Q1 the program is the
    /// hand-written port in `mpr-langs`; other scenarios reuse their NDlog
    /// programs under Trema legality (the compiled forms are identical).
    pub fn trema_variant(&self) -> Scenario {
        let mut s = self.clone();
        if self.id == "Q1" {
            let port = mpr_langs::trema::q1_trema();
            s.program = port.compile();
            s.reference_fix = "Changing Swi == 2 in t7 to Swi == 3".into();
        }
        s.id = format!("{}-trema", self.id);
        s.language = Language::Trema;
        s
    }

    /// The mini-Pyretic port (§5.8): `match` admits only equality, so
    /// operator repairs are filtered; Q4 is not expressible (the runtime
    /// sends `PacketOut`s automatically), so `None` is returned for it.
    pub fn pyretic_variant(&self) -> Option<Scenario> {
        if self.id == "Q4" {
            return None; // the Pyretic runtime prevents the bug class
        }
        let mut s = self.clone();
        if self.id == "Q1" {
            let port = mpr_langs::pyretic::q1_pyretic();
            s.program = port.compile();
            s.reference_fix = "Changing Swi == 2 in py3 to Swi == 3".into();
        }
        s.id = format!("{}-pyretic", self.id);
        s.language = Language::Pyretic;
        s.op_repairs = false;
        Some(s)
    }
}

/// Scenario-aware codec helper: which packet fields feed the PacketIn
/// tuple for a scenario (used by examples and docs).
pub fn describe_codec(codec: &TupleCodec) -> String {
    let mut parts = vec!["Swi".to_string()];
    for a in &codec.packet_in_args {
        parts.push(match a {
            PktArg::Field(f) => f.short().to_string(),
            PktArg::InPort => "Ipt".to_string(),
        });
    }
    format!("{}(@C,{})", codec.packet_in_table, parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_parse_and_validate() {
        for s in Scenario::all() {
            assert!(s.program.validate().is_ok(), "{} invalid", s.id);
            assert!(!s.workload.is_empty(), "{} empty workload", s.id);
            assert!(!s.topology.switches.is_empty());
        }
    }

    #[test]
    fn q1_is_broken_as_described() {
        use mpr_backtest::replay::{replay, BacktestSetup};
        let s = Scenario::q1_copy_paste();
        let setup = BacktestSetup {
            topology: s.topology.clone(),
            codec: s.codec.clone(),
            seeds: s.seeds.clone(),
            workload: Arc::new(s.workload.clone()),
            config: s.sim.clone(),
            proactive_routes: false,
            engine: mpr_runtime::Options::default(),
        };
        let out = replay(&setup, &s.program).unwrap();
        // H2 receives nothing (the symptom) …
        assert_eq!(out.stats.delivered_to(fig1_hosts::H2), 0);
        // … while the background edge traffic and DNS flow normally.
        assert!(out.stats.delivered_to(q1_hosts::H30) > 0);
        assert!(out.stats.delivered_to(q1_hosts::H40) > 0);
        assert!(out.stats.delivered_to(fig1_hosts::DNS) > 0);
        assert!(!s.effect.holds(&out.stats));
    }

    #[test]
    fn q1_reference_fix_heals_the_network() {
        use mpr_backtest::replay::{replay, BacktestSetup};
        use mpr_ndlog::patch::{Edit, Patch};
        use mpr_ndlog::{ConstSite, ExprSide};
        let s = Scenario::q1_copy_paste();
        let fixed = Patch::single(Edit::SetConst {
            rule: "r7".into(),
            site: ConstSite::Selection { idx: 0, side: ExprSide::Rhs, path: vec![] },
            value: v(3),
        })
        .apply(&s.program)
        .unwrap();
        let setup = BacktestSetup {
            topology: s.topology.clone(),
            codec: s.codec.clone(),
            seeds: s.seeds.clone(),
            workload: Arc::new(s.workload.clone()),
            config: s.sim.clone(),
            proactive_routes: false,
            engine: mpr_runtime::Options::default(),
        };
        let out = replay(&setup, &fixed).unwrap();
        assert!(out.stats.delivered_on(fig1_hosts::H2, 80) > 0, "{:?}", out.stats.delivered);
        assert!(s.effect.holds(&out.stats));
    }

    #[test]
    fn q4_drops_exactly_the_first_packets() {
        use mpr_backtest::replay::{replay, BacktestSetup};
        let s = Scenario::q4_forgotten_packets();
        let setup = BacktestSetup {
            topology: s.topology.clone(),
            codec: s.codec.clone(),
            seeds: s.seeds.clone(),
            workload: Arc::new(s.workload.clone()),
            config: s.sim.clone(),
            proactive_routes: false,
            engine: mpr_runtime::Options::default(),
        };
        let out = replay(&setup, &s.program).unwrap();
        // 40 packets; S1's PacketOut saves the first at S1, but S2 has no
        // PacketOut rule: exactly one packet lost.
        assert_eq!(out.stats.delivered_to(fig1_hosts::H1), 39);
        assert_eq!(out.stats.dropped_buffered, 1);
        assert!(!s.effect.holds(&out.stats));
    }

    #[test]
    fn q5_learning_is_dead() {
        use mpr_backtest::replay::{replay, BacktestSetup};
        let s = Scenario::q5_mac_learning();
        let setup = BacktestSetup {
            topology: s.topology.clone(),
            codec: s.codec.clone(),
            seeds: s.seeds.clone(),
            workload: Arc::new(s.workload.clone()),
            config: s.sim.clone(),
            proactive_routes: false,
            engine: mpr_runtime::Options::default(),
        };
        let out = replay(&setup, &s.program).unwrap();
        // DNS background flows via the static rules; nothing learned-based
        // is ever delivered (H1 and C30 get zero).
        assert_eq!(out.stats.delivered_to(fig1_hosts::H1), 0);
        assert_eq!(out.stats.delivered_to(30), 0);
        assert!(out.stats.delivered_to(fig1_hosts::DNS) > 0);
    }

    #[test]
    fn scaling_helpers_produce_bigger_worlds() {
        let s19 = Scenario::q1_on_campus(19);
        let s49 = Scenario::q1_on_campus(49);
        assert!(s49.topology.switches.len() > s19.topology.switches.len());
        assert!(s49.workload.len() >= s19.workload.len());

        let p100 = Scenario::q1_padded(100);
        let p500 = Scenario::q1_padded(500);
        assert_eq!(p100.program.rules.len(), 100);
        assert_eq!(p500.program.rules.len(), 500);
        assert!(p500.program.validate().is_ok());
    }

    #[test]
    fn codec_description() {
        let s = Scenario::q2_forwarding_error();
        assert_eq!(describe_codec(&s.codec), "PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt)");
    }
}
