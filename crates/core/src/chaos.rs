//! Chaos search: sweep seeded random fault schedules over the §5.3
//! scenarios, looking for schedules the diagnose → repair → backtest loop
//! cannot recover from.
//!
//! The harness is deterministic end to end: a [`FaultClass`] plus a seed
//! expands to one concrete [`FaultPlan`] via [`random_plan`] (seeded RNG,
//! topology walked in sorted order), and running the same `(scenario,
//! class, seed)` triple twice yields byte-identical [`ChaosOutcome`]s —
//! the property the CI `chaos` job pins.
//!
//! **Recovery** means the full loop ran to completion and still produced
//! repair candidates: no process abort, no panic escaping a worker, a
//! [`RepairReport`] with `generated() > 0`. Acceptance may legitimately
//! drop to zero under heavy faults — a network that eats half its control
//! messages can reject every candidate — and that still counts as
//! graceful degradation, not a survivor. A **survivor** is a schedule
//! where the loop itself breaks: an error return, an escaped panic, or an
//! empty candidate set. Survivors are shrunk by [`minimize`] (greedy
//! delta debugging over the plan's components) and pinned as
//! [`regression_cases`] so they can never silently regress.

use crate::debugger::{try_repair_scenario, RepairReport};
use crate::scenarios::Scenario;
use mpr_backtest::replay::{replay, BacktestSetup};
use mpr_ndlog::Persistence;
use mpr_runtime::{Durability, Options as EngineOptions, Store, WalOptions};
use mpr_sdn::controller::NdlogController;
use mpr_sdn::sim::Simulation;
use mpr_sdn::topology::{NodeRef, Topology};
use mpr_sdn::{CtrlFaults, FaultPlan, LinkFault, SwitchCrash};
use mpr_storage::{MemBackend, StorageBackend, WalBackend, WalConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A family of fault schedules the harness knows how to randomize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// One or two links held down for a contiguous window.
    LinkOutage,
    /// A link flapping up and down through the run.
    LinkFlap,
    /// A switch losing its flow table and going dark, possibly twice.
    SwitchCrash,
    /// Control-channel misbehavior: drop, duplicate, delay, reorder.
    CtrlChaos,
    /// The *controller process itself* dying mid-write and restarting from
    /// its write-ahead log. Unlike the four network classes, this fault
    /// probes durability rather than the data plane, so it has no
    /// [`FaultPlan`] expansion — it is swept by the dedicated
    /// kill-and-restart harness ([`kill_sweep`]), which truncates a
    /// captured WAL at randomized byte offsets and reopens.
    ProcessKill,
}

impl FaultClass {
    /// Every *network* class, in sweep order. [`FaultClass::ProcessKill`]
    /// is deliberately excluded: it is driven by [`kill_sweep`] (byte-level
    /// crash points against the WAL), not by [`sweep`] (fault schedules
    /// against the simulated network).
    pub const ALL: [FaultClass; 4] =
        [FaultClass::LinkOutage, FaultClass::LinkFlap, FaultClass::SwitchCrash, FaultClass::CtrlChaos];

    /// Stable display name (used in tables and artifact keys).
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::LinkOutage => "link-outage",
            FaultClass::LinkFlap => "link-flap",
            FaultClass::SwitchCrash => "switch-crash",
            FaultClass::CtrlChaos => "ctrl-chaos",
            FaultClass::ProcessKill => "process-kill",
        }
    }
}

/// Every undirected link of `topology`, in a deterministic (sorted) order.
/// Walks switch ports only — host-to-host links do not exist — and keeps
/// each link once under `NodeRef`'s `Ord`.
pub fn all_links(topology: &Topology) -> Vec<(NodeRef, NodeRef)> {
    let mut links = Vec::new();
    for &s in &topology.switches {
        let a = NodeRef::Switch(s);
        for port in topology.ports(a) {
            if let Some((b, _)) = topology.peer(a, port) {
                let link = if a <= b { (a, b) } else { (b, a) };
                links.push(link);
            }
        }
    }
    links.sort();
    links.dedup();
    links
}

/// Expand `(class, seed)` into one concrete schedule for `topology`.
/// Deterministic: the same inputs always yield the same plan. Times are
/// chosen inside the first ~200 simulated ticks, which covers the
/// scenario workloads (each injection restarts the clock's event cascade,
/// so early windows hit real traffic).
pub fn random_plan(class: FaultClass, seed: u64, topology: &Topology) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let links = all_links(topology);
    let switches: Vec<i64> = topology.switches.iter().copied().collect();
    let mut plan = FaultPlan { seed, ..FaultPlan::default() };
    match class {
        FaultClass::LinkOutage => {
            let n = 1 + (rng.gen_range(0..2) as usize).min(links.len().saturating_sub(1));
            for k in 0..n {
                let (a, b) = links[(rng.gen_range(0..links.len() as u64) as usize + k) % links.len()];
                let from = rng.gen_range(0..120u64);
                let len = rng.gen_range(10..160u64);
                plan.links.push(LinkFault::down(a, b, from, from + len));
            }
        }
        FaultClass::LinkFlap => {
            let (a, b) = links[rng.gen_range(0..links.len() as u64) as usize];
            let from = rng.gen_range(0..40u64);
            let period = rng.gen_range(2..20u64);
            plan.links.push(LinkFault::flap(a, b, from, from + rng.gen_range(80..240u64), period));
        }
        FaultClass::SwitchCrash => {
            let sw = switches[rng.gen_range(0..switches.len() as u64) as usize];
            let at = rng.gen_range(0..100u64);
            let down_for = rng.gen_range(10..120u64);
            plan.crashes.push(SwitchCrash { switch: sw, at, down_for });
            if rng.gen_range(0..2u64) == 1 && switches.len() > 1 {
                let sw2 = switches[rng.gen_range(0..switches.len() as u64) as usize];
                let at2 = at + down_for + rng.gen_range(5..60u64);
                plan.crashes.push(SwitchCrash { switch: sw2, at: at2, down_for: rng.gen_range(10..80u64) });
            }
        }
        FaultClass::CtrlChaos => {
            plan.ctrl = CtrlFaults {
                drop_chance: rng.gen_range(0..40u64) as f64 / 100.0,
                dup_chance: rng.gen_range(0..30u64) as f64 / 100.0,
                delay_chance: rng.gen_range(0..40u64) as f64 / 100.0,
                delay_min: 1,
                delay_max: rng.gen_range(1..12u64),
                reorder: rng.gen_range(0..2u64) == 1,
            };
        }
        // Process death is not a network schedule; the kill harness injects
        // it at the storage layer instead ([`kill_sweep`]). The healthy
        // network is exactly the point: recovery must be lossless even when
        // nothing else went wrong.
        FaultClass::ProcessKill => {}
    }
    plan
}

/// One `(scenario, class, seed)` probe of the repair loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosOutcome {
    /// Scenario id ("Q1").
    pub scenario: String,
    /// The fault class swept.
    pub class: FaultClass,
    /// The seed that expanded into the plan.
    pub seed: u64,
    /// The concrete schedule that ran.
    pub plan: FaultPlan,
    /// The loop completed and generated candidates.
    pub recovered: bool,
    /// Candidates generated (0 when the loop errored).
    pub generated: usize,
    /// Candidates accepted by backtesting under the faulty network.
    pub accepted: usize,
    /// The candidate search hit its time budget and degraded.
    pub search_timed_out: bool,
    /// The loop's error (or escaped-panic payload) when not recovered.
    pub error: Option<String>,
}

/// Run the full diagnose → repair → backtest loop on `scenario` with
/// `plan` installed in its simulator config. Panics anywhere inside the
/// loop are contained here (the chaos harness must outlive what it
/// probes) and reported as a non-recovery with the panic payload.
pub fn run_under_plan(scenario: &Scenario, plan: &FaultPlan) -> ChaosOutcome {
    let mut s = scenario.clone();
    s.sim.faults = plan.clone();
    let result: Result<Result<RepairReport, String>, String> =
        catch_unwind(AssertUnwindSafe(|| try_repair_scenario(&s))).map_err(|payload| {
            payload
                .downcast_ref::<&str>()
                .map(|m| (*m).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into())
        });
    match result {
        Ok(Ok(report)) => ChaosOutcome {
            scenario: scenario.id.clone(),
            class: FaultClass::CtrlChaos, // overwritten by the sweep; meaningless alone
            seed: plan.seed,
            plan: plan.clone(),
            recovered: report.generated() > 0,
            generated: report.generated(),
            accepted: report.accepted_count(),
            search_timed_out: report.search_timed_out,
            error: (report.generated() == 0).then(|| "no candidates generated".into()),
        },
        Ok(Err(e)) => failure(scenario, plan, format!("loop error: {e}")),
        Err(panic) => failure(scenario, plan, format!("escaped panic: {panic}")),
    }
}

fn failure(scenario: &Scenario, plan: &FaultPlan, error: String) -> ChaosOutcome {
    ChaosOutcome {
        scenario: scenario.id.clone(),
        class: FaultClass::CtrlChaos,
        seed: plan.seed,
        plan: plan.clone(),
        recovered: false,
        generated: 0,
        accepted: 0,
        search_timed_out: false,
        error: Some(error),
    }
}

/// The result of a sweep: one [`ChaosOutcome`] per
/// `(scenario, class, seed)` triple, in sweep order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// All probe outcomes.
    pub outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// Outcomes the loop did not recover from.
    pub fn survivors(&self) -> Vec<&ChaosOutcome> {
        self.outcomes.iter().filter(|o| !o.recovered).collect()
    }

    /// `(recovered, total)` for one fault class across the whole sweep.
    pub fn recovery_rate(&self, class: FaultClass) -> (usize, usize) {
        let of_class: Vec<_> = self.outcomes.iter().filter(|o| o.class == class).collect();
        (of_class.iter().filter(|o| o.recovered).count(), of_class.len())
    }

    /// Plain-text recovery table by fault class (EXPERIMENTS.md shape).
    pub fn render_table(&self) -> String {
        let mut out = format!("{:<14} {:>10} {:>7} {:>9}\n", "fault class", "recovered", "total", "rate");
        for class in FaultClass::ALL {
            let (rec, total) = self.recovery_rate(class);
            if total == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<14} {:>10} {:>7} {:>8.0}%\n",
                class.name(),
                rec,
                total,
                rec as f64 / total as f64 * 100.0
            ));
        }
        out
    }
}

/// Sweep `classes × seeds` over each scenario, running the full repair
/// loop under every expanded schedule. Deterministic: outcomes come back
/// in `(scenario, class, seed)` iteration order and the same inputs give
/// the same report.
pub fn sweep(scenarios: &[Scenario], classes: &[FaultClass], seeds: &[u64]) -> ChaosReport {
    let mut outcomes = Vec::with_capacity(scenarios.len() * classes.len() * seeds.len());
    for scenario in scenarios {
        for &class in classes {
            for &seed in seeds {
                let plan = random_plan(class, seed, &scenario.topology);
                let mut outcome = run_under_plan(scenario, &plan);
                outcome.class = class;
                outcome.seed = seed;
                outcomes.push(outcome);
            }
        }
    }
    ChaosReport { outcomes }
}

/// Greedy delta debugging over a failing plan's components: drop each
/// link fault, each crash, and each control-channel knob in turn; keep
/// the removal whenever `fails` still holds without it. Loops to a
/// fixpoint so later removals can enable earlier ones. The result is the
/// smallest schedule (under this reduction order) that still breaks the
/// predicate — the form worth pinning as a regression scenario.
pub fn minimize_with(plan: &FaultPlan, fails: impl Fn(&FaultPlan) -> bool) -> FaultPlan {
    let mut current = plan.clone();
    loop {
        let mut shrunk = false;
        // Link faults, one at a time.
        for i in (0..current.links.len()).rev() {
            let mut candidate = current.clone();
            candidate.links.remove(i);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
            }
        }
        // Crashes, one at a time.
        for i in (0..current.crashes.len()).rev() {
            let mut candidate = current.clone();
            candidate.crashes.remove(i);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
            }
        }
        // Control-channel knobs, one at a time.
        if !current.ctrl.is_noop() {
            let zeroed: [(&str, fn(&mut CtrlFaults)); 4] = [
                ("drop", |c| c.drop_chance = 0.0),
                ("dup", |c| c.dup_chance = 0.0),
                ("delay", |c| c.delay_chance = 0.0),
                ("reorder", |c| c.reorder = false),
            ];
            for (_, zero) in zeroed {
                let mut candidate = current.clone();
                zero(&mut candidate.ctrl);
                if candidate != current && fails(&candidate) {
                    current = candidate;
                    shrunk = true;
                }
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// [`minimize_with`] against the real repair loop: shrink `plan` while
/// the loop still fails to recover on `scenario`.
pub fn minimize(scenario: &Scenario, plan: &FaultPlan) -> FaultPlan {
    minimize_with(plan, |p| !run_under_plan(scenario, p).recovered)
}

/// A pinned chaos schedule: a scenario plus the exact plan, re-run by the
/// CI `chaos` job forever with its classified outcome frozen.
pub struct RegressionCase {
    /// Stable name (artifact key).
    pub name: &'static str,
    /// The scenario the schedule runs against.
    pub scenario: Scenario,
    /// The pinned schedule.
    pub plan: FaultPlan,
    /// The frozen classification: `true` pins "the loop recovers",
    /// `false` pins "the loop degrades cleanly to a classified
    /// non-recovery" (known-unrecoverable schedules — the loop must still
    /// complete without a panic and record why it produced nothing).
    pub expect_recovered: bool,
}

/// The pinned regression suite: the nastiest schedules the sweeps have
/// produced, minimized and frozen. The recoverable ones each provoked a
/// distinct degraded path while the subsystem was being built — a switch
/// dark through the whole diagnosis window, a flapping first-hop link, a
/// lossy reordering control channel — and the loop must keep recovering
/// from all of them. The unrecoverable ones are genuine survivors of the
/// 320-probe sweep, shrunk by [`minimize`]: kill the ingress link for the
/// whole workload and no packet ever enters the network, so there is no
/// provenance to repair from — the loop must say so instead of dying.
pub fn regression_cases() -> Vec<RegressionCase> {
    let q1 = Scenario::q1_copy_paste();
    let fig7 = Scenario::fig7_harmful_entry();
    let q2 = Scenario::q2_forwarding_error();
    let q4 = Scenario::q4_forgotten_packets();
    vec![
        RegressionCase {
            name: "q1-switch2-dark-through-diagnosis",
            scenario: q1.clone(),
            plan: FaultPlan {
                seed: 7,
                crashes: vec![SwitchCrash { switch: 2, at: 0, down_for: 400 }],
                ..FaultPlan::default()
            },
            expect_recovered: true,
        },
        RegressionCase {
            name: "q1-first-hop-flap",
            scenario: q1,
            plan: FaultPlan {
                seed: 11,
                links: vec![LinkFault::flap(
                    NodeRef::Switch(1),
                    NodeRef::Switch(2),
                    0,
                    300,
                    5,
                )],
                ..FaultPlan::default()
            },
            expect_recovered: true,
        },
        RegressionCase {
            name: "fig7-lossy-reordering-ctrl",
            scenario: fig7,
            plan: FaultPlan {
                seed: 13,
                ctrl: CtrlFaults {
                    drop_chance: 0.5,
                    dup_chance: 0.2,
                    delay_chance: 0.3,
                    delay_min: 1,
                    delay_max: 9,
                    reorder: true,
                },
                ..FaultPlan::default()
            },
            expect_recovered: true,
        },
        RegressionCase {
            name: "q4-double-crash",
            scenario: q4.clone(),
            plan: FaultPlan {
                seed: 17,
                crashes: vec![
                    SwitchCrash { switch: 1, at: 10, down_for: 60 },
                    SwitchCrash { switch: 2, at: 80, down_for: 60 },
                ],
                ..FaultPlan::default()
            },
            expect_recovered: true,
        },
        // Genuine sweep survivors (minimized): with the INTERNET ingress
        // link dead for the full workload, no packet ever reaches a
        // switch, no PacketIn reaches the controller, and the provenance
        // forest is empty — there is nothing to diagnose. Sweep origin:
        // link-outage seed 4.
        RegressionCase {
            name: "q2-ingress-dead-whole-run",
            scenario: q2.clone(),
            plan: FaultPlan {
                seed: 4,
                links: vec![LinkFault::down(NodeRef::Switch(1), NodeRef::Host(100), 0, 146)],
                ..FaultPlan::default()
            },
            expect_recovered: false,
        },
        RegressionCase {
            name: "q4-ingress-dead-whole-run",
            scenario: q4,
            plan: FaultPlan {
                seed: 4,
                links: vec![LinkFault::down(NodeRef::Switch(1), NodeRef::Host(100), 0, 146)],
                ..FaultPlan::default()
            },
            expect_recovered: false,
        },
        // Sweep survivor (minimized from ctrl-chaos seed 1): a control
        // channel dropping ~a third of replies and delaying a sixth
        // starves Q2's diagnosis of the specific PacketIn its symptom
        // query needs. The loop must classify this, not die on it.
        RegressionCase {
            name: "q2-lossy-delaying-ctrl",
            scenario: q2,
            plan: FaultPlan {
                seed: 1,
                ctrl: CtrlFaults {
                    drop_chance: 0.36,
                    dup_chance: 0.06,
                    delay_chance: 0.17,
                    delay_min: 1,
                    delay_max: 8,
                    reorder: false,
                },
                ..FaultPlan::default()
            },
            expect_recovered: false,
        },
    ]
}

// ---------------------------------------------------------------------------
// Kill-and-restart: FaultClass::ProcessKill, injected at the storage layer
// ---------------------------------------------------------------------------

/// Where in the repair loop the process dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KillPhase {
    /// During the observation run: the controller is evaluating the buggy
    /// program to fixpoint against live traffic when the process dies.
    MidFixpoint,
    /// During a backtest replay: a candidate validation run is journaling
    /// when the process dies.
    MidBacktest,
}

impl KillPhase {
    /// Stable display name (artifact keys, tables).
    pub fn name(&self) -> &'static str {
        match self {
            KillPhase::MidFixpoint => "mid-fixpoint",
            KillPhase::MidBacktest => "mid-backtest",
        }
    }
}

/// A full WAL captured from one journaled engine run — the raw material
/// the crash points cut into. `records` is the clean decode of
/// `wal_bytes`, used to build the prefix oracle.
#[derive(Debug, Clone)]
pub struct WalCapture {
    /// Scenario id the engine ran.
    pub scenario: String,
    /// Which loop phase produced the log.
    pub phase: KillPhase,
    /// The raw `wal.0.log` bytes, exactly as the engine left them.
    pub wal_bytes: Vec<u8>,
    /// The journal records framed inside `wal_bytes`, oldest first.
    pub records: Vec<Vec<u8>>,
}

/// Hands each capture / crash probe its own scratch directory, so
/// concurrent test threads never share a log.
static KILL_SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

fn kill_scratch_dir(tag: &str) -> PathBuf {
    let seq = KILL_SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mpr-kill-{}-{tag}-{seq}", std::process::id()))
}

/// Run `scenario` under WAL durability and capture the log the engine
/// wrote. `MidFixpoint` drives the observation run (controller + live
/// simulator); `MidBacktest` drives a backtest replay of the buggy
/// program. `max_injections` truncates the workload (0 = all of it) so
/// sweeps over many crash points stay cheap. Compaction is disabled for
/// the capture: every journaled op stays in `wal.0.log`, giving the crash
/// points a maximal surface to cut.
pub fn capture_wal(
    scenario: &Scenario,
    phase: KillPhase,
    opts: &EngineOptions,
    max_injections: usize,
) -> Result<WalCapture, String> {
    let scratch = kill_scratch_dir(phase.name());
    let mut eopts = opts.clone();
    eopts.record_events = false;
    eopts.durability = Durability::Wal(WalOptions {
        dir: scratch.clone(),
        fsync: false,
        compact_every: 0,
    });
    let workload: Vec<_> = if max_injections == 0 {
        scenario.workload.clone()
    } else {
        scenario.workload.iter().take(max_injections).cloned().collect()
    };
    let run = || -> Result<(), String> {
        match phase {
            KillPhase::MidFixpoint => {
                let mut ctrl = NdlogController::with_options(
                    scenario.program.clone(),
                    scenario.codec.clone(),
                    eopts.clone(),
                )
                .map_err(|e| e.to_string())?;
                ctrl.seed(scenario.seeds.clone()).map_err(|e| e.to_string())?;
                let mut sim = Simulation::new(scenario.topology.clone(), ctrl, scenario.sim.clone());
                for (src, pkt) in &workload {
                    sim.inject(*src, pkt.clone());
                    sim.run();
                }
                if let Some(why) = sim.controller().engine().durability_degraded() {
                    return Err(format!("durability degraded during capture: {why}"));
                }
                Ok(())
            }
            KillPhase::MidBacktest => {
                let setup = BacktestSetup {
                    topology: scenario.topology.clone(),
                    codec: scenario.codec.clone(),
                    seeds: scenario.seeds.clone(),
                    workload: Arc::new(workload),
                    config: scenario.sim.clone(),
                    proactive_routes: false,
                    engine: eopts.clone(),
                };
                replay(&setup, &scenario.program).map(|_| ())
            }
        }
    };
    let result = run();
    let capture = result.and_then(|()| {
        // Exactly one engine journaled under the scratch dir; read its log
        // back and decode the record framing through a clean recovery.
        let mut engine_dirs: Vec<PathBuf> = std::fs::read_dir(&scratch)
            .map_err(|e| format!("scratch dir unreadable: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.is_dir()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("engine-"))
            })
            .collect();
        engine_dirs.sort();
        if engine_dirs.len() != 1 {
            return Err(format!("expected 1 journaled engine, found {}", engine_dirs.len()));
        }
        let dir = engine_dirs.remove(0);
        let wal_bytes =
            std::fs::read(dir.join("wal.0.log")).map_err(|e| format!("read wal.0.log: {e}"))?;
        let mut backend =
            WalBackend::open(WalConfig::new(&dir)).map_err(|e| format!("reopen capture: {e}"))?;
        let recovered = backend.recover().map_err(|e| format!("recover capture: {e}"))?;
        if !recovered.status.is_clean() || recovered.snapshot.is_some() {
            return Err(format!("capture did not reopen clean: {:?}", recovered.status));
        }
        Ok(WalCapture {
            scenario: scenario.id.clone(),
            phase,
            wal_bytes,
            records: recovered.records,
        })
    });
    let _ = std::fs::remove_dir_all(&scratch);
    capture
}

/// One crash point's verdict: the process died after `cut` bytes of the
/// WAL reached disk; the restart recovered `ops_applied` ops and either
/// matched the prefix oracle or didn't.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillOutcome {
    /// Scenario id.
    pub scenario: String,
    /// Loop phase the log was captured from.
    pub phase: KillPhase,
    /// Bytes of the WAL that survived the crash.
    pub cut: u64,
    /// Full length of the captured WAL.
    pub wal_len: u64,
    /// Journal ops the restart replayed.
    pub ops_applied: usize,
    /// The restart reported [`mpr_storage::Recovery::Clean`] (true exactly
    /// when the cut landed on a record-frame boundary).
    pub clean: bool,
    /// The recovered store equals the oracle built from the surviving
    /// whole-record prefix — the property every crash point must hold.
    pub prefix_consistent: bool,
    /// Recovery error or escaped panic, when something went wrong.
    pub error: Option<String>,
}

/// Byte offsets (within `wal_len`) at which whole record frames end —
/// i.e. the cuts a crash can land on and still recover `Clean`.
pub fn frame_boundaries(records: &[Vec<u8>]) -> Vec<u64> {
    let mut at = 0u64;
    let mut bounds = vec![0u64];
    for r in records {
        at += 8 + r.len() as u64; // [len u32][crc32 u32][payload]
        bounds.push(at);
    }
    bounds
}

/// Recover a [`Store`] from the first `cut` bytes of a captured WAL, as a
/// restart after a crash at that exact byte would. Returns the store and
/// its recovery report. Everything happens in a throwaway directory.
fn recover_prefix(
    capture: &WalCapture,
    cut: u64,
) -> Result<(Store, mpr_runtime::StoreRecovery), String> {
    let cut = (cut.min(capture.wal_bytes.len() as u64)) as usize;
    let dir = kill_scratch_dir("crash");
    std::fs::create_dir_all(&dir).map_err(|e| format!("create crash dir: {e}"))?;
    std::fs::write(dir.join("wal.0.log"), &capture.wal_bytes[..cut])
        .map_err(|e| format!("write truncated wal: {e}"))?;
    let result = WalBackend::open(WalConfig::new(&dir))
        .and_then(|mut backend| Store::recover(&mut backend))
        .map_err(|e| e.to_string());
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Kill the process at byte `cut` of the captured WAL and restart: write
/// the surviving prefix to a fresh directory, reopen it through
/// [`WalBackend`] + [`Store::recover`], and compare the recovered store
/// against an oracle that replays exactly the whole records the cut
/// preserved (through [`MemBackend::primed`]). Panics anywhere inside
/// recovery are contained and reported — a crash point must never take
/// the harness down.
pub fn crash_at(capture: &WalCapture, cut: u64) -> KillOutcome {
    let wal_len = capture.wal_bytes.len() as u64;
    let cut = cut.min(wal_len);
    let whole_frames = frame_boundaries(&capture.records).iter().filter(|&&b| b <= cut).count() - 1;
    let probe = catch_unwind(AssertUnwindSafe(|| -> Result<(bool, usize, bool), String> {
        let (store, recovery) = recover_prefix(capture, cut)?;
        let mut oracle_backend =
            MemBackend::primed(None, capture.records[..whole_frames.min(capture.records.len())].to_vec());
        let (oracle, _) = Store::recover(&mut oracle_backend).map_err(|e| e.to_string())?;
        let consistent =
            recovery.ops_applied == whole_frames && store.dump() == oracle.dump();
        Ok((recovery.status.is_clean(), recovery.ops_applied, consistent))
    }));
    let base = KillOutcome {
        scenario: capture.scenario.clone(),
        phase: capture.phase,
        cut,
        wal_len,
        ops_applied: 0,
        clean: false,
        prefix_consistent: false,
        error: None,
    };
    match probe {
        Ok(Ok((clean, ops_applied, prefix_consistent))) => KillOutcome {
            ops_applied,
            clean,
            prefix_consistent,
            ..base
        },
        Ok(Err(e)) => KillOutcome { error: Some(format!("recovery error: {e}")), ..base },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|m| (*m).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            KillOutcome { error: Some(format!("escaped panic: {msg}")), ..base }
        }
    }
}

/// `n` deterministic crash positions as parts-per-million of the WAL
/// length. Seeded independently of [`random_plan`] so the two sweeps
/// don't correlate.
pub fn random_kill_points(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);
    (0..n).map(|_| rng.gen_range(0..=1_000_000u64)).collect()
}

/// The result of a kill sweep: one [`KillOutcome`] per crash point, in
/// `(scenario, phase, cut)` order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillReport {
    /// All crash-point outcomes.
    pub outcomes: Vec<KillOutcome>,
}

impl KillReport {
    /// Crash points that failed: recovery errored, panicked, or produced a
    /// state diverging from the surviving-prefix oracle.
    pub fn failures(&self) -> Vec<&KillOutcome> {
        self.outcomes.iter().filter(|o| o.error.is_some() || !o.prefix_consistent).collect()
    }

    /// Plain-text summary by scenario and phase (EXPERIMENTS.md shape).
    pub fn render_table(&self) -> String {
        let mut rows: std::collections::BTreeMap<(String, &'static str), (usize, usize)> =
            std::collections::BTreeMap::new();
        for o in &self.outcomes {
            let row = rows.entry((o.scenario.clone(), o.phase.name())).or_default();
            row.1 += 1;
            if o.error.is_none() && o.prefix_consistent {
                row.0 += 1;
            }
        }
        let mut out =
            format!("{:<10} {:<14} {:>10} {:>7}\n", "scenario", "phase", "consistent", "total");
        for ((scenario, phase), (ok, total)) in rows {
            out.push_str(&format!("{scenario:<10} {phase:<14} {ok:>10} {total:>7}\n"));
        }
        out
    }
}

/// Sweep crash points over every `(scenario, phase)` pair: capture one
/// WAL per pair, then kill-and-restart at `cuts_per_phase` randomized
/// byte offsets plus the two endpoints (nothing persisted / everything
/// persisted). Deterministic for fixed inputs. Errors if a capture run
/// itself fails — the harness refuses to sweep a log it couldn't verify.
pub fn kill_sweep(
    scenarios: &[Scenario],
    opts: &EngineOptions,
    cuts_per_phase: usize,
    seed: u64,
    max_injections: usize,
) -> Result<KillReport, String> {
    let mut outcomes = Vec::new();
    for scenario in scenarios {
        for phase in [KillPhase::MidFixpoint, KillPhase::MidBacktest] {
            let capture = capture_wal(scenario, phase, opts, max_injections)
                .map_err(|e| format!("{} {} capture: {e}", scenario.id, phase.name()))?;
            let len = capture.wal_bytes.len() as u64;
            let mut cuts = vec![0u64, len];
            cuts.extend(
                random_kill_points(seed ^ len, cuts_per_phase)
                    .into_iter()
                    .map(|ppm| len.saturating_mul(ppm) / 1_000_000),
            );
            for cut in cuts {
                outcomes.push(crash_at(&capture, cut));
            }
        }
    }
    Ok(KillReport { outcomes })
}

/// Restart *and resume*: recover the store from the surviving prefix of a
/// crashed run, fold the recovered durable state back into the scenario's
/// seeds, and drive the full diagnose → repair → backtest loop from
/// there. Only `State`-persistence tuples carry over — event tuples are
/// consumed by design and a restart must not replay them as fresh
/// stimuli. This is the end-to-end property [`FaultClass::ProcessKill`]
/// pins: a kill at any WAL offset leaves the loop able to converge again.
pub fn restart_repair(
    scenario: &Scenario,
    capture: &WalCapture,
    cut: u64,
) -> Result<RepairReport, String> {
    let (store, _recovery) = recover_prefix(capture, cut)?;
    let mut resumed = scenario.clone();
    for tuple in store.base_tuples() {
        let is_state = scenario
            .program
            .catalog
            .get(&tuple.table)
            .is_some_and(|s| s.persistence == Persistence::State);
        if is_state && !resumed.seeds.contains(&tuple) {
            resumed.seeds.push(tuple);
        }
    }
    try_repair_scenario(&resumed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_sdn::topology::fig1;

    #[test]
    fn plans_are_deterministic_per_class_and_seed() {
        let topo = fig1();
        for class in FaultClass::ALL {
            for seed in 0..16 {
                assert_eq!(
                    random_plan(class, seed, &topo),
                    random_plan(class, seed, &topo),
                    "{} seed {seed} not deterministic",
                    class.name()
                );
            }
        }
    }

    #[test]
    fn plans_differ_across_seeds() {
        let topo = fig1();
        let distinct: std::collections::BTreeSet<String> = (0..8)
            .map(|s| format!("{:?}", random_plan(FaultClass::SwitchCrash, s, &topo)))
            .collect();
        assert!(distinct.len() > 4, "seeds barely vary the plan: {}", distinct.len());
    }

    #[test]
    fn every_class_produces_a_nonempty_plan() {
        let topo = fig1();
        for class in FaultClass::ALL {
            let plan = random_plan(class, 3, &topo);
            assert!(!plan.is_empty(), "{} expanded to an empty plan", class.name());
        }
    }

    #[test]
    fn all_links_enumerates_fig1_in_sorted_order() {
        let links = all_links(&fig1());
        // fig1: 3 switch-switch + 4 host attachments = 7 undirected links.
        assert_eq!(links.len(), 7);
        let mut sorted = links.clone();
        sorted.sort();
        assert_eq!(links, sorted);
    }

    #[test]
    fn minimize_with_shrinks_to_the_failing_core() {
        // Synthetic predicate: the failure needs the switch-2 crash, and
        // only that. Everything else must be shaved off.
        let topo = fig1();
        let mut plan = random_plan(FaultClass::CtrlChaos, 5, &topo);
        plan.crashes.push(SwitchCrash { switch: 2, at: 3, down_for: 50 });
        plan.crashes.push(SwitchCrash { switch: 3, at: 60, down_for: 20 });
        plan.links.push(LinkFault::down(NodeRef::Switch(1), NodeRef::Switch(2), 5, 25));
        let fails = |p: &FaultPlan| p.crashes.iter().any(|c| c.switch == 2);
        let min = minimize_with(&plan, fails);
        assert_eq!(min.crashes, vec![SwitchCrash { switch: 2, at: 3, down_for: 50 }]);
        assert!(min.links.is_empty());
        assert!(min.ctrl.is_noop());
    }
}
