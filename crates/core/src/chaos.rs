//! Chaos search: sweep seeded random fault schedules over the §5.3
//! scenarios, looking for schedules the diagnose → repair → backtest loop
//! cannot recover from.
//!
//! The harness is deterministic end to end: a [`FaultClass`] plus a seed
//! expands to one concrete [`FaultPlan`] via [`random_plan`] (seeded RNG,
//! topology walked in sorted order), and running the same `(scenario,
//! class, seed)` triple twice yields byte-identical [`ChaosOutcome`]s —
//! the property the CI `chaos` job pins.
//!
//! **Recovery** means the full loop ran to completion and still produced
//! repair candidates: no process abort, no panic escaping a worker, a
//! [`RepairReport`] with `generated() > 0`. Acceptance may legitimately
//! drop to zero under heavy faults — a network that eats half its control
//! messages can reject every candidate — and that still counts as
//! graceful degradation, not a survivor. A **survivor** is a schedule
//! where the loop itself breaks: an error return, an escaped panic, or an
//! empty candidate set. Survivors are shrunk by [`minimize`] (greedy
//! delta debugging over the plan's components) and pinned as
//! [`regression_cases`] so they can never silently regress.

use crate::debugger::{try_repair_scenario, RepairReport};
use crate::scenarios::Scenario;
use mpr_sdn::topology::{NodeRef, Topology};
use mpr_sdn::{CtrlFaults, FaultPlan, LinkFault, SwitchCrash};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A family of fault schedules the harness knows how to randomize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// One or two links held down for a contiguous window.
    LinkOutage,
    /// A link flapping up and down through the run.
    LinkFlap,
    /// A switch losing its flow table and going dark, possibly twice.
    SwitchCrash,
    /// Control-channel misbehavior: drop, duplicate, delay, reorder.
    CtrlChaos,
}

impl FaultClass {
    /// Every class, in sweep order.
    pub const ALL: [FaultClass; 4] =
        [FaultClass::LinkOutage, FaultClass::LinkFlap, FaultClass::SwitchCrash, FaultClass::CtrlChaos];

    /// Stable display name (used in tables and artifact keys).
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::LinkOutage => "link-outage",
            FaultClass::LinkFlap => "link-flap",
            FaultClass::SwitchCrash => "switch-crash",
            FaultClass::CtrlChaos => "ctrl-chaos",
        }
    }
}

/// Every undirected link of `topology`, in a deterministic (sorted) order.
/// Walks switch ports only — host-to-host links do not exist — and keeps
/// each link once under `NodeRef`'s `Ord`.
pub fn all_links(topology: &Topology) -> Vec<(NodeRef, NodeRef)> {
    let mut links = Vec::new();
    for &s in &topology.switches {
        let a = NodeRef::Switch(s);
        for port in topology.ports(a) {
            if let Some((b, _)) = topology.peer(a, port) {
                let link = if a <= b { (a, b) } else { (b, a) };
                links.push(link);
            }
        }
    }
    links.sort();
    links.dedup();
    links
}

/// Expand `(class, seed)` into one concrete schedule for `topology`.
/// Deterministic: the same inputs always yield the same plan. Times are
/// chosen inside the first ~200 simulated ticks, which covers the
/// scenario workloads (each injection restarts the clock's event cascade,
/// so early windows hit real traffic).
pub fn random_plan(class: FaultClass, seed: u64, topology: &Topology) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let links = all_links(topology);
    let switches: Vec<i64> = topology.switches.iter().copied().collect();
    let mut plan = FaultPlan { seed, ..FaultPlan::default() };
    match class {
        FaultClass::LinkOutage => {
            let n = 1 + (rng.gen_range(0..2) as usize).min(links.len().saturating_sub(1));
            for k in 0..n {
                let (a, b) = links[(rng.gen_range(0..links.len() as u64) as usize + k) % links.len()];
                let from = rng.gen_range(0..120u64);
                let len = rng.gen_range(10..160u64);
                plan.links.push(LinkFault::down(a, b, from, from + len));
            }
        }
        FaultClass::LinkFlap => {
            let (a, b) = links[rng.gen_range(0..links.len() as u64) as usize];
            let from = rng.gen_range(0..40u64);
            let period = rng.gen_range(2..20u64);
            plan.links.push(LinkFault::flap(a, b, from, from + rng.gen_range(80..240u64), period));
        }
        FaultClass::SwitchCrash => {
            let sw = switches[rng.gen_range(0..switches.len() as u64) as usize];
            let at = rng.gen_range(0..100u64);
            let down_for = rng.gen_range(10..120u64);
            plan.crashes.push(SwitchCrash { switch: sw, at, down_for });
            if rng.gen_range(0..2u64) == 1 && switches.len() > 1 {
                let sw2 = switches[rng.gen_range(0..switches.len() as u64) as usize];
                let at2 = at + down_for + rng.gen_range(5..60u64);
                plan.crashes.push(SwitchCrash { switch: sw2, at: at2, down_for: rng.gen_range(10..80u64) });
            }
        }
        FaultClass::CtrlChaos => {
            plan.ctrl = CtrlFaults {
                drop_chance: rng.gen_range(0..40u64) as f64 / 100.0,
                dup_chance: rng.gen_range(0..30u64) as f64 / 100.0,
                delay_chance: rng.gen_range(0..40u64) as f64 / 100.0,
                delay_min: 1,
                delay_max: rng.gen_range(1..12u64),
                reorder: rng.gen_range(0..2u64) == 1,
            };
        }
    }
    plan
}

/// One `(scenario, class, seed)` probe of the repair loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosOutcome {
    /// Scenario id ("Q1").
    pub scenario: String,
    /// The fault class swept.
    pub class: FaultClass,
    /// The seed that expanded into the plan.
    pub seed: u64,
    /// The concrete schedule that ran.
    pub plan: FaultPlan,
    /// The loop completed and generated candidates.
    pub recovered: bool,
    /// Candidates generated (0 when the loop errored).
    pub generated: usize,
    /// Candidates accepted by backtesting under the faulty network.
    pub accepted: usize,
    /// The candidate search hit its time budget and degraded.
    pub search_timed_out: bool,
    /// The loop's error (or escaped-panic payload) when not recovered.
    pub error: Option<String>,
}

/// Run the full diagnose → repair → backtest loop on `scenario` with
/// `plan` installed in its simulator config. Panics anywhere inside the
/// loop are contained here (the chaos harness must outlive what it
/// probes) and reported as a non-recovery with the panic payload.
pub fn run_under_plan(scenario: &Scenario, plan: &FaultPlan) -> ChaosOutcome {
    let mut s = scenario.clone();
    s.sim.faults = plan.clone();
    let result: Result<Result<RepairReport, String>, String> =
        catch_unwind(AssertUnwindSafe(|| try_repair_scenario(&s))).map_err(|payload| {
            payload
                .downcast_ref::<&str>()
                .map(|m| (*m).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into())
        });
    match result {
        Ok(Ok(report)) => ChaosOutcome {
            scenario: scenario.id.clone(),
            class: FaultClass::CtrlChaos, // overwritten by the sweep; meaningless alone
            seed: plan.seed,
            plan: plan.clone(),
            recovered: report.generated() > 0,
            generated: report.generated(),
            accepted: report.accepted_count(),
            search_timed_out: report.search_timed_out,
            error: (report.generated() == 0).then(|| "no candidates generated".into()),
        },
        Ok(Err(e)) => failure(scenario, plan, format!("loop error: {e}")),
        Err(panic) => failure(scenario, plan, format!("escaped panic: {panic}")),
    }
}

fn failure(scenario: &Scenario, plan: &FaultPlan, error: String) -> ChaosOutcome {
    ChaosOutcome {
        scenario: scenario.id.clone(),
        class: FaultClass::CtrlChaos,
        seed: plan.seed,
        plan: plan.clone(),
        recovered: false,
        generated: 0,
        accepted: 0,
        search_timed_out: false,
        error: Some(error),
    }
}

/// The result of a sweep: one [`ChaosOutcome`] per
/// `(scenario, class, seed)` triple, in sweep order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// All probe outcomes.
    pub outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// Outcomes the loop did not recover from.
    pub fn survivors(&self) -> Vec<&ChaosOutcome> {
        self.outcomes.iter().filter(|o| !o.recovered).collect()
    }

    /// `(recovered, total)` for one fault class across the whole sweep.
    pub fn recovery_rate(&self, class: FaultClass) -> (usize, usize) {
        let of_class: Vec<_> = self.outcomes.iter().filter(|o| o.class == class).collect();
        (of_class.iter().filter(|o| o.recovered).count(), of_class.len())
    }

    /// Plain-text recovery table by fault class (EXPERIMENTS.md shape).
    pub fn render_table(&self) -> String {
        let mut out = format!("{:<14} {:>10} {:>7} {:>9}\n", "fault class", "recovered", "total", "rate");
        for class in FaultClass::ALL {
            let (rec, total) = self.recovery_rate(class);
            if total == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<14} {:>10} {:>7} {:>8.0}%\n",
                class.name(),
                rec,
                total,
                rec as f64 / total as f64 * 100.0
            ));
        }
        out
    }
}

/// Sweep `classes × seeds` over each scenario, running the full repair
/// loop under every expanded schedule. Deterministic: outcomes come back
/// in `(scenario, class, seed)` iteration order and the same inputs give
/// the same report.
pub fn sweep(scenarios: &[Scenario], classes: &[FaultClass], seeds: &[u64]) -> ChaosReport {
    let mut outcomes = Vec::with_capacity(scenarios.len() * classes.len() * seeds.len());
    for scenario in scenarios {
        for &class in classes {
            for &seed in seeds {
                let plan = random_plan(class, seed, &scenario.topology);
                let mut outcome = run_under_plan(scenario, &plan);
                outcome.class = class;
                outcome.seed = seed;
                outcomes.push(outcome);
            }
        }
    }
    ChaosReport { outcomes }
}

/// Greedy delta debugging over a failing plan's components: drop each
/// link fault, each crash, and each control-channel knob in turn; keep
/// the removal whenever `fails` still holds without it. Loops to a
/// fixpoint so later removals can enable earlier ones. The result is the
/// smallest schedule (under this reduction order) that still breaks the
/// predicate — the form worth pinning as a regression scenario.
pub fn minimize_with(plan: &FaultPlan, fails: impl Fn(&FaultPlan) -> bool) -> FaultPlan {
    let mut current = plan.clone();
    loop {
        let mut shrunk = false;
        // Link faults, one at a time.
        for i in (0..current.links.len()).rev() {
            let mut candidate = current.clone();
            candidate.links.remove(i);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
            }
        }
        // Crashes, one at a time.
        for i in (0..current.crashes.len()).rev() {
            let mut candidate = current.clone();
            candidate.crashes.remove(i);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
            }
        }
        // Control-channel knobs, one at a time.
        if !current.ctrl.is_noop() {
            let zeroed: [(&str, fn(&mut CtrlFaults)); 4] = [
                ("drop", |c| c.drop_chance = 0.0),
                ("dup", |c| c.dup_chance = 0.0),
                ("delay", |c| c.delay_chance = 0.0),
                ("reorder", |c| c.reorder = false),
            ];
            for (_, zero) in zeroed {
                let mut candidate = current.clone();
                zero(&mut candidate.ctrl);
                if candidate != current && fails(&candidate) {
                    current = candidate;
                    shrunk = true;
                }
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// [`minimize_with`] against the real repair loop: shrink `plan` while
/// the loop still fails to recover on `scenario`.
pub fn minimize(scenario: &Scenario, plan: &FaultPlan) -> FaultPlan {
    minimize_with(plan, |p| !run_under_plan(scenario, p).recovered)
}

/// A pinned chaos schedule: a scenario plus the exact plan, re-run by the
/// CI `chaos` job forever with its classified outcome frozen.
pub struct RegressionCase {
    /// Stable name (artifact key).
    pub name: &'static str,
    /// The scenario the schedule runs against.
    pub scenario: Scenario,
    /// The pinned schedule.
    pub plan: FaultPlan,
    /// The frozen classification: `true` pins "the loop recovers",
    /// `false` pins "the loop degrades cleanly to a classified
    /// non-recovery" (known-unrecoverable schedules — the loop must still
    /// complete without a panic and record why it produced nothing).
    pub expect_recovered: bool,
}

/// The pinned regression suite: the nastiest schedules the sweeps have
/// produced, minimized and frozen. The recoverable ones each provoked a
/// distinct degraded path while the subsystem was being built — a switch
/// dark through the whole diagnosis window, a flapping first-hop link, a
/// lossy reordering control channel — and the loop must keep recovering
/// from all of them. The unrecoverable ones are genuine survivors of the
/// 320-probe sweep, shrunk by [`minimize`]: kill the ingress link for the
/// whole workload and no packet ever enters the network, so there is no
/// provenance to repair from — the loop must say so instead of dying.
pub fn regression_cases() -> Vec<RegressionCase> {
    let q1 = Scenario::q1_copy_paste();
    let fig7 = Scenario::fig7_harmful_entry();
    let q2 = Scenario::q2_forwarding_error();
    let q4 = Scenario::q4_forgotten_packets();
    vec![
        RegressionCase {
            name: "q1-switch2-dark-through-diagnosis",
            scenario: q1.clone(),
            plan: FaultPlan {
                seed: 7,
                crashes: vec![SwitchCrash { switch: 2, at: 0, down_for: 400 }],
                ..FaultPlan::default()
            },
            expect_recovered: true,
        },
        RegressionCase {
            name: "q1-first-hop-flap",
            scenario: q1,
            plan: FaultPlan {
                seed: 11,
                links: vec![LinkFault::flap(
                    NodeRef::Switch(1),
                    NodeRef::Switch(2),
                    0,
                    300,
                    5,
                )],
                ..FaultPlan::default()
            },
            expect_recovered: true,
        },
        RegressionCase {
            name: "fig7-lossy-reordering-ctrl",
            scenario: fig7,
            plan: FaultPlan {
                seed: 13,
                ctrl: CtrlFaults {
                    drop_chance: 0.5,
                    dup_chance: 0.2,
                    delay_chance: 0.3,
                    delay_min: 1,
                    delay_max: 9,
                    reorder: true,
                },
                ..FaultPlan::default()
            },
            expect_recovered: true,
        },
        RegressionCase {
            name: "q4-double-crash",
            scenario: q4.clone(),
            plan: FaultPlan {
                seed: 17,
                crashes: vec![
                    SwitchCrash { switch: 1, at: 10, down_for: 60 },
                    SwitchCrash { switch: 2, at: 80, down_for: 60 },
                ],
                ..FaultPlan::default()
            },
            expect_recovered: true,
        },
        // Genuine sweep survivors (minimized): with the INTERNET ingress
        // link dead for the full workload, no packet ever reaches a
        // switch, no PacketIn reaches the controller, and the provenance
        // forest is empty — there is nothing to diagnose. Sweep origin:
        // link-outage seed 4.
        RegressionCase {
            name: "q2-ingress-dead-whole-run",
            scenario: q2.clone(),
            plan: FaultPlan {
                seed: 4,
                links: vec![LinkFault::down(NodeRef::Switch(1), NodeRef::Host(100), 0, 146)],
                ..FaultPlan::default()
            },
            expect_recovered: false,
        },
        RegressionCase {
            name: "q4-ingress-dead-whole-run",
            scenario: q4,
            plan: FaultPlan {
                seed: 4,
                links: vec![LinkFault::down(NodeRef::Switch(1), NodeRef::Host(100), 0, 146)],
                ..FaultPlan::default()
            },
            expect_recovered: false,
        },
        // Sweep survivor (minimized from ctrl-chaos seed 1): a control
        // channel dropping ~a third of replies and delaying a sixth
        // starves Q2's diagnosis of the specific PacketIn its symptom
        // query needs. The loop must classify this, not die on it.
        RegressionCase {
            name: "q2-lossy-delaying-ctrl",
            scenario: q2,
            plan: FaultPlan {
                seed: 1,
                ctrl: CtrlFaults {
                    drop_chance: 0.36,
                    dup_chance: 0.06,
                    delay_chance: 0.17,
                    delay_min: 1,
                    delay_max: 8,
                    reorder: false,
                },
                ..FaultPlan::default()
            },
            expect_recovered: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_sdn::topology::fig1;

    #[test]
    fn plans_are_deterministic_per_class_and_seed() {
        let topo = fig1();
        for class in FaultClass::ALL {
            for seed in 0..16 {
                assert_eq!(
                    random_plan(class, seed, &topo),
                    random_plan(class, seed, &topo),
                    "{} seed {seed} not deterministic",
                    class.name()
                );
            }
        }
    }

    #[test]
    fn plans_differ_across_seeds() {
        let topo = fig1();
        let distinct: std::collections::BTreeSet<String> = (0..8)
            .map(|s| format!("{:?}", random_plan(FaultClass::SwitchCrash, s, &topo)))
            .collect();
        assert!(distinct.len() > 4, "seeds barely vary the plan: {}", distinct.len());
    }

    #[test]
    fn every_class_produces_a_nonempty_plan() {
        let topo = fig1();
        for class in FaultClass::ALL {
            let plan = random_plan(class, 3, &topo);
            assert!(!plan.is_empty(), "{} expanded to an empty plan", class.name());
        }
    }

    #[test]
    fn all_links_enumerates_fig1_in_sorted_order() {
        let links = all_links(&fig1());
        // fig1: 3 switch-switch + 4 host attachments = 7 undirected links.
        assert_eq!(links.len(), 7);
        let mut sorted = links.clone();
        sorted.sort();
        assert_eq!(links, sorted);
    }

    #[test]
    fn minimize_with_shrinks_to_the_failing_core() {
        // Synthetic predicate: the failure needs the switch-2 crash, and
        // only that. Everything else must be shaved off.
        let topo = fig1();
        let mut plan = random_plan(FaultClass::CtrlChaos, 5, &topo);
        plan.crashes.push(SwitchCrash { switch: 2, at: 3, down_for: 50 });
        plan.crashes.push(SwitchCrash { switch: 3, at: 60, down_for: 20 });
        plan.links.push(LinkFault::down(NodeRef::Switch(1), NodeRef::Switch(2), 5, 25));
        let fails = |p: &FaultPlan| p.crashes.iter().any(|c| c.switch == 2);
        let min = minimize_with(&plan, fails);
        assert_eq!(min.crashes, vec![SwitchCrash { switch: 2, at: 3, down_for: 50 }]);
        assert!(min.links.is_empty());
        assert!(min.ctrl.is_noop());
    }
}
