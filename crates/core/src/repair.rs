//! Repair candidates — the output of the meta provenance search.

use mpr_ndlog::{Patch, Program, Tuple};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Repair {
    /// A program patch (most repairs).
    Patch(Patch),
    /// A base-tuple insertion — "manually installing a flow entry"
    /// (Table 2 candidate A) or a manual learning-table entry (Table 6d
    /// candidate I). The tuple is fed to the controller as configuration
    /// state, or pre-installed as a flow entry when it names the flow
    /// table.
    InsertTuple(Tuple),
    /// A base-tuple deletion (positive symptoms, Fig. 5's DELETETUPLE).
    DeleteTuple(Tuple),
    /// A base-tuple change found by symbolic propagation plus negation
    /// (§4.2's CHANGETUPLE).
    ChangeTuple {
        /// The existing tuple.
        from: Tuple,
        /// Its replacement.
        to: Tuple,
    },
}

impl Repair {
    /// The patched program (for [`Repair::InsertTuple`] the program is
    /// unchanged).
    pub fn apply(&self, base: &Program) -> Result<Program, mpr_ndlog::PatchError> {
        match self {
            Repair::Patch(p) => p.apply(base),
            _ => Ok(base.clone()),
        }
    }

    /// The extra seed tuple, if this is an insertion repair.
    pub fn inserted_tuple(&self) -> Option<&Tuple> {
        match self {
            Repair::InsertTuple(t) => Some(t),
            _ => None,
        }
    }

    /// Transform a seed-tuple set according to this repair (insertion adds,
    /// deletion removes, change replaces; patches leave seeds alone).
    pub fn adjust_seeds(&self, seeds: &mut Vec<Tuple>) {
        match self {
            Repair::Patch(_) => {}
            Repair::InsertTuple(t) => seeds.push(t.clone()),
            Repair::DeleteTuple(t) => seeds.retain(|s| s != t),
            Repair::ChangeTuple { from, to } => {
                seeds.retain(|s| s != from);
                seeds.push(to.clone());
            }
        }
    }
}

/// A repair candidate with its plausibility cost and the meta-provenance
/// path that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Candidate {
    /// The repair.
    pub repair: Repair,
    /// Cost under the [`crate::cost::CostModel`] (lower = more plausible).
    pub cost: u32,
    /// Human-readable description in the paper's Table 2 style.
    pub description: String,
    /// The meta provenance tree that yielded this candidate, rendered as
    /// indented text (root first) — the Fig. 6 view.
    pub trace: Vec<String>,
}

impl Candidate {
    /// Render the meta provenance tree.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for (i, line) in self.trace.iter().enumerate() {
            for _ in 0..i {
                out.push_str("  ");
            }
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[cost {}] {}", self.cost, self.description)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::patch::Edit;
    use mpr_ndlog::{parse_program, Value};

    #[test]
    fn patch_repairs_apply() {
        let p = parse_program(
            "t",
            "r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Prt := 2.",
        )
        .unwrap();
        let r = Repair::Patch(Patch::single(Edit::SetSelectionOp {
            rule: "r7".into(),
            sel: 0,
            op: mpr_ndlog::CmpOp::Ne,
        }));
        let out = r.apply(&p).unwrap();
        assert_eq!(out.rule("r7").unwrap().sels[0].op, mpr_ndlog::CmpOp::Ne);
        assert!(r.inserted_tuple().is_none());
    }

    #[test]
    fn insert_repairs_leave_program_alone() {
        let p = parse_program(
            "t",
            "r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Prt := 2.",
        )
        .unwrap();
        let t = Tuple::new("FlowTable", 3i64, vec![Value::Int(80), Value::Int(2)]);
        let r = Repair::InsertTuple(t.clone());
        assert_eq!(r.apply(&p).unwrap(), p);
        assert_eq!(r.inserted_tuple(), Some(&t));
    }

    #[test]
    fn candidate_rendering() {
        let c = Candidate {
            repair: Repair::InsertTuple(Tuple::new("FlowTable", 3i64, vec![Value::Int(80)])),
            cost: 3,
            description: "Manually installing a flow entry".into(),
            trace: vec![
                "NEXIST[Tuple(L=S3, Tab=FlowTable, 80, 2)]".into(),
                "NEXIST[Base(FlowTable, 80, 2)]".into(),
            ],
        };
        assert_eq!(c.to_string(), "[cost 3] Manually installing a flow entry");
        let t = c.render_trace();
        assert!(t.starts_with("NEXIST[Tuple"));
        assert!(t.contains("\n  NEXIST[Base"));
    }
}
