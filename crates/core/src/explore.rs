//! The meta provenance explorer: cost-ordered repair-candidate generation
//! (§3.3–§3.5, §4, Fig. 5/Fig. 17).
//!
//! For a **missing** tuple (negative symptom), the explorer forks one meta
//! provenance tree per rule that could derive the goal table (§3.3) and,
//! inside each tree, per recorded trigger event. Expanding a tree collects
//! a constraint pool (§3.4): the join must hold, the head must equal the
//! goal, and every selection must pass. Program-based meta tuples that
//! block a derivation (a `Const`, an `Oper`, a `Sel`, an `Assign`) become
//! candidate *changes*, costed by the [`CostModel`]; the pool is solved by
//! `mpr-solver` to obtain concrete replacement values — exactly the
//! `Const(Rul=r7, ID=2, Val=3)` leaf of Fig. 6.
//!
//! For an **existing** tuple (positive symptom, Fig. 7), the explorer walks
//! the recorded derivations, re-executes them symbolically, negates the
//! collected constraints, and emits base-tuple deletions/changes plus
//! rule-literal changes that break the derivation (§4.2).

use crate::cost::{CostModel, SearchBudget};
use crate::repair::{Candidate, Repair};
use mpr_ndlog::ast::{CmpOp, ConstSite, Expr, ExprSide, Term};
use mpr_ndlog::eval::{Env, PureFuncs};
use mpr_ndlog::patch::{Edit, Patch};
use mpr_ndlog::{Program, Rule, Selection, Tuple, Value};
use mpr_provenance::Pattern;
use mpr_runtime::engine::{instantiate, match_atom};
use std::collections::{BTreeMap, BTreeSet};

/// Everything the explorer sees about the (logged) world.
#[derive(Debug, Clone)]
pub struct World {
    /// The (buggy) controller program.
    pub program: Program,
    /// Distinct trigger events observed in the history (PacketIn tuples).
    pub triggers: Vec<Tuple>,
    /// Controller state tuples (configuration seeds plus learned state).
    pub state: Vec<Tuple>,
    /// Cost model.
    pub cost: CostModel,
    /// Search bounds.
    pub budget: SearchBudget,
}

impl World {
    /// Candidate constants: goal values, program constants, and values
    /// observed in triggers/state — the solver's candidate domain (§2.5:
    /// "why did we change the constant to 3 and not, say, 4?" — because 3
    /// is in the domain the network exhibits).
    fn domain(&self, goal: &Pattern) -> Vec<i64> {
        let mut set: BTreeSet<i64> = BTreeSet::new();
        for r in &self.program.rules {
            for (_, v) in r.constants() {
                if let Value::Int(i) = v {
                    set.insert(i);
                }
            }
        }
        for t in self.triggers.iter().chain(self.state.iter()) {
            if let Some(i) = t.loc.as_int() {
                set.insert(i);
            }
            for a in &t.args {
                if let Some(i) = a.as_int() {
                    set.insert(i);
                }
            }
        }
        if let Some(l) = &goal.loc {
            if let Some(i) = l.as_int() {
                set.insert(i);
            }
        }
        for a in goal.args.iter().flatten() {
            if let Some(i) = a.as_int() {
                set.insert(i);
            }
        }
        // ±1 neighbors (off-by-one repairs).
        let neighbors: Vec<i64> = set.iter().flat_map(|&i| [i - 1, i + 1]).collect();
        set.extend(neighbors);
        set.into_iter().collect()
    }
}

/// Statistics from one generation run (feeds the Fig. 9a phase breakdown).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Trees forked (rule × trigger expansions).
    pub trees: u64,
    /// Constraint pools solved (selection feasibility checks).
    pub pools_solved: u64,
    /// Candidates emitted before dedup/cutoff.
    pub raw_candidates: u64,
    /// Nanoseconds spent in constraint solving (pool solves and
    /// feasibility enumeration) — the Fig. 9a "Constraint solving" slice.
    pub solver_ns: u128,
    /// The search hit [`SearchBudget::time_budget_ms`] and returned the
    /// best partial candidate set instead of the full exploration.
    pub timed_out: bool,
}

/// The exploration deadline, if the budget sets one.
fn deadline_of(budget: &SearchBudget) -> Option<std::time::Instant> {
    (budget.time_budget_ms > 0).then(|| {
        std::time::Instant::now() + std::time::Duration::from_millis(budget.time_budget_ms)
    })
}

/// `>=` so the smallest budget (1 ms) expires as soon as the clock
/// reaches the deadline, regardless of clock granularity.
fn expired(deadline: &Option<std::time::Instant>) -> bool {
    deadline.is_some_and(|d| std::time::Instant::now() >= d)
}

/// Generate repair candidates for a *missing* tuple.
pub fn generate_missing(world: &World, goal: &Pattern) -> (Vec<Candidate>, ExploreStats) {
    let mut stats = ExploreStats::default();
    let mut out: Vec<Candidate> = Vec::new();
    let domain = world.domain(goal);
    let deadline = deadline_of(&world.budget);

    // (1) The base-tuple insertion repair: make the tuple appear directly.
    if let Some(tuple) = pattern_tuple(goal) {
        out.push(Candidate {
            repair: Repair::InsertTuple(tuple.clone()),
            cost: world.cost.insert_tuple,
            description: "Manually installing a flow entry".into(),
            trace: vec![
                format!("NEXIST[Tuple({goal})]"),
                format!("NEXIST[Base({goal})] via meta rule h1"),
                format!("FIX: insert base tuple {tuple}"),
            ],
        });
        stats.raw_candidates += 1;
    }

    // (2) Fork one tree per rule that derives the goal table (§3.3).
    // Best-partial degradation: when the deadline fires mid-search, stop
    // forking trees and rank whatever has been generated so far.
    for rule in world.program.rules_for_table(&goal.table) {
        if expired(&deadline) {
            stats.timed_out = true;
            break;
        }
        explore_rule(world, goal, rule, &domain, &mut out, &mut stats);
    }

    // (3) Donor rules: head re-targeting and copy-with-new-head (the Q4
    // repairs: "changing/copying the head of r5 to packetOut(...)").
    for rule in &world.program.rules {
        if expired(&deadline) {
            stats.timed_out = true;
            break;
        }
        if rule.head.table == goal.table || rule.head.args.len() != goal.args.len() {
            continue;
        }
        explore_donor(world, goal, rule, &mut out, &mut stats);
    }

    // (4) Completeness fallback (Appendix D, case b): a brand-new rule
    // that derives exactly the goal from an observed trigger —
    // `Bar(@A,B) :- Foo(@X), X==1, A:=2, B:=3`. Costly, so it surfaces
    // only when nothing cheaper exists, but it guarantees the search
    // always finds at least one working repair.
    if let (Some(tuple), Some(trigger)) = (pattern_tuple(goal), world.triggers.first()) {
        let mut body_args = Vec::new();
        let mut sels = Vec::new();
        for (i, v) in trigger.args.iter().enumerate() {
            let var = format!("X{i}");
            body_args.push(Term::Var(var.clone()));
            sels.push(mpr_ndlog::Selection::new(
                Expr::var(var),
                CmpOp::Eq,
                Expr::Const(v.clone()),
            ));
        }
        let mut assigns = Vec::new();
        let mut head_args = Vec::new();
        for (i, v) in tuple.args.iter().enumerate() {
            let var = format!("H{i}");
            assigns.push(mpr_ndlog::Assign::new(var.clone(), Expr::Const(v.clone())));
            head_args.push(Term::Var(var));
        }
        assigns.push(mpr_ndlog::Assign::new("Hl", Expr::Const(tuple.loc.clone())));
        let rule = mpr_ndlog::Rule::new(
            "synth0",
            mpr_ndlog::Atom::new(goal.table.clone(), Term::Var("Hl".into()), head_args),
            vec![mpr_ndlog::Atom::new(
                trigger.table.clone(),
                Term::Var("Xl".into()),
                body_args,
            )],
            sels,
            assigns,
        );
        let patch = Patch::single(Edit::AddRule { rule: rule.clone() });
        if patch.apply(&world.program).is_ok() {
            stats.raw_candidates += 1;
            out.push(Candidate {
                repair: Repair::Patch(patch),
                cost: world.cost.new_rule,
                description: format!("Adding a new rule deriving {tuple}"),
                trace: vec![
                    format!("NEXIST[Tuple({goal})]"),
                    "NEXIST[HeadFunc(*)] — no rule can be adapted cheaply".into(),
                    format!("FIX: add rule {rule}"),
                ],
            });
        }
    }

    (finish(out, &world.budget), stats)
}

/// A fully concrete tuple from a pattern, if every column is constrained.
fn pattern_tuple(p: &Pattern) -> Option<Tuple> {
    let loc = p.loc.clone()?;
    let args: Option<Vec<Value>> = p.args.iter().cloned().collect();
    Some(Tuple { table: p.table.clone(), loc, args: args? })
}

/// Sort by cost, dedupe by description (keeping the cheapest), apply the
/// cutoff and the candidate cap.
fn finish(mut cands: Vec<Candidate>, budget: &SearchBudget) -> Vec<Candidate> {
    cands.sort_by(|a, b| a.cost.cmp(&b.cost).then(a.description.cmp(&b.description)));
    let mut seen = BTreeSet::new();
    cands.retain(|c| c.cost <= budget.max_cost && seen.insert(c.description.clone()));
    cands.truncate(budget.max_candidates);
    cands
}

/// Merge required head bindings from unifying the rule head with the goal.
/// Returns `None` when the rule can never produce the goal (constant
/// mismatch).
fn head_requirements(rule: &Rule, goal: &Pattern) -> Option<BTreeMap<String, Value>> {
    let mut req = BTreeMap::new();
    let bind = |term: &Term, val: &Option<Value>, req: &mut BTreeMap<String, Value>| -> bool {
        match (term, val) {
            (Term::Const(c), Some(v)) => c == v,
            (Term::Var(name), Some(v)) => match req.get(name) {
                Some(prev) => prev == v,
                None => {
                    req.insert(name.clone(), v.clone());
                    true
                }
            },
            _ => true,
        }
    };
    if !bind(&rule.head.loc, &goal.loc, &mut req) {
        return None;
    }
    if rule.head.args.len() != goal.args.len() {
        return None;
    }
    for (t, v) in rule.head.args.iter().zip(goal.args.iter()) {
        if !bind(t, v, &mut req) {
            return None;
        }
    }
    Some(req)
}

/// One tree: this rule, every compatible trigger.
fn explore_rule(
    world: &World,
    goal: &Pattern,
    rule: &Rule,
    domain: &[i64],
    out: &mut Vec<Candidate>,
    stats: &mut ExploreStats,
) {
    let Some(required) = head_requirements(rule, goal) else {
        return;
    };
    for trigger in &world.triggers {
        // The trigger must bind one body atom.
        for (ti, atom) in rule.body.iter().enumerate() {
            if atom.table != trigger.table {
                continue;
            }
            let mut env0 = Env::new();
            // Pre-seed with required head bindings so conflicting triggers
            // are skipped early.
            for (k, v) in &required {
                env0.insert(k.clone(), v.clone());
            }
            let Some(env1) = match_atom(atom, trigger, &env0) else {
                continue;
            };
            stats.trees += 1;
            // Join the remaining (state) atoms.
            let mut envs = vec![env1];
            let mut missing_state: Option<usize> = None;
            for (ai, satom) in rule.body.iter().enumerate() {
                if ai == ti {
                    continue;
                }
                let mut next = Vec::new();
                for env in &envs {
                    for st in &world.state {
                        if let Some(e2) = match_atom(satom, st, env) {
                            next.push(e2);
                        }
                    }
                }
                if next.is_empty() {
                    missing_state = Some(ai);
                    break;
                }
                envs = next;
            }
            if let Some(ai) = missing_state {
                emit_state_insertion(world, goal, rule, ai, &envs[0], &required, out, stats);
                continue;
            }
            for env in envs {
                emit_rule_candidates(world, goal, rule, &env, &required, domain, out, stats);
            }
        }
    }
}

/// A state predicate had no matching tuple: the repair inserts one whose
/// attributes are solved from the join/selection constraints (§3.4).
#[allow(clippy::too_many_arguments)]
fn emit_state_insertion(
    world: &World,
    goal: &Pattern,
    rule: &Rule,
    atom_idx: usize,
    env: &Env,
    required: &BTreeMap<String, Value>,
    out: &mut Vec<Candidate>,
    stats: &mut ExploreStats,
) {
    let atom = &rule.body[atom_idx];
    // Bind what we can from the environment plus the head requirements.
    let mut full = env.clone();
    for (k, v) in required {
        if !full.contains_key(k) {
            full.insert(k.clone(), v.clone());
        }
    }
    // Remaining free variables are solved against the rule's selections.
    let mut pool = mpr_solver::Pool::new();
    let free: Vec<String> = atom
        .vars()
        .into_iter()
        .filter(|v| !full.contains_key(v))
        .collect();
    for sel in &rule.sels {
        if let Some(c) = selection_constraint(sel, &full) {
            pool.push(c);
        }
    }
    let dom: Vec<Value> = world.domain(goal).into_iter().map(Value::Int).collect();
    for v in &free {
        pool.set_domain(v.clone(), dom.clone());
    }
    stats.pools_solved += 1;
    let t0 = std::time::Instant::now();
    let solved = pool.solve();
    stats.solver_ns += t0.elapsed().as_nanos();
    let Some(asg) = solved.assignment() else {
        return;
    };
    for v in free {
        if let Some(val) = asg.get(&v) {
            full.insert(v, val.clone());
        }
    }
    let Some(tuple) = instantiate(atom, &full) else {
        return;
    };
    stats.raw_candidates += 1;
    out.push(Candidate {
        repair: Repair::InsertTuple(tuple.clone()),
        cost: world.cost.insert_tuple,
        description: format!("Manually inserting a {} entry", atom.table),
        trace: vec![
            format!("NEXIST[Tuple({goal})]"),
            format!("NDERIVE[{} via meta rule h2]", rule.id),
            format!("NEXIST[TuplePred(Rul={}, Tab={})]", rule.id, atom.table),
            format!("FIX: insert base tuple {tuple}"),
        ],
    });
}

/// Translate a selection into a solver constraint under a partial env.
fn selection_constraint(sel: &Selection, env: &Env) -> Option<mpr_solver::Constraint> {
    let lhs = expr_sterm(&sel.lhs, env)?;
    let rhs = expr_sterm(&sel.rhs, env)?;
    Some(mpr_solver::Constraint::Cmp { lhs, op: sel.op, rhs })
}

fn expr_sterm(e: &Expr, env: &Env) -> Option<mpr_solver::STerm> {
    use mpr_solver::STerm;
    match e {
        Expr::Const(v) => Some(STerm::Val(v.clone())),
        Expr::Var(v) => match env.get(v) {
            Some(val) => Some(STerm::Val(val.clone())),
            None => Some(STerm::var(v.clone())),
        },
        Expr::Binary(op, l, r) => {
            let l = expr_sterm(l, env)?;
            let r = expr_sterm(r, env)?;
            match op {
                mpr_ndlog::BinOp::Add => Some(STerm::Add(Box::new(l), Box::new(r))),
                mpr_ndlog::BinOp::Sub => Some(STerm::Sub(Box::new(l), Box::new(r))),
                mpr_ndlog::BinOp::Mul => Some(STerm::Mul(Box::new(l), Box::new(r))),
                _ => None,
            }
        }
        Expr::Call(..) => None,
    }
}

/// The core of the search: under a complete join environment, determine
/// which program-based meta tuples block the derivation and emit the
/// change combinations that unblock it.
#[allow(clippy::too_many_arguments)]
fn emit_rule_candidates(
    world: &World,
    goal: &Pattern,
    rule: &Rule,
    env: &Env,
    required: &BTreeMap<String, Value>,
    domain: &[i64],
    out: &mut Vec<Candidate>,
    stats: &mut ExploreStats,
) {
    let cm = &world.cost;
    // --- assignments -----------------------------------------------------
    // Evaluate assignments; those bound to a required head value that
    // disagree must be fixed.
    let mut post = env.clone();
    let mut funcs = PureFuncs;
    #[derive(Clone)]
    struct AssignFix {
        options: Vec<(Edit, u32, String)>,
    }
    let mut assign_fixes: Vec<AssignFix> = Vec::new();
    for (ai, a) in rule.assigns.iter().enumerate() {
        let computed = a.expr.eval(&post, &mut funcs).ok();
        let needed = required.get(&a.var).cloned();
        match (computed, needed) {
            (Some(v), Some(need)) if v != need => {
                // Fix options: rewrite to the needed constant, or to an
                // in-scope variable that carries the needed value.
                let mut options: Vec<(Edit, u32, String)> = Vec::new();
                let const_cost = match &a.expr {
                    Expr::Const(Value::Int(old)) => match need {
                        Value::Int(n) => cm.const_change(*old, n),
                        _ => cm.assign_change,
                    },
                    _ => cm.assign_change,
                };
                options.push((
                    Edit::SetAssignExpr {
                        rule: rule.id.clone(),
                        var: a.var.clone(),
                        expr: Expr::Const(need.clone()),
                    },
                    const_cost,
                    format!("{} := {need}", a.var),
                ));
                for (w, val) in env.iter() {
                    if val == &need && w != &a.var {
                        options.push((
                            Edit::SetAssignExpr {
                                rule: rule.id.clone(),
                                var: a.var.clone(),
                                expr: Expr::var(w.clone()),
                            },
                            cm.var_change,
                            format!("{} := {w}", a.var),
                        ));
                    }
                }
                let _ = ai;
                post.insert(a.var.clone(), need.clone());
                assign_fixes.push(AssignFix { options });
            }
            (Some(v), _) => {
                post.insert(a.var.clone(), v);
            }
            (None, Some(need)) => {
                post.insert(a.var.clone(), need.clone());
                assign_fixes.push(AssignFix {
                    options: vec![(
                        Edit::SetAssignExpr {
                            rule: rule.id.clone(),
                            var: a.var.clone(),
                            expr: Expr::Const(need.clone()),
                        },
                        cm.assign_change,
                        format!("{} := {need}", a.var),
                    )],
                });
            }
            (None, None) => return, // un-evaluable, unconstrained — give up
        }
    }
    if assign_fixes.iter().any(|f| f.options.is_empty()) {
        return;
    }
    // --- selections -------------------------------------------------------
    let mut failing: Vec<usize> = Vec::new();
    for (si, sel) in rule.sels.iter().enumerate() {
        match sel.eval(&post, &mut funcs) {
            Ok(true) => {}
            _ => failing.push(si),
        }
    }
    if failing.is_empty() && assign_fixes.is_empty() {
        // The rule already derives the goal under this trigger — the
        // symptom must come from elsewhere.
        return;
    }
    // Fix options per failing selection: constants (solver-enumerated),
    // operators, variable swaps (§2.5's "relevant changes" only — passing
    // selections are never touched).
    let mut sel_fixes: Vec<Vec<(Edit, u32, String)>> = Vec::new();
    for &si in &failing {
        let sel = &rule.sels[si];
        let mut opts: Vec<(Edit, u32, String)> = Vec::new();
        // (a) constant replacement via the constraint pool (Fig. 6's
        //     NEXIST[Const(Rul, ID, Val)] leaf).
        for (site, old) in rule.constants() {
            let (is_this_sel, side) = match &site {
                ConstSite::Selection { idx, side, path } if *idx == si && path.is_empty() => {
                    (true, *side)
                }
                _ => (false, ExprSide::Lhs),
            };
            if !is_this_sel {
                continue;
            }
            let Value::Int(old_i) = old else { continue };
            stats.pools_solved += 1;
            let t0 = std::time::Instant::now();
            // Equality against a bound variable admits exactly one
            // replacement constant — skip the domain scan (this keeps
            // candidate generation linear in program size, Fig. 10).
            let eq_fast: Option<Vec<i64>> = if sel.op == CmpOp::Eq {
                let other = match side {
                    ExprSide::Lhs => &sel.rhs,
                    ExprSide::Rhs => &sel.lhs,
                };
                match other {
                    Expr::Var(v) => post.get(v).and_then(|x| x.as_int()).map(|x| vec![x]),
                    _ => None,
                }
            } else {
                None
            };
            let scan: Vec<i64> = eq_fast.unwrap_or_else(|| domain.to_vec());
            let mut found = 0;
            for &v in &scan {
                if v == old_i {
                    continue;
                }
                let mut patched = sel.clone();
                match side {
                    ExprSide::Lhs => patched.lhs = Expr::int(v),
                    ExprSide::Rhs => patched.rhs = Expr::int(v),
                }
                if patched.eval(&post, &mut funcs) == Ok(true) {
                    opts.push((
                        Edit::SetConst {
                            rule: rule.id.clone(),
                            site: site.clone(),
                            value: Value::Int(v),
                        },
                        cm.const_change(old_i, v),
                        format!("const {old_i}→{v}"),
                    ));
                    found += 1;
                    if found >= world.budget.consts_per_site {
                        break;
                    }
                }
            }
            stats.solver_ns += t0.elapsed().as_nanos();
        }
        // (b) operator flips.
        for op in CmpOp::ALL {
            if op == sel.op {
                continue;
            }
            let mut patched = sel.clone();
            patched.op = op;
            if patched.eval(&post, &mut funcs) == Ok(true) {
                opts.push((
                    Edit::SetSelectionOp { rule: rule.id.clone(), sel: si, op },
                    cm.op_change,
                    format!("op {}→{op}", sel.op),
                ));
            }
        }
        // (c) variable swaps.
        for (side, e) in [(ExprSide::Lhs, &sel.lhs), (ExprSide::Rhs, &sel.rhs)] {
            if let Expr::Var(cur) = e {
                for w in rule.body_vars() {
                    if &w == cur {
                        continue;
                    }
                    let mut patched = sel.clone();
                    match side {
                        ExprSide::Lhs => patched.lhs = Expr::var(w.clone()),
                        ExprSide::Rhs => patched.rhs = Expr::var(w.clone()),
                    }
                    if patched.eval(&post, &mut funcs) == Ok(true) {
                        opts.push((
                            Edit::SetSelectionExpr {
                                rule: rule.id.clone(),
                                sel: si,
                                side,
                                expr: Expr::var(w.clone()),
                            },
                            cm.var_change,
                            format!("var {cur}→{w}"),
                        ));
                    }
                }
            }
        }
        sel_fixes.push(opts);
    }
    // --- emit combinations -------------------------------------------------
    // Deletion subsets: every subset of selections of size ≤ 2 that covers
    // all failing selections (Table 2 candidates F, G, H).
    let mut deletion_sets: Vec<Vec<usize>> = Vec::new();
    if failing.len() <= 2 {
        let n = rule.sels.len();
        for i in 0..n {
            if failing.iter().all(|f| *f == i) {
                deletion_sets.push(vec![i]);
            }
            for j in (i + 1)..n {
                if failing.iter().all(|f| *f == i || *f == j) {
                    deletion_sets.push(vec![i, j]);
                }
            }
        }
    }
    // Assign-fix cross product (small: ≤ 2 assigns, ≤ 4 options each).
    let assign_combos: Vec<(Vec<Edit>, u32)> = cross_product(
        &assign_fixes.iter().map(|f| f.options.clone()).collect::<Vec<_>>(),
    );
    let _ = (&assign_fixes, &post);
    // Sel-fix cross product.
    let sel_combos: Vec<(Vec<Edit>, u32)> = cross_product(&sel_fixes);

    let mk_trace = |edits: &[Edit], cost: u32| -> Vec<String> {
        let mut t = vec![
            format!("NEXIST[Tuple({goal})]"),
            format!("NDERIVE[{} via meta rule h2]", rule.id),
        ];
        for si in &failing {
            t.push(format!(
                "NEXIST[Sel(Rul={}, SID=\"{}\", Val=true)]",
                rule.id,
                rule.sels[*si].sid()
            ));
        }
        t.push(format!("FIX(cost {cost}): {} edit(s)", edits.len()));
        t
    };

    if !sel_fixes.is_empty() && sel_fixes.iter().all(|o| !o.is_empty()) {
        for (sedits, scost) in &sel_combos {
            for (aedits, acost) in &assign_combos {
                let mut edits = sedits.clone();
                edits.extend(aedits.clone());
                let cost = scost + acost;
                push_patch(world, goal, rule, edits, cost, mk_trace, out, stats);
            }
        }
    } else if sel_fixes.is_empty() {
        // Only assignments need fixing.
        for (aedits, acost) in &assign_combos {
            push_patch(world, goal, rule, aedits.clone(), *acost, mk_trace, out, stats);
        }
    }
    for del in deletion_sets {
        for (aedits, acost) in &assign_combos {
            let mut edits: Vec<Edit> = del
                .iter()
                .map(|&si| Edit::DeleteSelection { rule: rule.id.clone(), sel: si })
                .collect();
            edits.extend(aedits.clone());
            let cost = del.len() as u32 * cm.delete_selection + acost;
            push_patch(world, goal, rule, edits, cost, mk_trace, out, stats);
        }
    }
}

fn cross_product(options: &[Vec<(Edit, u32, String)>]) -> Vec<(Vec<Edit>, u32)> {
    let mut combos: Vec<(Vec<Edit>, u32)> = vec![(Vec::new(), 0)];
    for opts in options {
        let mut next = Vec::new();
        for (edits, cost) in &combos {
            for (e, c, _) in opts {
                let mut ne = edits.clone();
                ne.push(e.clone());
                next.push((ne, cost + c));
            }
        }
        combos = next;
        if combos.len() > 64 {
            combos.truncate(64);
        }
    }
    combos
}

#[allow(clippy::too_many_arguments)]
fn push_patch(
    world: &World,
    _goal: &Pattern,
    _rule: &Rule,
    edits: Vec<Edit>,
    cost: u32,
    mk_trace: impl Fn(&[Edit], u32) -> Vec<String>,
    out: &mut Vec<Candidate>,
    stats: &mut ExploreStats,
) {
    // Multi-edit patches are intrinsically less plausible: charge one
    // extra unit per additional edit (keeps Table 2's single-literal
    // repairs ahead of combination repairs).
    let cost = cost + (edits.len() as u32).saturating_sub(1);
    if edits.is_empty() || cost > world.budget.max_cost {
        return;
    }
    let patch = Patch::of(edits);
    // Syntax preservation (§4.2): refuse edits that break the grammar.
    // Checked against a reduced program holding only the touched rules, so
    // candidate emission stays O(1) in program size (Fig. 10's linearity).
    let mut reduced = Program::new("syntax-check");
    for rid in patch.touched_rules() {
        if let Some(r) = world.program.rule(&rid) {
            reduced.rules.push(r.clone());
        }
    }
    if patch.apply(&reduced).is_err() {
        return;
    }
    let description = patch.describe(&world.program);
    let trace = mk_trace(&patch.edits, cost);
    stats.raw_candidates += 1;
    out.push(Candidate { repair: Repair::Patch(patch), cost, description, trace });
}

/// Donor exploration: `rule` derives a different table; re-targeting or
/// copying it can make the goal appear (the Q4 repairs).
fn explore_donor(
    world: &World,
    goal: &Pattern,
    rule: &Rule,
    out: &mut Vec<Candidate>,
    stats: &mut ExploreStats,
) {
    // The donor must actually fire under some trigger and produce a head
    // whose values match the goal pattern.
    let mut fires = false;
    'trig: for trigger in &world.triggers {
        for atom in &rule.body {
            if atom.table != trigger.table {
                continue;
            }
            let Some(env) = match_atom(atom, trigger, &Env::new()) else {
                continue;
            };
            // Join state, evaluate assigns and sels.
            let mut envs = vec![env];
            for (ai, satom) in rule.body.iter().enumerate() {
                if satom.table == trigger.table && ai == 0 {
                    continue;
                }
                if satom.table == trigger.table {
                    continue;
                }
                let mut next = Vec::new();
                for e in &envs {
                    for st in &world.state {
                        if let Some(e2) = match_atom(satom, st, e) {
                            next.push(e2);
                        }
                    }
                }
                if next.is_empty() {
                    continue 'trig;
                }
                envs = next;
            }
            let mut funcs = PureFuncs;
            'env: for mut e in envs {
                for a in &rule.assigns {
                    match a.expr.eval(&e, &mut funcs) {
                        Ok(v) => {
                            e.insert(a.var.clone(), v);
                        }
                        Err(_) => continue 'env,
                    }
                }
                for s in &rule.sels {
                    if s.eval(&e, &mut funcs) != Ok(true) {
                        continue 'env;
                    }
                }
                if let Some(head) = instantiate(&rule.head, &e) {
                    let mut retargeted = head.clone();
                    retargeted.table = goal.table.clone();
                    if goal.matches(&retargeted) {
                        fires = true;
                        break 'trig;
                    }
                }
            }
        }
    }
    if !fires {
        return;
    }
    stats.trees += 1;
    let trace = |fix: &str| {
        vec![
            format!("NEXIST[Tuple({goal})]"),
            format!(
                "NEXIST[HeadFunc(Rul={}, Tab={})] — donor head is {}",
                rule.id, goal.table, rule.head.table
            ),
            format!("FIX: {fix}"),
        ]
    };
    // (a) Re-target the head (loses the original derivation — backtesting
    // usually rejects this, as in Table 6c candidates C–G).
    let patch = Patch::single(Edit::SetHeadTable {
        rule: rule.id.clone(),
        table: goal.table.clone(),
    });
    if patch.apply(&world.program).is_ok() {
        stats.raw_candidates += 1;
        out.push(Candidate {
            repair: Repair::Patch(patch),
            cost: world.cost.head_change,
            description: format!(
                "Changing the head of {} to {}(...)",
                rule.id, goal.table
            ),
            trace: trace("re-target head"),
        });
    }
    // (b) Copy the rule with the new head (keeps the original — Table 6c
    // candidates J/L, the accepted ones).
    let mut copy = rule.clone();
    copy.id = format!("{}_copy", rule.id);
    copy.head.table = goal.table.clone();
    let patch = Patch::single(Edit::AddRule { rule: copy });
    if patch.apply(&world.program).is_ok() {
        stats.raw_candidates += 1;
        out.push(Candidate {
            repair: Repair::Patch(patch),
            cost: world.cost.copy_rule,
            description: format!(
                "Copying {} and replacing head with {}(...)",
                rule.id, goal.table
            ),
            trace: trace("copy rule with new head"),
        });
    }
}

// ---------------------------------------------------------------------
// positive symptoms (§4.2, Fig. 7)

/// A recorded derivation of the offending tuple.
#[derive(Debug, Clone)]
pub struct DerivationRecord {
    /// The rule that fired.
    pub rule: String,
    /// The body tuples, in body-atom order.
    pub body: Vec<Tuple>,
    /// Which body tuples are base/state (eligible for deletion/change).
    pub base_mask: Vec<bool>,
}

/// Generate repairs that make an *existing* tuple disappear.
pub fn generate_existing(
    world: &World,
    culprit: &Tuple,
    derivations: &[DerivationRecord],
) -> (Vec<Candidate>, ExploreStats) {
    let mut stats = ExploreStats::default();
    let mut out = Vec::new();
    let domain = world.domain(&Pattern::exact(culprit));
    let deadline = deadline_of(&world.budget);
    for d in derivations {
        if expired(&deadline) {
            stats.timed_out = true;
            break;
        }
        let Some(rule) = world.program.rule(&d.rule) else {
            continue;
        };
        // Reconstruct the firing environment.
        let mut env = Env::new();
        let mut ok = true;
        for (atom, t) in rule.body.iter().zip(d.body.iter()) {
            match match_atom(atom, t, &env) {
                Some(e2) => env = e2,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let mut funcs = PureFuncs;
        let mut post = env.clone();
        for a in &rule.assigns {
            if let Ok(v) = a.expr.eval(&post, &mut funcs) {
                post.insert(a.var.clone(), v);
            }
        }
        let trace_head = vec![
            format!("EXIST[Tuple({culprit})]"),
            format!("DERIVE[{} via meta rule h2]", rule.id),
        ];
        // (a) Base-tuple deletions (Fig. 5: DELETETUPLE).
        for (bi, t) in d.body.iter().enumerate() {
            if !d.base_mask[bi] {
                continue;
            }
            stats.raw_candidates += 1;
            let mut trace = trace_head.clone();
            trace.push(format!("EXIST[TuplePred({t})]"));
            trace.push(format!("FIX: delete base tuple {t}"));
            out.push(Candidate {
                repair: Repair::DeleteTuple(t.clone()),
                cost: world.cost.insert_tuple, // symmetric with insertion
                description: format!("Deleting the {} tuple {t}", t.table),
                trace,
            });
            // (b) Base-tuple changes: symbolic re-execution + negation
            // (§4.2's `Const('r1',1,Z)` with constraint `1 == Z` negated).
            for (ci, _old) in t.args.iter().enumerate() {
                let var = format!("{}.{ci}", t.table);
                // Collect the constraints the derivation imposes on this
                // column, then negate.
                let mut sym_env = env.clone();
                // Which rule variable is bound to this column?
                let Some(Term::Var(v)) = rule.body[bi].args.get(ci) else {
                    continue;
                };
                sym_env.remove(v);
                let mut pool = mpr_solver::Pool::new();
                let mut any = false;
                for sel in &rule.sels {
                    if !sel.vars().contains(v) {
                        continue;
                    }
                    if let Some(c) = selection_constraint(sel, &sym_env) {
                        // Rename the free rule-variable to the column var.
                        pool.push(rename_var(c, v, &var));
                        any = true;
                    }
                }
                if !any {
                    continue;
                }
                let negated: Vec<mpr_solver::Constraint> =
                    pool.constraints.iter().map(|c| c.negate()).collect();
                let mut npool = mpr_solver::Pool::new();
                for c in negated {
                    npool.push(c);
                }
                npool.set_domain(var.clone(), domain.iter().map(|&i| Value::Int(i)).collect());
                stats.pools_solved += 1;
                let t0 = std::time::Instant::now();
                let solved = npool.solve();
                stats.solver_ns += t0.elapsed().as_nanos();
                if let Some(asg) = solved.assignment() {
                    if let Some(nv) = asg.get(&var) {
                        let mut nt = t.clone();
                        nt.args[ci] = nv.clone();
                        stats.raw_candidates += 1;
                        let mut trace = trace_head.clone();
                        trace.push(format!("EXIST[TuplePred({t})]"));
                        trace.push(format!("FIX: change {t} to {nt}"));
                        out.push(Candidate {
                            repair: Repair::ChangeTuple { from: t.clone(), to: nt.clone() },
                            cost: world.cost.const_other,
                            description: format!("Changing {t} to {nt}"),
                            trace,
                        });
                    }
                }
            }
        }
        // (c) Rule-literal changes that break this binding (the green
        // repair of Fig. 7: `Swi==1` → `Swi==2`).
        for (si, sel) in rule.sels.iter().enumerate() {
            for (site, old) in rule.constants() {
                let matches_sel = matches!(
                    &site,
                    ConstSite::Selection { idx, path, .. } if *idx == si && path.is_empty()
                );
                if !matches_sel {
                    continue;
                }
                let Value::Int(old_i) = old else { continue };
                let side = match &site {
                    ConstSite::Selection { side, .. } => *side,
                    _ => continue,
                };
                stats.pools_solved += 1;
                for &v in &domain {
                    if v == old_i {
                        continue;
                    }
                    let mut patched = sel.clone();
                    match side {
                        ExprSide::Lhs => patched.lhs = Expr::int(v),
                        ExprSide::Rhs => patched.rhs = Expr::int(v),
                    }
                    // The change must make *this* derivation fail.
                    if patched.eval(&post, &mut funcs) == Ok(false) {
                        let patch = Patch::single(Edit::SetConst {
                            rule: rule.id.clone(),
                            site: site.clone(),
                            value: Value::Int(v),
                        });
                        if patch.apply(&world.program).is_err() {
                            continue;
                        }
                        let description = patch.describe(&world.program);
                        stats.raw_candidates += 1;
                        let mut trace = trace_head.clone();
                        trace.push(format!(
                            "EXIST[Sel(Rul={}, SID=\"{}\")]",
                            rule.id,
                            sel.sid()
                        ));
                        trace.push(format!("FIX: {description}"));
                        out.push(Candidate {
                            repair: Repair::Patch(patch),
                            cost: world.cost.const_change(old_i, v),
                            description,
                            trace,
                        });
                        break; // one constant change per site suffices here
                    }
                }
            }
            // Operator negation always breaks the satisfied selection.
            let mut patched = sel.clone();
            patched.op = sel.op.negate();
            if patched.eval(&post, &mut funcs) == Ok(false) {
                let patch = Patch::single(Edit::SetSelectionOp {
                    rule: rule.id.clone(),
                    sel: si,
                    op: sel.op.negate(),
                });
                if patch.apply(&world.program).is_ok() {
                    let description = patch.describe(&world.program);
                    stats.raw_candidates += 1;
                    let mut trace = trace_head.clone();
                    trace.push(format!("EXIST[Oper(Rul={}, SID=\"{}\")]", rule.id, sel.sid()));
                    trace.push(format!("FIX: {description}"));
                    out.push(Candidate {
                        repair: Repair::Patch(patch),
                        cost: world.cost.op_change,
                        description,
                        trace,
                    });
                }
            }
        }
        // (d) Deleting a body predicate (Fig. 7's red repair — often
        // re-derives through another path; backtesting weeds it out, §4.2).
        for (pi, atom) in rule.body.iter().enumerate() {
            if rule.body.len() < 2 {
                break;
            }
            let patch = Patch::single(Edit::DeletePredicate { rule: rule.id.clone(), pred: pi });
            if patch.apply(&world.program).is_ok() {
                let description = patch.describe(&world.program);
                stats.raw_candidates += 1;
                let mut trace = trace_head.clone();
                trace.push(format!("EXIST[PredFunc(Rul={}, Tab={})]", rule.id, atom.table));
                trace.push(format!("FIX: {description}"));
                out.push(Candidate {
                    repair: Repair::Patch(patch),
                    cost: world.cost.delete_predicate,
                    description,
                    trace,
                });
            }
        }
    }
    (finish(out, &world.budget), stats)
}

fn rename_var(c: mpr_solver::Constraint, from: &str, to: &str) -> mpr_solver::Constraint {
    use mpr_solver::{Constraint as C, STerm};
    fn rt(t: STerm, from: &str, to: &str) -> STerm {
        match t {
            STerm::Var(v) if v == from => STerm::var(to),
            STerm::Add(l, r) => STerm::Add(Box::new(rt(*l, from, to)), Box::new(rt(*r, from, to))),
            STerm::Sub(l, r) => STerm::Sub(Box::new(rt(*l, from, to)), Box::new(rt(*r, from, to))),
            STerm::Mul(l, r) => STerm::Mul(Box::new(rt(*l, from, to)), Box::new(rt(*r, from, to))),
            other => other,
        }
    }
    match c {
        C::Cmp { lhs, op, rhs } => C::Cmp { lhs: rt(lhs, from, to), op, rhs: rt(rhs, from, to) },
        C::And(cs) => C::And(cs.into_iter().map(|c| rename_var(c, from, to)).collect()),
        C::Or(cs) => C::Or(cs.into_iter().map(|c| rename_var(c, from, to)).collect()),
        C::Implies(a, b) => C::Implies(
            Box::new(rename_var(*a, from, to)),
            Box::new(rename_var(*b, from, to)),
        ),
        C::Not(b) => C::Not(Box::new(rename_var(*b, from, to))),
        other => other,
    }
}
