//! The debugger: the operator-facing loop of §2 — run the buggy network,
//! take a symptom query, generate candidate repairs from meta provenance,
//! backtest them, and return a ranked list.
//!
//! Phase timings mirror the Fig. 9a breakdown: **history lookups**
//! (scanning the log for triggers and state), **constraint solving**
//! (inside the explorer), **patch generation** (the rest of the explorer),
//! and **replay** (the buggy baseline plus candidate backtests).

use crate::explore::{generate_existing, generate_missing, DerivationRecord, World};
use crate::repair::{Candidate, Repair};
use crate::scenarios::{Scenario, Symptom};
use mpr_backtest::ks::{ks_two_sample, KsResult};
use mpr_backtest::mqo::{mqo_replay, mqo_supported, ExtraFlows};
use mpr_backtest::replay::{replay_candidates, BacktestSetup, CandidateRun, ReplayOutcome};
use mpr_ndlog::{Program, Tuple};
use mpr_runtime::{Options as EngineOptions, TupleKind};
use mpr_sdn::controller::{NdlogController, TupleCodec};
use mpr_sdn::flowtable::{Action, FlowEntry, Match};
use mpr_sdn::sim::Simulation;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Fig. 9a phase breakdown.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Scanning the history/log for triggers and controller state.
    pub history_lookups: Duration,
    /// Constraint solving inside the explorer.
    pub constraint_solving: Duration,
    /// Candidate construction (explorer minus solving).
    pub patch_generation: Duration,
    /// Baseline + candidate replay.
    pub replay: Duration,
}

impl PhaseTimings {
    /// Total turnaround.
    pub fn total(&self) -> Duration {
        self.history_lookups + self.constraint_solving + self.patch_generation + self.replay
    }
}

/// One backtested candidate.
#[derive(Debug, Clone)]
pub struct CandidateOutcome {
    /// The candidate.
    pub candidate: Candidate,
    /// Did it fix the problem at hand?
    pub effective: bool,
    /// KS test against the original distribution.
    pub ks: KsResult,
    /// Effective and statistically harmless.
    pub accepted: bool,
}

/// The debugger's answer.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Scenario id.
    pub scenario: String,
    /// The operator's query.
    pub query: String,
    /// All generated candidates with their backtest outcomes, cheapest
    /// first.
    pub outcomes: Vec<CandidateOutcome>,
    /// Indices of accepted candidates (into `outcomes`), in presentation
    /// order (complexity, then side-effect size).
    pub accepted: Vec<usize>,
    /// Phase breakdown.
    pub timings: PhaseTimings,
    /// The buggy network's distribution (the KS baseline).
    pub baseline: ReplayOutcome,
    /// Explorer counters.
    pub trees: u64,
    /// Explorer counters.
    pub pools_solved: u64,
    /// The candidate search hit [`crate::cost::SearchBudget::time_budget_ms`]
    /// and degraded to the best partial candidate set.
    pub search_timed_out: bool,
}

impl RepairReport {
    /// Number of candidates generated (the first number in Table 1).
    pub fn generated(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of accepted candidates (the second number in Table 1).
    pub fn accepted_count(&self) -> usize {
        self.accepted.len()
    }

    /// Render a Table 2 style listing.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for (i, o) in self.outcomes.iter().enumerate() {
            let letter = (b'A' + (i as u8 % 26)) as char;
            out.push_str(&format!(
                "{letter} {:60} ({}) KS={:.5}\n",
                o.candidate.description,
                if o.accepted { "accepted" } else if o.effective { "rejected: side effects" } else { "rejected: ineffective" },
                o.ks.d
            ));
        }
        out
    }
}

/// The debugger.
pub struct Debugger {
    scenario: Scenario,
    /// Use the §4.4 multi-query optimizer for joint backtesting.
    pub use_mqo: bool,
    /// Engine options for the observation run and every sequential
    /// backtest replay (strategy, durability, …). The kill-and-restart
    /// harness points this at a WAL so crashes mid-loop are recoverable.
    pub engine_options: EngineOptions,
}

impl Debugger {
    /// Build a debugger for a scenario.
    pub fn for_scenario(scenario: &Scenario) -> Debugger {
        Debugger {
            scenario: scenario.clone(),
            use_mqo: true,
            engine_options: EngineOptions::default(),
        }
    }

    fn setup(&self) -> BacktestSetup {
        BacktestSetup {
            topology: self.scenario.topology.clone(),
            codec: self.scenario.codec.clone(),
            seeds: self.scenario.seeds.clone(),
            workload: std::sync::Arc::new(self.scenario.workload.clone()),
            config: self.scenario.sim.clone(),
            proactive_routes: false,
            engine: self.engine_options.clone(),
        }
    }

    /// Run the buggy program once with full provenance, extracting the
    /// explorer's [`World`] (triggers + controller state) and the baseline
    /// distribution.
    pub fn observe(&self) -> Result<(World, ReplayOutcome, Duration, Duration), String> {
        let t_replay = Instant::now();
        let mut ctrl = NdlogController::with_options(
            self.scenario.program.clone(),
            self.scenario.codec.clone(),
            self.engine_options.clone(),
        )
        .map_err(|e| e.to_string())?;
        ctrl.seed(self.scenario.seeds.clone()).map_err(|e| e.to_string())?;
        let mut sim = Simulation::new(self.scenario.topology.clone(), ctrl, self.scenario.sim.clone());
        for (src, pkt) in &self.scenario.workload {
            sim.inject(*src, pkt.clone());
            sim.run();
        }
        let replay_time = t_replay.elapsed();

        // History lookups: distill distinct triggers and live state from
        // the execution log.
        let t_hist = Instant::now();
        let mut triggers: BTreeSet<Tuple> = BTreeSet::new();
        for rec in sim.packet_in_log() {
            triggers.insert(self.scenario.codec.packet_in_tuple_parts(
                rec.switch,
                rec.in_port,
                &rec.packet,
            ));
        }
        let ctrl = sim.controller();
        let mut state: Vec<Tuple> = self.scenario.seeds.clone();
        let log = ctrl.exec_log();
        for rec in &log.tuples {
            if rec.disappear.is_none()
                && rec.kind != TupleKind::Event
                && rec.tuple.table != self.scenario.codec.flow_table
            {
                if !state.contains(&rec.tuple) {
                    state.push(rec.tuple.clone());
                }
            }
        }
        let history_time = t_hist.elapsed();

        let world = World {
            program: self.scenario.program.clone(),
            triggers: triggers.into_iter().collect(),
            state,
            cost: self.scenario.cost,
            budget: self.scenario.budget,
        };
        let baseline = ReplayOutcome {
            delivered: sim.stats.delivered.clone(),
            stats: sim.stats.clone(),
        };
        Ok((world, baseline, replay_time, history_time))
    }

    /// The full §2 loop: diagnose, generate, backtest, rank.
    ///
    /// Fails (with a description, never a panic) only when the scenario
    /// itself cannot run — a program that does not compile, a codec that
    /// cannot seed the controller. Degraded-but-running conditions (a
    /// timed-out search, a candidate whose replay dies) surface inside
    /// the report instead.
    pub fn diagnose_and_repair(&mut self) -> Result<RepairReport, String> {
        let (world, baseline, mut replay_time, history_time) = self.observe()?;

        // --- candidate generation -------------------------------------
        let t_gen = Instant::now();
        let (candidates, stats) = match &self.scenario.symptom {
            Symptom::Missing(pattern) => generate_missing(&world, pattern),
            Symptom::Existing(tuple) => {
                let records = derivations_from_world(&world, tuple);
                generate_existing(&world, tuple, &records)
            }
        };
        let candidates: Vec<Candidate> = if self.scenario.op_repairs {
            candidates
        } else {
            // Pyretic's `match` is equality-only (§5.8): operator
            // mutations are not expressible repairs in this language.
            candidates
                .into_iter()
                .filter(|c| match &c.repair {
                    Repair::Patch(p) => !p
                        .edits
                        .iter()
                        .any(|e| matches!(e, mpr_ndlog::patch::Edit::SetSelectionOp { .. })),
                    _ => true,
                })
                .collect()
        };
        let gen_total = t_gen.elapsed();
        let solving = Duration::from_nanos(stats.solver_ns.min(u64::MAX as u128) as u64);
        let patch_generation = gen_total.saturating_sub(solving);

        // --- backtesting ------------------------------------------------
        let t_back = Instant::now();
        let setup = self.setup();
        let outcomes_raw = self.backtest(&setup, &candidates);
        replay_time += t_back.elapsed();

        let alpha = 0.05;
        let mut outcomes: Vec<CandidateOutcome> = Vec::new();
        for (cand, outcome) in candidates.into_iter().zip(outcomes_raw.into_iter()) {
            match outcome {
                Some(out) => {
                    let effective = self.scenario.effect.holds(&out.stats);
                    let ks = ks_two_sample(&baseline.delivered, &out.delivered, alpha);
                    // §4.3: operators can add metrics beyond the traffic
                    // distribution; Table 6c rejects Q4 candidates for
                    // "significant increases of controller traffic".
                    let controller_ok =
                        out.stats.packet_ins <= baseline.stats.packet_ins * 3 + 10;
                    let accepted = effective && ks.accepted() && controller_ok;
                    outcomes.push(CandidateOutcome { candidate: cand, effective, ks, accepted });
                }
                None => {
                    let ks = ks_two_sample(&baseline.delivered, &baseline.delivered, alpha);
                    outcomes.push(CandidateOutcome {
                        candidate: cand,
                        effective: false,
                        ks,
                        accepted: false,
                    });
                }
            }
        }
        // Presentation order: complexity (cost) first, then side-effect
        // size (§4.3: "the metrics can be used to rank the repairs").
        let mut accepted: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.accepted)
            .map(|(i, _)| i)
            .collect();
        accepted.sort_by(|&a, &b| {
            outcomes[a]
                .candidate
                .cost
                .cmp(&outcomes[b].candidate.cost)
                .then(outcomes[a].ks.d.partial_cmp(&outcomes[b].ks.d).unwrap_or(std::cmp::Ordering::Equal))
        });

        Ok(RepairReport {
            scenario: self.scenario.id.clone(),
            query: self.scenario.query.clone(),
            outcomes,
            accepted,
            timings: PhaseTimings {
                history_lookups: history_time,
                constraint_solving: solving,
                patch_generation,
                replay: replay_time,
            },
            baseline,
            trees: stats.trees,
            pools_solved: stats.pools_solved,
            search_timed_out: stats.timed_out,
        })
    }

    /// Backtest every candidate; `None` marks candidates whose patched
    /// program failed to compile (they are reported as ineffective).
    fn backtest(
        &self,
        setup: &BacktestSetup,
        candidates: &[Candidate],
    ) -> Vec<Option<ReplayOutcome>> {
        // Materialize per-candidate programs, seeds and manual flow entries.
        let mut programs: Vec<Option<Program>> = Vec::new();
        let mut extra: Vec<ExtraFlows> = Vec::new();
        let mut seed_sets: Vec<Vec<Tuple>> = Vec::new();
        for c in candidates {
            let mut seeds = setup.seeds.clone();
            let mut flows: ExtraFlows = Vec::new();
            match &c.repair {
                Repair::InsertTuple(t)
                    if t.table == setup.codec.flow_table
                        || Some(&t.table) == setup.codec.packet_out_table.as_ref() =>
                {
                    if let Some(f) = manual_flow_entry(&setup.codec, t) {
                        flows.push(f);
                    }
                }
                other => other.adjust_seeds(&mut seeds),
            }
            programs.push(c.repair.apply(&self.scenario.program).ok());
            extra.push(flows);
            seed_sets.push(seeds);
        }
        // Joint MQO path requires identical seeds across candidates; fall
        // back to sequential when any candidate perturbs seeds.
        let uniform_seeds = seed_sets.iter().all(|s| s == &setup.seeds);
        let all_compiled: Option<Vec<Program>> = programs.iter().cloned().collect();
        if self.use_mqo && uniform_seeds && candidates.len() <= 64 {
            if let Some(progs) = all_compiled {
                if progs.iter().all(mqo_supported) {
                    let outs = mqo_replay(setup, &self.scenario.program, &progs, &extra);
                    return outs.into_iter().map(Some).collect();
                }
            }
        }
        // Independent-replay fallback, fanned out over the backtest pool
        // (one hermetic simulator per candidate, results index-aligned).
        let runs: Vec<CandidateRun> = programs
            .into_iter()
            .zip(seed_sets)
            .zip(extra)
            .map(|((program, seeds), extra_flows)| CandidateRun { program, seeds, extra_flows })
            .collect();
        replay_candidates(setup, &runs)
    }
}

/// Convert a manually inserted `FlowTable`/`PacketOut` tuple into a
/// pre-installed flow entry (priority 50, above reactive entries).
fn manual_flow_entry(codec: &TupleCodec, t: &Tuple) -> Option<(i64, FlowEntry)> {
    let switch = t.loc.as_int()?;
    if t.args.len() != codec.flow_match_args.len() + 1 {
        return None;
    }
    let mut m = Match::any();
    for (spec, v) in codec.flow_match_args.iter().zip(t.args.iter()) {
        let v = v.as_int()?;
        match spec {
            mpr_sdn::controller::PktArg::Field(f) => m = m.with(*f, v),
            mpr_sdn::controller::PktArg::InPort => m = m.on_port(v),
        }
    }
    let port = t.args.last()?.as_int()?;
    let actions = if port < 0 { vec![Action::Drop] } else { vec![Action::Output(port)] };
    Some((switch, FlowEntry::new(50, m, actions)))
}

/// Reconstruct derivation records for an existing tuple from a fresh run
/// of the world (positive symptoms).
fn derivations_from_world(world: &World, culprit: &Tuple) -> Vec<DerivationRecord> {
    // Re-run the program over triggers + state with full provenance and
    // collect the derivations of the culprit.
    let mut program = world.program.clone();
    let _ = &mut program;
    let Ok(mut engine) = mpr_runtime::Engine::new(&world.program) else {
        return Vec::new();
    };
    for t in &world.state {
        let _ = engine.insert(t.clone());
    }
    for t in &world.triggers {
        let _ = engine.insert(t.clone());
    }
    let log = engine.log();
    let mut records = Vec::new();
    for rec in &log.tuples {
        if &rec.tuple != culprit {
            continue;
        }
        for ev in log.derivations_of(rec.tid) {
            if let mpr_runtime::ExecEvent::Derive { rule, body, .. } = ev {
                let body_tuples: Vec<Tuple> =
                    body.iter().map(|&b| log.record(b).tuple.clone()).collect();
                let base_mask: Vec<bool> = body
                    .iter()
                    .map(|&b| log.record(b).kind == TupleKind::Base)
                    .collect();
                records.push(DerivationRecord {
                    rule: rule.clone(),
                    body: body_tuples,
                    base_mask,
                });
            }
        }
    }
    records
}

/// Convenience wrapper: scenario in, report out. Fallible variant for
/// callers (like the chaos harness) that must survive broken scenarios.
pub fn try_repair_scenario(scenario: &Scenario) -> Result<RepairReport, String> {
    Debugger::for_scenario(scenario).diagnose_and_repair()
}

/// Convenience wrapper: scenario in, report out. Panics if the scenario
/// itself cannot run — fine for the curated q1–q5/fig7 scenarios the
/// tests and benches drive; use [`try_repair_scenario`] for anything
/// generated.
pub fn repair_scenario(scenario: &Scenario) -> RepairReport {
    match try_repair_scenario(scenario) {
        Ok(r) => r,
        Err(e) => panic!("scenario {} failed to run: {e}", scenario.id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::Value as V;

    #[test]
    fn q1_produces_paper_shaped_results() {
        let scenario = Scenario::q1_copy_paste();
        let report = repair_scenario(&scenario);
        // A healthy handful of candidates, a small accepted set (Table 1:
        // 9 generated / 2 accepted).
        assert!(
            (5..=16).contains(&report.generated()),
            "generated {}:\n{}",
            report.generated(),
            report.render_table()
        );
        assert!(
            (1..=4).contains(&report.accepted_count()),
            "accepted {}:\n{}",
            report.accepted_count(),
            report.render_table()
        );
        // The intuitive fix is generated AND accepted.
        let reference = report
            .outcomes
            .iter()
            .position(|o| o.candidate.description.contains(&scenario.reference_fix))
            .expect("reference fix generated");
        assert!(
            report.outcomes[reference].accepted,
            "reference fix rejected:\n{}",
            report.render_table()
        );
        // The manual flow-entry repair is accepted too (Table 2 candidate A).
        assert!(report
            .outcomes
            .iter()
            .any(|o| o.candidate.description.contains("Manually installing") && o.accepted));
        // Over-general repairs (operator flips) are generated but rejected.
        assert!(report
            .outcomes
            .iter()
            .any(|o| o.candidate.description.contains("Swi != 2") && !o.accepted));
    }

    #[test]
    fn manual_flow_entry_conversion() {
        let codec = TupleCodec::fig2();
        let t = Tuple::new("FlowTable", 3i64, vec![V::Int(80), V::Int(2)]);
        let (sw, entry) = manual_flow_entry(&codec, &t).unwrap();
        assert_eq!(sw, 3);
        assert_eq!(entry.actions, vec![Action::Output(2)]);
        // Drop entries for negative ports.
        let t = Tuple::new("FlowTable", 3i64, vec![V::Int(80), V::Int(-1)]);
        let (_, entry) = manual_flow_entry(&codec, &t).unwrap();
        assert_eq!(entry.actions, vec![Action::Drop]);
        // Arity mismatch is refused.
        let t = Tuple::new("FlowTable", 3i64, vec![V::Int(80)]);
        assert!(manual_flow_entry(&codec, &t).is_none());
    }

    #[test]
    fn timings_are_populated() {
        let scenario = Scenario::q1_copy_paste();
        let report = repair_scenario(&scenario);
        assert!(report.timings.total() > Duration::ZERO);
        assert!(report.timings.replay > Duration::ZERO);
        assert!(report.trees > 0);
    }

    #[test]
    fn mqo_and_sequential_agree_on_acceptance() {
        let scenario = Scenario::q1_copy_paste();
        let mut d1 = Debugger::for_scenario(&scenario);
        d1.use_mqo = true;
        let r1 = d1.diagnose_and_repair().unwrap();
        let mut d2 = Debugger::for_scenario(&scenario);
        d2.use_mqo = false;
        let r2 = d2.diagnose_and_repair().unwrap();
        let a1: Vec<String> = r1
            .accepted
            .iter()
            .map(|&i| r1.outcomes[i].candidate.description.clone())
            .collect();
        let a2: Vec<String> = r2
            .accepted
            .iter()
            .map(|&i| r2.outcomes[i].candidate.description.clone())
            .collect();
        assert_eq!(a1, a2);
    }
}
