//! The repair cost model (§3.5).
//!
//! "We assign a low cost to common errors (such as changing a constant by
//! one or changing a == to a !=) and a high cost to unlikely errors (such
//! as writing an entirely new rule, or defining a new table)." The
//! magnitudes follow the bug-fix-pattern study the paper cites (Pan et
//! al., *Toward an understanding of bug fix patterns*): changes to an
//! existing predicate's literal dominate, operator flips are next,
//! structural edits are rare.
//!
//! Costs are *data*, not code — the `micro` bench ablates them.

use serde::{Deserialize, Serialize};

/// Cost of each elementary change. Lower = more plausible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Changing a constant to an adjacent value (off-by-one, the single
    /// most common fix pattern).
    pub const_adjacent: u32,
    /// Changing a constant to any other value.
    pub const_other: u32,
    /// Changing a comparison operator.
    pub op_change: u32,
    /// Replacing a variable with another in-scope variable.
    pub var_change: u32,
    /// Changing an assignment's right-hand side.
    pub assign_change: u32,
    /// Deleting a selection predicate.
    pub delete_selection: u32,
    /// Deleting a body predicate.
    pub delete_predicate: u32,
    /// Inserting a base tuple (e.g. "manually installing a flow entry",
    /// Table 2 candidate A).
    pub insert_tuple: u32,
    /// Re-targeting a rule head to a different table.
    pub head_change: u32,
    /// Copying an existing rule and modifying the copy.
    pub copy_rule: u32,
    /// Writing an entirely new rule.
    pub new_rule: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            const_adjacent: 1,
            const_other: 2,
            op_change: 2,
            var_change: 2,
            assign_change: 2,
            delete_selection: 3,
            delete_predicate: 4,
            insert_tuple: 3,
            head_change: 5,
            copy_rule: 6,
            new_rule: 8,
        }
    }
}

impl CostModel {
    /// Cost of changing an integer constant from `old` to `new`.
    pub fn const_change(&self, old: i64, new: i64) -> u32 {
        if (old - new).abs() == 1 {
            self.const_adjacent
        } else {
            self.const_other
        }
    }
}

/// Exploration bounds: the "reasonable cut-off cost" and candidate budget
/// of §3.5 ("the algorithm would be run until some reasonable cut-off cost
/// is reached, or until the operator's patience runs out").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SearchBudget {
    /// Candidates costing more than this are never emitted.
    pub max_cost: u32,
    /// At most this many candidates are returned (cheapest first).
    pub max_candidates: usize,
    /// Per-selection cap on enumerated replacement constants.
    pub consts_per_site: usize,
    /// Wall-clock deadline for the exploration, in milliseconds. `0`
    /// means unlimited. When the deadline fires, the search degrades
    /// gracefully: whatever candidates have been generated so far are
    /// ranked and returned (best-partial, never an error) — §3.5's
    /// "until the operator's patience runs out", made literal.
    pub time_budget_ms: u64,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget { max_cost: 7, max_candidates: 14, consts_per_site: 4, time_budget_ms: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_cheaper() {
        let c = CostModel::default();
        assert_eq!(c.const_change(2, 3), c.const_adjacent);
        assert_eq!(c.const_change(2, 1), c.const_adjacent);
        assert_eq!(c.const_change(2, 9), c.const_other);
        assert!(c.const_adjacent < c.op_change);
    }

    #[test]
    fn structural_changes_cost_more_than_literal_tweaks() {
        let c = CostModel::default();
        assert!(c.op_change < c.delete_selection);
        assert!(c.delete_selection < c.delete_predicate);
        assert!(c.head_change < c.copy_rule);
        assert!(c.copy_rule < c.new_rule);
    }

    #[test]
    fn budget_defaults_are_sane() {
        let b = SearchBudget::default();
        assert!(b.max_cost >= CostModel::default().copy_rule);
        assert!(b.max_candidates >= 9); // Table 2 lists 9 for Q1
    }
}
