//! The µDlog meta model (§3.2, Fig. 4) — *runnable*.
//!
//! The program is "just another kind of data": [`meta_tuples`] translates a
//! µDlog-shaped program into program-based meta tuples (`HeadFunc`,
//! `PredFunc`, `Assign`, `Const`, `Oper`), and [`meta_program`] is the
//! Fig. 4 meta program written in NDlog, executable on `mpr-runtime`. Base
//! tuples of the object program become `Base` meta tuples; the meta
//! program then derives exactly the `Tuple` facts the object program
//! derives — a property pinned by the differential test below.
//!
//! Two documented deviations from the paper's listing:
//!
//! 1. `Val := (Val' Opr Val'')` is spelled `Val := f_apply(Opr, Vl, Vr)` —
//!    our expression grammar keeps operators-as-data in a built-in;
//! 2. `h2` matches `Sel` join-IDs with `f_match` rather than exact
//!    unification, so selections over two constants (whose `Expr` tuples
//!    carry the `*` wildcard JID) participate correctly. The paper's
//!    `f_match` exists for precisely this wildcard semantics.
//!
//! The translator also makes the implicit equijoin of repeated variables
//! explicit (the reason µDlog rules have *exactly two* selection
//! predicates): `PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt)`
//! becomes `...WebLoadBalancer(@C,HdrB,Prt)` plus the selection
//! `Hdr == HdrB`. Rules with fewer selections are padded with a constant
//! tautology (`0 == 0`).

use mpr_ndlog::ast::{Expr, Term};
use mpr_ndlog::{parse_program, Program, Rule, Tuple, Value};

/// Error translating a program into meta tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// Tables must have exactly two payload columns in µDlog.
    BadArity(String),
    /// At most two body predicates.
    TooManyPredicates(String),
    /// At most two selection predicates (after equijoin expansion).
    TooManySelections(String),
    /// Head arguments must be variables.
    HeadConstant(String),
    /// Assignments must be to a constant or a variable.
    ComplexAssign(String),
    /// Selections must compare variables/constants.
    ComplexSelection(String),
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::BadArity(r) => write!(f, "rule `{r}`: µDlog tables have 2 columns"),
            MetaError::TooManyPredicates(r) => write!(f, "rule `{r}`: more than 2 predicates"),
            MetaError::TooManySelections(r) => write!(f, "rule `{r}`: more than 2 selections"),
            MetaError::HeadConstant(r) => write!(f, "rule `{r}`: head arguments must be variables"),
            MetaError::ComplexAssign(r) => write!(f, "rule `{r}`: assignment too complex for µDlog"),
            MetaError::ComplexSelection(r) => write!(f, "rule `{r}`: selection too complex for µDlog"),
        }
    }
}

impl std::error::Error for MetaError {}

const C: &str = "C";

fn s(x: impl Into<String>) -> Value {
    Value::Str(x.into())
}

/// Translate one base tuple of the object program into its `Base` meta
/// tuple (`h1` feeds on these).
pub fn base_meta_tuple(t: &Tuple) -> Tuple {
    Tuple::new(
        "Base",
        s(C),
        vec![s(t.table.clone()), t.args.first().cloned().unwrap_or(Value::Wild), t.args.get(1).cloned().unwrap_or(Value::Wild)],
    )
}

/// Translate a µDlog-shaped program into its program-based meta tuples.
pub fn meta_tuples(program: &Program) -> Result<Vec<Tuple>, MetaError> {
    let mut out = Vec::new();
    for rule in &program.rules {
        rule_meta_tuples(rule, &mut out)?;
    }
    Ok(out)
}

fn rule_meta_tuples(rule: &Rule, out: &mut Vec<Tuple>) -> Result<(), MetaError> {
    let rid = rule.id.clone();
    let err_arity = || MetaError::BadArity(rid.clone());
    if rule.body.len() > 2 {
        return Err(MetaError::TooManyPredicates(rid.clone()));
    }
    // --- body predicates, with equijoin expansion ------------------------
    // Repeated variables across predicates get renamed in the second
    // predicate; the equality becomes an explicit selection.
    let mut preds: Vec<(String, Vec<String>)> = Vec::new();
    let mut extra_sels: Vec<(String, String)> = Vec::new(); // (var, renamed)
    let mut seen_vars: Vec<String> = Vec::new();
    for (pi, atom) in rule.body.iter().enumerate() {
        if atom.args.len() != 2 {
            return Err(err_arity());
        }
        let mut names = Vec::new();
        for t in &atom.args {
            match t {
                Term::Var(v) => {
                    if pi > 0 && seen_vars.contains(v) {
                        let renamed = format!("{v}__b");
                        extra_sels.push((v.clone(), renamed.clone()));
                        names.push(renamed);
                    } else {
                        seen_vars.push(v.clone());
                        names.push(v.clone());
                    }
                }
                _ => return Err(MetaError::ComplexSelection(rid.clone())),
            }
        }
        preds.push((atom.table.clone(), names));
    }
    for (tab, names) in &preds {
        out.push(Tuple::new(
            "PredFunc",
            s(C),
            vec![s(rid.clone()), s(tab.clone()), s(names[0].clone()), s(names[1].clone())],
        ));
    }
    // --- head -------------------------------------------------------------
    if rule.head.args.len() != 2 {
        return Err(err_arity());
    }
    let head_names: Vec<String> = std::iter::once(&rule.head.loc)
        .chain(rule.head.args.iter())
        .map(|t| match t {
            Term::Var(v) => Ok(v.clone()),
            _ => Err(MetaError::HeadConstant(rid.clone())),
        })
        .collect::<Result<_, _>>()?;
    out.push(Tuple::new(
        "HeadFunc",
        s(C),
        vec![
            s(rid.clone()),
            s(rule.head.table.clone()),
            s(head_names[0].clone()),
            s(head_names[1].clone()),
            s(head_names[2].clone()),
        ],
    ));
    // --- assignments (explicit + implicit identity for join-bound args) ---
    for (ai, a) in rule.assigns.iter().enumerate() {
        match &a.expr {
            Expr::Const(v) => {
                let cid = format!("asg{ai}");
                out.push(Tuple::new(
                    "Const",
                    s(C),
                    vec![s(rid.clone()), s(cid.clone()), v.clone()],
                ));
                out.push(Tuple::new(
                    "Assign",
                    s(C),
                    vec![s(rid.clone()), s(a.var.clone()), s(cid)],
                ));
            }
            Expr::Var(v) => {
                out.push(Tuple::new(
                    "Assign",
                    s(C),
                    vec![s(rid.clone()), s(a.var.clone()), s(v.clone())],
                ));
            }
            _ => return Err(MetaError::ComplexAssign(rid.clone())),
        }
    }
    let assigned: Vec<&str> = rule.assigns.iter().map(|a| a.var.as_str()).collect();
    for name in &head_names {
        if !assigned.contains(&name.as_str()) {
            // Identity assignment: head arg comes straight from the join.
            out.push(Tuple::new(
                "Assign",
                s(C),
                vec![s(rid.clone()), s(name.clone()), s(name.clone())],
            ));
        }
    }
    // --- selections --------------------------------------------------------
    let mut sels: Vec<(String, String, String, String)> = Vec::new(); // (sid, idl, idr, op)
    for (si, sel) in rule.sels.iter().enumerate() {
        let mut side = |e: &Expr, tag: &str| -> Result<String, MetaError> {
            match e {
                Expr::Var(v) => Ok(v.clone()),
                Expr::Const(v) => {
                    let cid = format!("sel{si}.{tag}");
                    out.push(Tuple::new(
                        "Const",
                        s(C),
                        vec![s(rid.clone()), s(cid.clone()), v.clone()],
                    ));
                    Ok(cid)
                }
                _ => Err(MetaError::ComplexSelection(rid.clone())),
            }
        };
        let idl = side(&sel.lhs, "l")?;
        let idr = side(&sel.rhs, "r")?;
        sels.push((sel.sid(), idl, idr, sel.op.symbol().to_string()));
    }
    for (var, renamed) in &extra_sels {
        sels.push((format!("{var} == {renamed}"), var.clone(), renamed.clone(), "==".into()));
    }
    if sels.len() > 2 {
        return Err(MetaError::TooManySelections(rid.clone()));
    }
    while sels.len() < 2 {
        // Padding tautology over two distinct constant expressions.
        let n = sels.len();
        for tag in ["l", "r"] {
            out.push(Tuple::new(
                "Const",
                s(C),
                vec![s(rid.clone()), s(format!("pad{n}.{tag}")), Value::Int(0)],
            ));
        }
        sels.push((
            format!("pad{n}"),
            format!("pad{n}.l"),
            format!("pad{n}.r"),
            "==".into(),
        ));
    }
    for (sid, idl, idr, op) in sels {
        out.push(Tuple::new(
            "Oper",
            s(C),
            vec![s(rid.clone()), s(sid), s(idl), s(idr), s(op)],
        ));
    }
    Ok(())
}

/// The Fig. 4 meta program for µDlog, in concrete NDlog syntax. 15 meta
/// rules over 13 meta tables, exactly as the paper counts them.
pub fn meta_program() -> Program {
    parse_program(
        "udlog-meta",
        r"
        materialize(Base, infinity, 3, keys(0,1,2)).
        materialize(Tuple, infinity, 3, keys(0,1,2)).
        materialize(HeadFunc, infinity, 5, keys(0)).
        materialize(PredFunc, infinity, 4, keys(0,1)).
        materialize(PredFuncCount, infinity, 2, keys(0)).
        materialize(Assign, infinity, 3, keys(0,1,2)).
        materialize(Const, infinity, 3, keys(0,1)).
        materialize(Oper, infinity, 5, keys(0,1)).
        materialize(TuplePred, infinity, 6, keys(0,1,2,3,4,5)).
        materialize(Join2, infinity, 6, keys(0,1)).
        materialize(Join4, infinity, 10, keys(0,1)).
        materialize(Expr, infinity, 4, keys(0,1,2,3)).
        materialize(HeadVal, infinity, 4, keys(0,1,2,3)).
        materialize(Sel, infinity, 4, keys(0,1,2,3)).

        // h1: base tuples exist as tuples.
        h1 Tuple(@C,Tab,Val1,Val2) :- Base(@C,Tab,Val1,Val2).

        // h2: a rule fires iff there is a join state in which both
        // selections hold and the head values are available.
        h2 Tuple(@L,Tab,Val1,Val2) :- HeadFunc(@C,Rul,Tab,Loc,Arg1,Arg2),
            HeadVal(@C,Rul,JID,Loc,L), HeadVal(@C,Rul,JID1,Arg1,Val1),
            HeadVal(@C,Rul,JID2,Arg2,Val2), Sel(@C,Rul,JIDa,SID,Val),
            Sel(@C,Rul,JIDb,SIDP,ValP), Val == true, ValP == true,
            true == f_match(JID1,JID), true == f_match(JID2,JID),
            true == f_match(JIDa,JID), true == f_match(JIDb,JID), SID != SIDP.

        // p1: each concrete tuple instantiates each syntactic predicate.
        p1 TuplePred(@C,Rul,Tab,Arg1,Arg2,Val1,Val2) :- Tuple(@C,Tab,Val1,Val2),
            PredFunc(@C,Rul,Tab,Arg1,Arg2).

        // p2: how many predicates does the rule join?
        p2 PredFuncCount(@C,Rul,a_count<Tab>) :- PredFunc(@C,Rul,Tab,Arg1,Arg2).

        // j1: two-predicate rules take the full cross product (selections
        // filter it later).
        j1 Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4) :-
            TuplePred(@C,Rul,Tab,Arg1,Arg2,Val1,Val2),
            TuplePred(@C,Rul,TabP,Arg3,Arg4,Val3,Val4),
            PredFuncCount(@C,Rul,N), N == 2, Tab != TabP, JID := f_unique().

        // j2: single-predicate rules.
        j2 Join2(@C,Rul,JID,Arg1,Arg2,Val1,Val2) :- TuplePred(@C,Rul,Tab,Arg1,Arg2,Val1,Val2),
            PredFuncCount(@C,Rul,N), N == 1, JID := f_unique().

        // e1: constants are valid in every join state (wildcard JID).
        e1 Expr(@C,Rul,JID,ID,Val) :- Const(@C,Rul,ID,Val), JID := *.

        // e2..e7: every join column is an expression in its join state.
        e2 Expr(@C,Rul,JID,Arg1,Val1) :- Join2(@C,Rul,JID,Arg1,Arg2,Val1,Val2).
        e3 Expr(@C,Rul,JID,Arg2,Val2) :- Join2(@C,Rul,JID,Arg1,Arg2,Val1,Val2).
        e4 Expr(@C,Rul,JID,Arg1,Val1) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).
        e5 Expr(@C,Rul,JID,Arg2,Val2) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).
        e6 Expr(@C,Rul,JID,Arg3,Val3) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).
        e7 Expr(@C,Rul,JID,Arg4,Val4) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).

        // a1: head values come from assignments over expressions.
        a1 HeadVal(@C,Rul,JID,Arg,Val) :- Assign(@C,Rul,Arg,ID), Expr(@C,Rul,JID,ID,Val).

        // s1: selections evaluate one operator over two expressions that
        // agree on the join state.
        s1 Sel(@C,Rul,JID,SID,Val) :- Oper(@C,Rul,SID,IDl,IDr,Opr),
            Expr(@C,Rul,JIDl,IDl,Vl), Expr(@C,Rul,JIDr,IDr,Vr),
            true == f_match(JIDl,JIDr), JID := f_join(JIDl,JIDr),
            Val := f_apply(Opr,Vl,Vr), IDl != IDr.
        ",
    )
    .expect("meta program parses")
}

/// Run the object program *through the meta program*: translate it to meta
/// tuples, feed the base tuples, and read back the derived `Tuple` facts
/// for `table`.
pub fn meta_interpret(
    program: &Program,
    base: &[Tuple],
    table: &str,
) -> Result<Vec<Tuple>, String> {
    let meta = meta_program();
    let mut engine = mpr_runtime::Engine::new(&meta).map_err(|e| e.to_string())?;
    let prog_tuples = meta_tuples(program).map_err(|e| e.to_string())?;
    engine.insert_all(prog_tuples).map_err(|e| e.to_string())?;
    for t in base {
        engine.insert(base_meta_tuple(t)).map_err(|e| e.to_string())?;
    }
    // Tuple(@L, Tab, V1, V2) with Tab == table.
    let mut out: Vec<Tuple> = Vec::new();
    for t in engine.tuples("Tuple") {
        if t.args.first().and_then(|v| v.as_str()) == Some(table) {
            out.push(Tuple::new(
                table,
                t.loc.clone(),
                vec![t.args[1].clone(), t.args[2].clone()],
            ));
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::q1_program;
    use mpr_ndlog::Value as V;

    fn base_fixture() -> Vec<Tuple> {
        vec![
            Tuple::new("WebLoadBalancer", V::str("C"), vec![V::Int(80), V::Int(2)]),
            Tuple::new("PacketIn", V::str("C"), vec![V::Int(1), V::Int(80)]),
            Tuple::new("PacketIn", V::str("C"), vec![V::Int(2), V::Int(80)]),
            Tuple::new("PacketIn", V::str("C"), vec![V::Int(3), V::Int(80)]),
            Tuple::new("PacketIn", V::str("C"), vec![V::Int(3), V::Int(53)]),
        ]
    }

    /// Direct evaluation oracle: run the object program on the base engine
    /// (all state, set semantics) and collect `table` tuples.
    fn direct(program: &Program, base: &[Tuple], table: &str) -> Vec<Tuple> {
        // Strip event declarations: the meta model persists everything.
        let mut p = program.clone();
        p.catalog = mpr_ndlog::Catalog::new();
        let mut engine = mpr_runtime::Engine::new(&p).unwrap();
        for t in base {
            engine.insert(t.clone()).unwrap();
        }
        let mut v = engine.tuples(table);
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn meta_counts_match_the_paper() {
        let m = meta_program();
        assert_eq!(m.rules.len(), 15, "µDlog requires 15 meta rules");
        // 13 meta tuple kinds = 14 declared tables minus the derived-only
        // PredFuncCount helper? No: the paper counts 13 *meta tuples*; we
        // declare 14 tables because PredFuncCount materializes the count
        // explicitly. Verify the 13 paper tables are all present.
        for t in [
            "Base", "Tuple", "HeadFunc", "PredFunc", "Assign", "Const", "Oper", "TuplePred",
            "Join2", "Join4", "Expr", "HeadVal", "Sel",
        ] {
            assert!(m.catalog.get(t).is_some(), "missing meta table {t}");
        }
    }

    #[test]
    fn meta_tuples_for_fig2_rule() {
        let p = q1_program();
        let ts = meta_tuples(&p).unwrap();
        // r7 contributes HeadFunc, PredFunc, Oper×2, Const (sel consts + assign).
        let r7: Vec<&Tuple> = ts
            .iter()
            .filter(|t| t.args.first().and_then(|v| v.as_str()) == Some("r7"))
            .collect();
        assert!(r7.iter().any(|t| t.table == "HeadFunc"));
        assert!(r7.iter().any(|t| t.table == "PredFunc"));
        assert_eq!(r7.iter().filter(|t| t.table == "Oper").count(), 2);
        // Swi==2 rhs, Hdr==80 rhs, Prt:=2 → three constants.
        assert_eq!(r7.iter().filter(|t| t.table == "Const").count(), 3);
        // Identity assigns for Swi and Hdr plus the explicit Prt assign.
        assert_eq!(r7.iter().filter(|t| t.table == "Assign").count(), 3);
    }

    #[test]
    fn equijoin_expansion_for_r1() {
        let p = q1_program();
        let ts = meta_tuples(&p).unwrap();
        // r1 shares Hdr between PacketIn and WebLoadBalancer: the second
        // occurrence is renamed and an equality selection appears.
        let r1_opers: Vec<String> = ts
            .iter()
            .filter(|t| t.table == "Oper" && t.args[0] == V::str("r1"))
            .map(|t| t.args[1].as_str().unwrap().to_string())
            .collect();
        assert!(r1_opers.contains(&"Swi == 1".to_string()), "{r1_opers:?}");
        assert!(r1_opers.contains(&"Hdr == Hdr__b".to_string()), "{r1_opers:?}");
    }

    #[test]
    fn meta_interpretation_matches_direct_evaluation() {
        // THE differential test: Fig. 4 meta program ≡ the engine, on the
        // Fig. 2 controller program.
        let p = q1_program();
        let base = base_fixture();
        let via_meta = meta_interpret(&p, &base, "FlowTable").unwrap();
        let direct = direct(&p, &base, "FlowTable");
        assert_eq!(via_meta, direct, "meta ≠ direct");
        // Sanity: the buggy program derives S2/S1 entries but nothing for
        // HTTP at S3 (the Fig. 1 symptom).
        assert!(!via_meta.is_empty());
        assert!(via_meta
            .iter()
            .all(|t| !(t.loc == V::Int(3) && t.args[0] == V::Int(80))));
        // DNS at S3 works (p3).
        assert!(via_meta
            .iter()
            .any(|t| t.loc == V::Int(3) && t.args[0] == V::Int(53)));
    }

    #[test]
    fn meta_interpretation_matches_after_repair() {
        // Apply the intuitive fix (Swi==2 → Swi==3 in r7) and check the
        // meta interpretation again — now the S3 entry appears.
        use mpr_ndlog::patch::{Edit, Patch};
        use mpr_ndlog::{ConstSite, ExprSide};
        let p = Patch::single(Edit::SetConst {
            rule: "r7".into(),
            site: ConstSite::Selection { idx: 0, side: ExprSide::Rhs, path: vec![] },
            value: V::Int(3),
        })
        .apply(&q1_program())
        .unwrap();
        let base = base_fixture();
        let via_meta = meta_interpret(&p, &base, "FlowTable").unwrap();
        let direct = direct(&p, &base, "FlowTable");
        assert_eq!(via_meta, direct);
        assert!(via_meta
            .iter()
            .any(|t| t.loc == V::Int(3) && t.args[0] == V::Int(80) && t.args[1] == V::Int(2)));
    }

    #[test]
    fn non_udlog_programs_are_rejected() {
        let p = mpr_ndlog::parse_program("bad", "x T(@A,B) :- S(@A,B,C,D), B == 1.").unwrap();
        assert!(matches!(meta_tuples(&p), Err(MetaError::BadArity(_))));
        let p = mpr_ndlog::parse_program(
            "bad2",
            "x T(@A,B,E) :- S(@A,B,E), U(@A,B,E), W(@A,B,E), B == 1.",
        )
        .unwrap();
        assert!(matches!(meta_tuples(&p), Err(MetaError::TooManyPredicates(_))));
        let p =
            mpr_ndlog::parse_program("bad3", "x T(@A,B,Z) :- S(@A,B,Z), B == 1, Z := B * 2 + 1.")
                .unwrap();
        assert!(matches!(meta_tuples(&p), Err(MetaError::ComplexAssign(_))));
    }
}
