//! # mpr-core — meta provenance and automated repair
//!
//! The paper's primary contribution. Classical provenance explains *data*
//! in terms of data; **meta provenance** (§3) treats the program as just
//! another kind of data: the syntactic elements of the controller program
//! become *meta tuples*, the operational semantics of the language become
//! *meta rules*, and a diagnostic query over the meta program yields a
//! forest of trees whose completions — once their constraint pools are
//! satisfiable — are *repair candidates*.
//!
//! - [`metamodel`] — the µDlog meta tuples and the Fig. 4 meta program,
//!   *runnable* on `mpr-runtime` (a differential test pins it against
//!   direct evaluation);
//! - [`metafull`] — the arity-generic meta model of Appendix B.1/Table 4,
//!   expanding template rules per arity and selection count; it interprets
//!   the five-tuple scenario programs through the meta program;
//! - [`cost`] — the §3.5 plausibility cost model and search budget;
//! - [`explore`] — cost-ordered candidate generation for missing tuples
//!   (§3.3–§3.5) and existing tuples (§4.2, Fig. 5);
//! - [`repair`] — candidates: program patches, tuple insertions/deletions/
//!   changes;
//! - [`debugger`] — the end-to-end loop with backtesting (KS filter, §4.3)
//!   and multi-query optimization (§4.4), including the Fig. 9a phase
//!   timings;
//! - [`scenarios`] — the five §5.3 case studies plus the Fig. 9c / Fig. 10
//!   scaling helpers;
//! - [`chaos`] — the fault-schedule chaos search: seeded random
//!   [`mpr_sdn::FaultPlan`]s swept over the scenarios, survivors minimized
//!   into pinned regression cases.

#![warn(missing_docs)]

pub mod chaos;
pub mod cost;
pub mod debugger;
pub mod explore;
pub mod metafull;
pub mod metamodel;
pub mod repair;
pub mod scenarios;

pub use chaos::{random_plan, ChaosOutcome, ChaosReport, FaultClass};
pub use cost::{CostModel, SearchBudget};
pub use debugger::{repair_scenario, try_repair_scenario, CandidateOutcome, Debugger, PhaseTimings, RepairReport};
pub use explore::{generate_existing, generate_missing, DerivationRecord, ExploreStats, World};
pub use repair::{Candidate, Repair};
pub use scenarios::{Effect, Scenario, Symptom};
