//! The arity-generic NDlog meta model (Appendix B.1, Table 4).
//!
//! The paper's full meta model is written with *template rules*: `Base(k)`
//! stands for a family of tables with `k` columns, `Vals[k]` expands to
//! `Val1, …, Valk`, and a template rule expands into one concrete rule per
//! arity (Table 4 lists the procedures). This module implements that
//! expansion programmatically: [`meta_program_k`] generates the concrete
//! meta program for payload arities `1..=k`, covering
//!
//! - `h1(k)` — `Tuple_k` from `Base_k`;
//! - `p1(k)` / `p2` — predicate instantiation and counting;
//! - `j2(k)` — single-predicate joins (`Join_k` with a fresh JID);
//! - `j1(k1,k2)` — two-predicate cross products (`Join_{k1}_{k2}`);
//! - `e*(k)` — one expression per join column, plus constants (`e1`);
//! - `a1`, `s1` — assignments and selections (arity-independent);
//! - `h2(k, m)` — one firing rule per (arity, selection count), the same
//!   expansion the paper applies to its `h7` template (`CID{k} > CID{k'}`
//!   orders constraint atoms so permutations are not double-counted).
//!
//! Where the µDlog model (mod [`crate::metamodel`]) is fixed at two
//! columns, this model interprets the *five-tuple* scenario programs
//! (Q2/Q3/Q5) through the meta program as well — the differential tests
//! below pin `meta_k(P) ≡ eval(P)` for mixed-arity programs.

use mpr_ndlog::ast::{Expr, Term};
use mpr_ndlog::{parse_program, Program, Rule, Tuple, Value};

const C: &str = "C";

fn s(x: impl Into<String>) -> Value {
    Value::Str(x.into())
}

/// Expand `Vals[k]` (Table 4 row 2): `prefix1, …, prefixk`.
pub fn expand_args(prefix: &str, k: usize) -> Vec<String> {
    (1..=k).map(|i| format!("{prefix}{i}")).collect()
}

/// Concrete meta-table name for an arity (`Base(k)` → `Base3`).
pub fn table_k(base: &str, k: usize) -> String {
    format!("{base}{k}")
}

/// Generate the full meta program for payload arities `1..=max_arity`.
pub fn meta_program_k(max_arity: usize) -> Program {
    assert!(max_arity >= 1, "arity must be positive");
    let mut src = String::new();
    // --- arity-independent tables -----------------------------------
    src.push_str("materialize(PredFuncAny, infinity, 2, keys(0,1)).\n");
    src.push_str("materialize(PredFuncCount, infinity, 2, keys(0)).\n");
    src.push_str("materialize(SelCount, infinity, 2, keys(0)).\n");
    src.push_str("materialize(Assign, infinity, 3, keys(0,1,2)).\n");
    src.push_str("materialize(Const, infinity, 3, keys(0,1)).\n");
    src.push_str("materialize(Oper, infinity, 5, keys(0,1)).\n");
    src.push_str("materialize(Expr, infinity, 4, keys(0,1,2,3)).\n");
    src.push_str("materialize(HeadVal, infinity, 4, keys(0,1,2,3)).\n");
    src.push_str("materialize(Sel, infinity, 4, keys(0,1,2,3)).\n");
    // --- per-arity tables --------------------------------------------
    for k in 1..=max_arity {
        let all = |n: usize| {
            (0..n).map(|i| i.to_string()).collect::<Vec<_>>().join(",")
        };
        src.push_str(&format!("materialize(Base{k}, infinity, {}, keys({})).\n", k + 1, all(k + 1)));
        src.push_str(&format!("materialize(Tuple{k}, infinity, {}, keys({})).\n", k + 1, all(k + 1)));
        src.push_str(&format!("materialize(HeadFunc{k}, infinity, {}, keys(0)).\n", k + 3));
        src.push_str(&format!("materialize(PredFunc{k}, infinity, {}, keys(0,1)).\n", k + 2));
        src.push_str(&format!(
            "materialize(TuplePred{k}, infinity, {}, keys({})).\n",
            2 * k + 2,
            all(2 * k + 2)
        ));
        src.push_str(&format!("materialize(Join{k}, infinity, {}, keys(0,1)).\n", 2 * k + 2));
    }
    for k1 in 1..=max_arity {
        for k2 in 1..=max_arity {
            src.push_str(&format!(
                "materialize(JoinP{k1}x{k2}, infinity, {}, keys(0,1)).\n",
                2 * (k1 + k2) + 2
            ));
        }
    }
    // --- rules ----------------------------------------------------------
    for k in 1..=max_arity {
        let vals = expand_args("Val", k).join(",");
        let args = expand_args("Arg", k).join(",");
        // h1(k): base tuples exist.
        src.push_str(&format!(
            "h1x{k} Tuple{k}(@C,Tab,{vals}) :- Base{k}(@C,Tab,{vals}).\n"
        ));
        // p1(k): instantiate syntactic predicates.
        src.push_str(&format!(
            "p1x{k} TuplePred{k}(@C,Rul,Tab,{args},{vals}) :- Tuple{k}(@C,Tab,{vals}), PredFunc{k}(@C,Rul,Tab,{args}).\n"
        ));
        // p2(k): predicates of every arity flow into one relation so the
        // count sums across arities (mixed-arity joins, e.g. Q5's f3).
        src.push_str(&format!(
            "pAx{k} PredFuncAny(@C,Rul,Tab) :- PredFunc{k}(@C,Rul,Tab,{args}).\n"
        ));
        // j2(k): single-predicate join.
        src.push_str(&format!(
            "j2x{k} Join{k}(@C,Rul,JID,{args},{vals}) :- TuplePred{k}(@C,Rul,Tab,{args},{vals}), PredFuncCount(@C,Rul,N), N == 1, JID := f_unique().\n"
        ));
        // e*(k): one expression per join column.
        for i in 1..=k {
            src.push_str(&format!(
                "e{i}x{k} Expr(@C,Rul,JID,Arg{i},Val{i}) :- Join{k}(@C,Rul,JID,{args},{vals}).\n"
            ));
        }
        // h2(k, m): one firing rule per (arity, selection count) — the
        // paper expands its h7 template the same way (CID{k} > CID{k'}
        // orders the constraint atoms to avoid permutation duplicates).
        let head_vals: String = (1..=k)
            .map(|i| format!("HeadVal(@C,Rul,JID{i},Arg{i},Val{i}), true == f_match(JID{i},JID), "))
            .collect();
        for m in 1..=4usize {
            let mut sels = String::new();
            for j in 1..=m {
                sels.push_str(&format!(
                    "Sel(@C,Rul,SJ{j},SID{j},SV{j}), SV{j} == true, true == f_match(SJ{j},JID), "
                ));
                if j > 1 {
                    sels.push_str(&format!("SID{} < SID{j}, ", j - 1));
                }
            }
            src.push_str(&format!(
                "h2x{k}x{m} Tuple{k}(@L,Tab,{vals}) :- HeadFunc{k}(@C,Rul,Tab,Loc,{args}), \
                 HeadVal(@C,Rul,JID,Loc,L), {head_vals}{sels}\
                 SelCount(@C,Rul,M), M == {m}.\n"
            ));
        }
    }
    // j1(k1,k2): two-predicate cross products, mixed arities.
    for k1 in 1..=max_arity {
        for k2 in 1..=max_arity {
            let a1 = expand_args("Arg", k1).join(",");
            let v1 = expand_args("Val", k1).join(",");
            let a2 = expand_args("Brg", k2).join(",");
            let v2 = expand_args("Wal", k2).join(",");
            src.push_str(&format!(
                "j1x{k1}x{k2} JoinP{k1}x{k2}(@C,Rul,JID,{a1},{a2},{v1},{v2}) :- \
                 TuplePred{k1}(@C,Rul,Tab,{a1},{v1}), TuplePred{k2}(@C,Rul,TabP,{a2},{v2}), \
                 PredFuncCount(@C,Rul,N), N == 2, Tab != TabP, JID := f_unique().\n"
            ));
            for i in 1..=k1 {
                src.push_str(&format!(
                    "eL{i}x{k1}x{k2} Expr(@C,Rul,JID,Arg{i},Val{i}) :- JoinP{k1}x{k2}(@C,Rul,JID,{a1},{a2},{v1},{v2}).\n"
                ));
            }
            for i in 1..=k2 {
                src.push_str(&format!(
                    "eR{i}x{k1}x{k2} Expr(@C,Rul,JID,Brg{i},Wal{i}) :- JoinP{k1}x{k2}(@C,Rul,JID,{a1},{a2},{v1},{v2}).\n"
                ));
            }
        }
    }
    // Arity-independent: counting, constants, assignments, selections.
    src.push_str("p2 PredFuncCount(@C,Rul,a_count<Tab>) :- PredFuncAny(@C,Rul,Tab).\n");
    src.push_str("sc SelCount(@C,Rul,a_count<SID>) :- Oper(@C,Rul,SID,IDl,IDr,Opr).\n");
    src.push_str("e0 Expr(@C,Rul,JID,ID,Val) :- Const(@C,Rul,ID,Val), JID := *.\n");
    src.push_str("a1 HeadVal(@C,Rul,JID,Arg,Val) :- Assign(@C,Rul,Arg,ID), Expr(@C,Rul,JID,ID,Val).\n");
    src.push_str(
        "s1 Sel(@C,Rul,JID,SID,Val) :- Oper(@C,Rul,SID,IDl,IDr,Opr), Expr(@C,Rul,JIDl,IDl,Vl), \
         Expr(@C,Rul,JIDr,IDr,Vr), true == f_match(JIDl,JIDr), JID := f_join(JIDl,JIDr), \
         Val := f_apply(Opr,Vl,Vr), IDl != IDr.\n",
    );
    parse_program("ndlog-meta-full", &src).expect("full meta program parses")
}

/// Translate a base tuple into its arity-tagged `Base{k}` meta tuple.
pub fn base_meta_tuple_k(t: &Tuple) -> Tuple {
    let k = t.args.len();
    let mut args = vec![s(t.table.clone())];
    args.extend(t.args.iter().cloned());
    Tuple::new(table_k("Base", k), s(C), args)
}

/// Errors from the arity-generic translator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaKError {
    /// More than two body predicates.
    TooManyPredicates(String),
    /// More than four selections after equijoin expansion.
    TooManySelections(String),
    /// Head arguments must be variables.
    HeadConstant(String),
    /// Assignments must be constant or variable.
    ComplexAssign(String),
    /// Selections must compare variables/constants.
    ComplexSelection(String),
}

impl std::fmt::Display for MetaKError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaKError::TooManyPredicates(r) => write!(f, "rule `{r}`: >2 predicates"),
            MetaKError::TooManySelections(r) => write!(f, "rule `{r}`: >4 selections"),
            MetaKError::HeadConstant(r) => write!(f, "rule `{r}`: constant head argument"),
            MetaKError::ComplexAssign(r) => write!(f, "rule `{r}`: complex assignment"),
            MetaKError::ComplexSelection(r) => write!(f, "rule `{r}`: complex selection"),
        }
    }
}

impl std::error::Error for MetaKError {}

/// Translate a program into arity-tagged meta tuples (`HeadFunc{k}`,
/// `PredFunc{k}`, `Const`, `Oper`, `Assign`).
pub fn meta_tuples_k(program: &Program) -> Result<Vec<Tuple>, MetaKError> {
    let mut out = Vec::new();
    for rule in &program.rules {
        rule_meta_tuples_k(rule, &mut out)?;
    }
    Ok(out)
}

fn rule_meta_tuples_k(rule: &Rule, out: &mut Vec<Tuple>) -> Result<(), MetaKError> {
    let rid = rule.id.clone();
    if rule.body.len() > 2 {
        return Err(MetaKError::TooManyPredicates(rid));
    }
    // Body predicates with equijoin expansion (Table 4's repeated-variable
    // convention): repeated vars in the second predicate are renamed and
    // re-equated through a selection.
    let mut extra_sels: Vec<(String, String)> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    for (pi, atom) in rule.body.iter().enumerate() {
        let k = atom.args.len();
        let mut names = Vec::new();
        for t in &atom.args {
            match t {
                Term::Var(v) => {
                    if pi > 0 && seen.contains(v) {
                        let renamed = format!("{v}__b");
                        extra_sels.push((v.clone(), renamed.clone()));
                        names.push(renamed);
                    } else {
                        seen.push(v.clone());
                        names.push(v.clone());
                    }
                }
                _ => return Err(MetaKError::ComplexSelection(rid.clone())),
            }
        }
        let mut args = vec![s(rid.clone()), s(atom.table.clone())];
        args.extend(names.iter().map(|n| s(n.clone())));
        out.push(Tuple::new(table_k("PredFunc", k), s(C), args));
    }
    // Head.
    let hk = rule.head.args.len();
    let head_names: Vec<String> = std::iter::once(&rule.head.loc)
        .chain(rule.head.args.iter())
        .map(|t| match t {
            Term::Var(v) => Ok(v.clone()),
            _ => Err(MetaKError::HeadConstant(rid.clone())),
        })
        .collect::<Result<_, _>>()?;
    let mut args = vec![s(rid.clone()), s(rule.head.table.clone())];
    args.extend(head_names.iter().map(|n| s(n.clone())));
    out.push(Tuple::new(table_k("HeadFunc", hk), s(C), args));
    // Assignments (explicit + identity).
    for (ai, a) in rule.assigns.iter().enumerate() {
        match &a.expr {
            Expr::Const(v) => {
                let cid = format!("asg{ai}");
                out.push(Tuple::new("Const", s(C), vec![s(rid.clone()), s(cid.clone()), v.clone()]));
                out.push(Tuple::new("Assign", s(C), vec![s(rid.clone()), s(a.var.clone()), s(cid)]));
            }
            Expr::Var(v) => {
                out.push(Tuple::new(
                    "Assign",
                    s(C),
                    vec![s(rid.clone()), s(a.var.clone()), s(v.clone())],
                ));
            }
            _ => return Err(MetaKError::ComplexAssign(rid)),
        }
    }
    let assigned: Vec<&str> = rule.assigns.iter().map(|a| a.var.as_str()).collect();
    for name in &head_names {
        if !assigned.contains(&name.as_str()) {
            out.push(Tuple::new(
                "Assign",
                s(C),
                vec![s(rid.clone()), s(name.clone()), s(name.clone())],
            ));
        }
    }
    // Selections (+ padding to the two-selection convention).
    let mut sels: Vec<(String, String, String, String)> = Vec::new();
    for (si, sel) in rule.sels.iter().enumerate() {
        let mut side = |e: &Expr, tag: &str| -> Result<String, MetaKError> {
            match e {
                Expr::Var(v) => Ok(v.clone()),
                Expr::Const(v) => {
                    let cid = format!("sel{si}.{tag}");
                    out.push(Tuple::new(
                        "Const",
                        s(C),
                        vec![s(rid.clone()), s(cid.clone()), v.clone()],
                    ));
                    Ok(cid)
                }
                _ => Err(MetaKError::ComplexSelection(rid.clone())),
            }
        };
        let idl = side(&sel.lhs, "l")?;
        let idr = side(&sel.rhs, "r")?;
        sels.push((sel.sid(), idl, idr, sel.op.symbol().to_string()));
    }
    for (var, renamed) in &extra_sels {
        sels.push((format!("{var} == {renamed}"), var.clone(), renamed.clone(), "==".into()));
    }
    if sels.len() > 4 {
        return Err(MetaKError::TooManySelections(rid));
    }
    if sels.is_empty() {
        // Zero-selection rules get one tautology so h2(k, 1) covers them.
        for tag in ["l", "r"] {
            out.push(Tuple::new(
                "Const",
                s(C),
                vec![s(rid.clone()), s(format!("pad0.{tag}")), Value::Int(0)],
            ));
        }
        sels.push(("pad0".into(), "pad0.l".into(), "pad0.r".into(), "==".into()));
    }
    for (sid, idl, idr, op) in sels {
        out.push(Tuple::new("Oper", s(C), vec![s(rid.clone()), s(sid), s(idl), s(idr), s(op)]));
    }
    Ok(())
}

/// Interpret `program` through the arity-generic meta program and read back
/// the derived tuples of `table` (payload arity `k`).
pub fn meta_interpret_k(
    program: &Program,
    base: &[Tuple],
    table: &str,
    k: usize,
) -> Result<Vec<Tuple>, String> {
    let max_arity = program
        .rules
        .iter()
        .flat_map(|r| {
            std::iter::once(r.head.args.len()).chain(r.body.iter().map(|a| a.args.len()))
        })
        .chain(base.iter().map(|t| t.args.len()))
        .max()
        .unwrap_or(1);
    let meta = meta_program_k(max_arity);
    let mut engine = mpr_runtime::Engine::new(&meta).map_err(|e| e.to_string())?;
    engine
        .insert_all(meta_tuples_k(program).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    for t in base {
        engine.insert(base_meta_tuple_k(t)).map_err(|e| e.to_string())?;
    }
    let mut out = Vec::new();
    for t in engine.tuples(&table_k("Tuple", k)) {
        if t.args.first().and_then(|v| v.as_str()) == Some(table) {
            out.push(Tuple::new(table, t.loc.clone(), t.args[1..].to_vec()));
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::Value as V;

    fn direct(program: &Program, base: &[Tuple], table: &str) -> Vec<Tuple> {
        let mut p = program.clone();
        p.catalog = mpr_ndlog::Catalog::new();
        let mut engine = mpr_runtime::Engine::new(&p).unwrap();
        for t in base {
            engine.insert(t.clone()).unwrap();
        }
        let mut v = engine.tuples(table);
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn template_expansion_helpers() {
        assert_eq!(expand_args("Val", 3), vec!["Val1", "Val2", "Val3"]);
        assert_eq!(table_k("Base", 5), "Base5");
    }

    #[test]
    fn full_meta_program_parses_and_scales() {
        for k in 1..=6 {
            let m = meta_program_k(k);
            assert!(m.validate().is_ok(), "arity {k}");
            // One h1/h2/p1/p2/j2 per arity plus per-column e-rules plus the
            // k1×k2 cross-product family plus 3 shared rules.
            assert!(m.rules.len() >= 5 * k + 3);
        }
    }

    #[test]
    fn five_tuple_program_through_the_meta_model() {
        // Q2's forwarding program: 6-column PacketIn, 5-column FlowTable —
        // far beyond µDlog's 2 columns.
        let scenario = crate::scenarios::Scenario::q2_forwarding_error();
        let base: Vec<Tuple> = vec![
            Tuple::new(
                "PacketIn",
                V::str("C"),
                vec![V::Int(3), V::Int(5), V::Int(17), V::Int(1005), V::Int(53), V::Int(0)],
            ),
            Tuple::new(
                "PacketIn",
                V::str("C"),
                vec![V::Int(3), V::Int(6), V::Int(17), V::Int(1006), V::Int(53), V::Int(0)],
            ),
            Tuple::new(
                "PacketIn",
                V::str("C"),
                vec![V::Int(1), V::Int(2), V::Int(10), V::Int(2002), V::Int(80), V::Int(0)],
            ),
        ];
        let via_meta = meta_interpret_k(&scenario.program, &base, "FlowTable", 5).unwrap();
        let oracle = direct(&scenario.program, &base, "FlowTable");
        assert_eq!(via_meta, oracle);
        // Client 5 is allowed (Sip < 6), client 6 is not — the Q2 symptom,
        // visible through the meta program.
        assert!(via_meta.iter().any(|t| t.args[0] == V::Int(5)));
        assert!(!via_meta.iter().any(|t| t.args[0] == V::Int(6)));
    }

    #[test]
    fn mixed_arity_join_through_the_meta_model() {
        // Q5's f3 joins a 6-column event with a 3-column state table.
        let program = parse_program(
            "mixed",
            r"
            f3 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt), Learned(@C,Swi,Dip,Prt).
            ",
        )
        .unwrap();
        let base = vec![
            Tuple::new(
                "PacketIn",
                V::str("C"),
                vec![V::Int(2), V::Int(30), V::Int(10), V::Int(4000), V::Int(80), V::Int(3)],
            ),
            Tuple::new("Learned", V::str("C"), vec![V::Int(2), V::Int(10), V::Int(1)]),
            Tuple::new("Learned", V::str("C"), vec![V::Int(2), V::Int(99), V::Int(7)]),
        ];
        let via_meta = meta_interpret_k(&program, &base, "FlowTable", 5).unwrap();
        let oracle = direct(&program, &base, "FlowTable");
        assert_eq!(via_meta, oracle);
        assert_eq!(via_meta.len(), 1, "only the Dip=10 learned entry joins");
        assert_eq!(via_meta[0].args.last(), Some(&V::Int(1)));
    }

    #[test]
    fn q1_through_both_meta_models_agrees() {
        // The 2-column program runs through both the µDlog model and the
        // arity-generic model; they must agree with each other.
        let program = crate::scenarios::q1_program();
        let base = vec![
            Tuple::new("WebLoadBalancer", V::str("C"), vec![V::Int(80), V::Int(2)]),
            Tuple::new("PacketIn", V::str("C"), vec![V::Int(1), V::Int(80)]),
            Tuple::new("PacketIn", V::str("C"), vec![V::Int(3), V::Int(80)]),
        ];
        let udlog = crate::metamodel::meta_interpret(&program, &base, "FlowTable").unwrap();
        let full = meta_interpret_k(&program, &base, "FlowTable", 2).unwrap();
        assert_eq!(udlog, full);
    }

    #[test]
    fn translator_rejects_what_the_model_cannot_express() {
        let p = parse_program("bad", "x T(@A,B) :- S(@A,B), U(@A,B), W(@A,B), B == 1.").unwrap();
        assert!(matches!(meta_tuples_k(&p), Err(MetaKError::TooManyPredicates(_))));
        let p = parse_program("bad2", "x T(@A,B) :- S(@A,B), B := B * 2 + 1.").unwrap();
        assert!(matches!(meta_tuples_k(&p), Err(MetaKError::ComplexAssign(_))));
    }
}
