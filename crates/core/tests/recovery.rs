//! The CI `recovery` suite: kill-and-restart crash injection against the
//! WAL-journaled engine. The acceptance bar: ≥ 200 randomized crash
//! points across Q1–Q5, in both loop phases (mid-fixpoint and
//! mid-backtest), every one recovering a prefix-consistent store with
//! zero panics — and the repair loop still converging after a restart.

use mpr_core::chaos::{self, KillPhase};
use mpr_core::debugger::Debugger;
use mpr_core::scenarios::Scenario;
use mpr_runtime::{Durability, EvalStrategy, Options, WalOptions};

fn opts(strategy: EvalStrategy) -> Options {
    Options {
        record_events: false,
        strategy,
        durability: Durability::Mem, // capture_wal overrides this with a WAL
        ..Options::default()
    }
}

/// How many injections of each scenario's workload the capture runs.
/// Enough to journal schema declarations, seeds, and real traffic-driven
/// derivations; small enough that a 200+-point sweep stays cheap.
const CAPTURE_INJECTIONS: usize = 6;

/// The flagship sweep: 5 scenarios × 2 phases × (19 randomized + 2
/// endpoint) crash points = 210 kill-and-restarts, every one
/// prefix-consistent, none panicking or erroring.
#[test]
fn kill_sweep_is_prefix_consistent_everywhere() {
    let scenarios = Scenario::all();
    let report = chaos::kill_sweep(&scenarios, &opts(EvalStrategy::Batch), 19, 0xdead, CAPTURE_INJECTIONS)
        .expect("kill sweep capture failed");
    assert!(
        report.outcomes.len() >= 200,
        "sweep too small: {} crash points",
        report.outcomes.len()
    );
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "{} of {} crash points failed; first: {:?}\n{}",
        failures.len(),
        report.outcomes.len(),
        failures.first(),
        report.render_table()
    );
    // The sweep must actually exercise both regimes: cuts that landed on
    // record boundaries (clean) and cuts that tore a record (lossy), and
    // restarts that replayed real state.
    assert!(report.outcomes.iter().any(|o| o.clean && o.ops_applied > 0));
    assert!(report.outcomes.iter().any(|o| !o.clean));
    assert!(report.outcomes.iter().any(|o| o.cut == 0 && o.ops_applied == 0));
}

/// The sharded engine journals through the same WAL path; crash points
/// against its logs recover identically.
#[test]
fn kill_sweep_is_prefix_consistent_under_shards() {
    let scenarios = [Scenario::q1_copy_paste(), Scenario::q3_policy_update()];
    let report = chaos::kill_sweep(&scenarios, &opts(EvalStrategy::Shards(4)), 8, 0xbeef, CAPTURE_INJECTIONS)
        .expect("sharded kill sweep capture failed");
    assert_eq!(report.outcomes.len(), 2 * 2 * 10);
    let failures = report.failures();
    assert!(failures.is_empty(), "sharded sweep failed: {:?}", failures.first());
}

/// Same inputs, same verdicts: the sweep is deterministic end to end
/// (captures, cut positions, recovery outcomes).
#[test]
fn kill_sweep_is_deterministic() {
    let scenarios = [Scenario::q1_copy_paste()];
    let a = chaos::kill_sweep(&scenarios, &opts(EvalStrategy::Batch), 6, 7, CAPTURE_INJECTIONS).unwrap();
    let b = chaos::kill_sweep(&scenarios, &opts(EvalStrategy::Batch), 6, 7, CAPTURE_INJECTIONS).unwrap();
    assert_eq!(a, b, "kill sweep is not deterministic");
}

/// Cuts on exact record-frame boundaries are indistinguishable from a
/// graceful shutdown and must recover `Clean`; cuts inside a frame tear
/// it and must report loss — but both recover the same whole-record
/// prefix.
#[test]
fn frame_boundary_cuts_are_clean_and_torn_cuts_report_loss() {
    let scenario = Scenario::q1_copy_paste();
    let capture =
        chaos::capture_wal(&scenario, KillPhase::MidFixpoint, &opts(EvalStrategy::Batch), CAPTURE_INJECTIONS)
            .expect("capture failed");
    let bounds = chaos::frame_boundaries(&capture.records);
    assert!(bounds.len() > 3, "capture journaled too little to probe");
    for (i, &b) in bounds.iter().enumerate().take(12) {
        let at_boundary = chaos::crash_at(&capture, b);
        assert!(at_boundary.clean, "cut at frame boundary {b} was not clean: {at_boundary:?}");
        assert!(at_boundary.prefix_consistent);
        assert_eq!(at_boundary.ops_applied, i);
        // A cut 4 bytes past a boundary lands mid-header of the next frame.
        if i + 1 < bounds.len() {
            let torn = chaos::crash_at(&capture, b + 4);
            assert!(!torn.clean, "mid-frame cut {} recovered clean", b + 4);
            assert!(torn.prefix_consistent, "torn cut diverged: {torn:?}");
            assert_eq!(torn.ops_applied, i, "torn cut replayed past the tear");
        }
    }
}

/// The end-to-end ProcessKill property: kill the observation run at an
/// arbitrary (non-boundary) WAL offset on every scenario, restart from
/// the surviving prefix, fold the recovered durable state back into the
/// seeds, and the diagnose → repair → backtest loop still converges.
#[test]
fn repair_converges_after_kill_and_restart_on_every_scenario() {
    for scenario in Scenario::all() {
        let capture =
            chaos::capture_wal(&scenario, KillPhase::MidFixpoint, &opts(EvalStrategy::Batch), 0)
                .unwrap_or_else(|e| panic!("{} capture failed: {e}", scenario.id));
        // ~61.8% through the log, nudged to avoid boundary alignment.
        let cut = (capture.wal_bytes.len() as u64 * 618 / 1000).saturating_add(3);
        let report = chaos::restart_repair(&scenario, &capture, cut)
            .unwrap_or_else(|e| panic!("{} restart repair failed: {e}", scenario.id));
        assert!(
            report.generated() > 0,
            "{} generated no candidates after kill-and-restart",
            scenario.id
        );
    }
}

/// The whole repair loop runs with durability on: every NDlog engine the
/// loop spins up journals to its own WAL under the configured directory,
/// the loop's results are unchanged, and nothing degrades. (Candidate
/// backtests that take the MQO shortcut evaluate through the tagged
/// engine, which is a derived, re-runnable computation and does not
/// journal — so the directory holds the observation engine's log plus one
/// per non-MQO replay, not necessarily one per candidate.)
#[test]
fn full_repair_loop_runs_under_wal_durability() {
    let scratch = std::env::temp_dir().join(format!("mpr-recovery-loop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let scenario = Scenario::q1_copy_paste();
    let mut dbg = Debugger::for_scenario(&scenario);
    dbg.engine_options.durability =
        Durability::Wal(WalOptions { dir: scratch.clone(), fsync: false, compact_every: 256 });
    let report = dbg.diagnose_and_repair().expect("repair loop failed under WAL durability");
    assert!(report.generated() > 0, "no candidates under WAL durability");
    assert!(report.accepted_count() > 0, "no accepted repairs under WAL durability");
    let engine_dirs: Vec<_> = std::fs::read_dir(&scratch)
        .expect("no WAL directory was created by the loop")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    assert!(!engine_dirs.is_empty(), "no journaled engines under {}", scratch.display());
    // Each engine dir holds a live log (or a compacted snapshot).
    for dir in &engine_dirs {
        let has_state = std::fs::read_dir(dir)
            .map(|d| d.filter_map(|e| e.ok()).count() > 0)
            .unwrap_or(false);
        assert!(has_state, "journaled engine dir {} is empty", dir.display());
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
