//! Differential proof for the simulator hot path: runs whose flow tables
//! are forced through the exhaustive `lookup_reference` oracle, and runs
//! whose route cache starts cold, must be bit-identical — ExecLog, stats
//! and packet-in log — to the shipped indexed/cached paths, across every
//! scenario and under fault plans.

use mpr_core::scenarios::Scenario;
use mpr_runtime::{ExecLog, Options as EngineOptions};
use mpr_sdn::controller::NdlogController;
use mpr_sdn::faults::{CtrlFaults, FaultPlan, LinkFault, SwitchCrash};
use mpr_sdn::sim::PacketInRecord;
use mpr_sdn::topology::{NodeRef, Topology};
use mpr_sdn::{SimStats, Simulation};
use std::sync::Arc;

struct RunOutput {
    stats: SimStats,
    log: ExecLog,
    packet_ins: Vec<PacketInRecord>,
}

/// Replay a scenario's workload. `reference_tables` forces every flow
/// table through the oracle lookup; `topology` lets the caller choose a
/// shared (possibly warmed) or fresh handle; `proactive` installs the
/// shortest-path core underneath the app.
fn run(s: &Scenario, topology: Arc<Topology>, reference_tables: bool, proactive: bool) -> RunOutput {
    let mut ctrl = NdlogController::with_options(
        s.program.clone(),
        s.codec.clone(),
        EngineOptions::default(),
    )
    .expect("scenario program compiles");
    ctrl.seed(s.seeds.clone()).expect("seeds");
    let mut sim = Simulation::new(topology, ctrl, s.sim.clone());
    if reference_tables {
        for t in sim.tables.values_mut() {
            t.set_reference_mode(true);
        }
    }
    if proactive {
        sim.install_proactive_routes();
    }
    for (src, pkt) in s.workload.iter() {
        sim.inject(*src, pkt.clone());
        sim.run();
    }
    RunOutput {
        stats: sim.stats.clone(),
        log: sim.controller().exec_log().clone(),
        packet_ins: sim.packet_in_log().to_vec(),
    }
}

fn assert_bit_identical(s: &Scenario, proactive: bool) {
    let indexed = run(s, s.topology.clone(), false, proactive);
    let reference = run(s, s.topology.clone(), true, proactive);
    assert_eq!(
        indexed.stats, reference.stats,
        "{}: SimStats diverged between indexed and reference lookup",
        s.id
    );
    assert_eq!(
        indexed.log, reference.log,
        "{}: ExecLog diverged between indexed and reference lookup",
        s.id
    );
    assert_eq!(
        indexed.packet_ins, reference.packet_ins,
        "{}: packet-in log diverged between indexed and reference lookup",
        s.id
    );
}

#[test]
fn indexed_lookup_matches_reference_on_all_scenarios() {
    for s in Scenario::all() {
        assert_bit_identical(&s, false);
    }
    assert_bit_identical(&Scenario::fig7_harmful_entry(), false);
}

#[test]
fn indexed_lookup_matches_reference_with_proactive_routes() {
    // Proactive routes push every table past the index threshold, so this
    // exercises the hash index rather than the short linear scan.
    assert_bit_identical(&Scenario::q1_copy_paste(), true);
    assert_bit_identical(&Scenario::q1_on_campus(49), true);
}

fn fault_plan() -> FaultPlan {
    FaultPlan {
        seed: 23,
        links: vec![LinkFault::flap(NodeRef::Switch(1), NodeRef::Switch(2), 20, 600, 40)],
        crashes: vec![SwitchCrash { switch: 2, at: 150, down_for: 80 }],
        ctrl: CtrlFaults {
            drop_chance: 0.15,
            dup_chance: 0.15,
            delay_chance: 0.25,
            delay_min: 1,
            delay_max: 30,
            reorder: true,
        },
    }
}

/// Under LinkDown/LinkFlap/SwitchCrash/control-channel fault plans, a
/// warmed route cache and the reference lookup path must both reproduce
/// the shipped run bit for bit: faults perturb the simulator, never the
/// topology the cache memoizes.
#[test]
fn fault_plans_preserve_differential_equality() {
    let mut s = Scenario::q1_copy_paste();
    s.sim.faults = fault_plan();
    // Warm every host's route map on the shared topology first.
    for h in s.topology.hosts.iter().copied() {
        let _ = s.topology.routes_to(h);
    }
    let warmed = run(&s, s.topology.clone(), false, true);
    let cold = run(&s, Arc::new((*s.topology).clone()), false, true);
    let reference = run(&s, Arc::new((*s.topology).clone()), true, true);
    assert_eq!(warmed.stats, cold.stats, "warmed vs cold route cache diverged under faults");
    assert_eq!(warmed.log, cold.log);
    assert_eq!(warmed.packet_ins, cold.packet_ins);
    assert_eq!(warmed.stats, reference.stats, "indexed vs reference diverged under faults");
    assert_eq!(warmed.log, reference.log);
    assert_eq!(warmed.packet_ins, reference.packet_ins);
}
