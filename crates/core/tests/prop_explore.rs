//! Property tests for the repair search (Appendix D):
//!
//! - **ordering** — candidates are emitted in cost order (the optimality
//!   property: "repair candidates are generated in cost order");
//! - **soundness** — applying any generated patch yields a program under
//!   which the goal tuple is actually derivable from the recorded world
//!   (the tree's constraint pool was satisfiable for a reason);
//! - **completeness** — for any missing, fully-concrete goal with at least
//!   one recorded trigger, at least one candidate is generated (the
//!   Appendix D fallback guarantees this).

use mpr_core::cost::{CostModel, SearchBudget};
use mpr_core::explore::{generate_missing, World};
use mpr_core::repair::Repair;
use mpr_ndlog::{parse_program, Tuple, Value};
use mpr_provenance::Pattern;
use proptest::prelude::*;

fn world(swi_const: i64, hdr_const: i64, prt_const: i64, triggers: Vec<(i64, i64)>) -> World {
    let program = parse_program(
        "prop",
        &format!(
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0,1)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == {swi_const}, Hdr == {hdr_const}, Prt := {prt_const}.
            "
        ),
    )
    .unwrap();
    World {
        program,
        triggers: triggers
            .into_iter()
            .map(|(s, h)| {
                Tuple::new("PacketIn", Value::str("C"), vec![Value::Int(s), Value::Int(h)])
            })
            .collect(),
        state: vec![],
        cost: CostModel::default(),
        budget: SearchBudget { max_cost: 10, max_candidates: 24, consts_per_site: 3, ..SearchBudget::default() },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn candidates_are_in_cost_order(
        swi in 1i64..5, hdr in prop::sample::select(vec![53i64, 80]),
        goal_swi in 1i64..5, goal_prt in 1i64..4,
        trig in prop::collection::vec((1i64..5, prop::sample::select(vec![53i64, 80])), 1..5),
    ) {
        let w = world(swi, hdr, goal_prt, trig);
        let goal = Pattern {
            table: "FlowTable".into(),
            loc: Some(Value::Int(goal_swi)),
            args: vec![Some(Value::Int(hdr)), Some(Value::Int(goal_prt))],
        };
        let (cands, _) = generate_missing(&w, &goal);
        for pair in cands.windows(2) {
            prop_assert!(pair[0].cost <= pair[1].cost, "not cost-ordered");
        }
    }

    #[test]
    fn patches_make_the_goal_derivable(
        goal_swi in 1i64..5,
        trig in prop::collection::vec((1i64..5, prop::sample::select(vec![53i64, 80])), 1..5),
    ) {
        // Program matches Swi==2/Hdr==80; goal asks for some other switch.
        let w = world(2, 80, 2, trig.clone());
        let goal = Pattern {
            table: "FlowTable".into(),
            loc: Some(Value::Int(goal_swi)),
            args: vec![Some(Value::Int(80)), Some(Value::Int(2))],
        };
        let (cands, _) = generate_missing(&w, &goal);
        let goal_tuple =
            Tuple::new("FlowTable", Value::Int(goal_swi), vec![Value::Int(80), Value::Int(2)]);
        for c in &cands {
            match &c.repair {
                Repair::Patch(p) => {
                    let patched = p.apply(&w.program).expect("patch applies");
                    // Re-run the patched program over the recorded world.
                    let mut engine = mpr_runtime::Engine::new(&patched).unwrap();
                    for t in &w.state {
                        engine.insert(t.clone()).unwrap();
                    }
                    for t in &w.triggers {
                        engine.insert(t.clone()).unwrap();
                    }
                    prop_assert!(
                        engine.contains(&goal_tuple),
                        "`{}` does not derive {goal_tuple}",
                        c.description
                    );
                }
                Repair::InsertTuple(t) => prop_assert_eq!(t, &goal_tuple),
                _ => {}
            }
        }
    }

    #[test]
    fn something_is_always_generated(
        goal_swi in 1i64..9, goal_hdr in 1i64..100, goal_prt in 1i64..9,
        trig in prop::collection::vec((1i64..5, 1i64..100), 1..4),
    ) {
        // Completeness (Appendix D): a concrete missing goal with at least
        // one trigger always yields at least the insertion and the
        // synthesized-rule candidates.
        let w = world(2, 80, 2, trig);
        let goal = Pattern {
            table: "FlowTable".into(),
            loc: Some(Value::Int(goal_swi)),
            args: vec![Some(Value::Int(goal_hdr)), Some(Value::Int(goal_prt))],
        };
        let (cands, _) = generate_missing(&w, &goal);
        prop_assert!(!cands.is_empty());
        prop_assert!(cands.iter().any(|c| matches!(c.repair, Repair::InsertTuple(_))
            || c.description.contains("Adding a new rule")));
    }
}
