//! The CI `chaos` suite: randomized fault schedules swept over the repair
//! loop under fixed seeds, plus the pinned regression schedules. Covers
//! the acceptance bar: ≥ 3 fault classes × ≥ 8 seeds, byte-identical
//! across runs, with both containment paths (worker panic, budget
//! exhaustion) exercised elsewhere in `mpr_runtime`'s fault tests.

use mpr_core::chaos::{self, FaultClass};
use mpr_core::scenarios::Scenario;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// The loop survives every class × seed schedule on the flagship
/// scenario, and the sweep is deterministic: running it twice yields
/// byte-identical outcomes (plans, counters, errors — everything).
#[test]
fn sweep_recovers_everywhere_and_is_deterministic() {
    let scenarios = [Scenario::q1_copy_paste()];
    let first = chaos::sweep(&scenarios, &FaultClass::ALL, &SEEDS);
    assert_eq!(first.outcomes.len(), FaultClass::ALL.len() * SEEDS.len());
    for o in &first.outcomes {
        assert!(
            o.recovered,
            "{} / {} / seed {} did not recover: {:?}\nplan: {:?}",
            o.scenario,
            o.class.name(),
            o.seed,
            o.error,
            o.plan
        );
    }
    let second = chaos::sweep(&scenarios, &FaultClass::ALL, &SEEDS);
    assert_eq!(first, second, "chaos sweep is not deterministic");
}

/// Every scenario of the paper survives at least a spot-check of each
/// fault class (full grids run in the bench harness, not per-commit CI).
#[test]
fn every_scenario_survives_each_fault_class() {
    for scenario in Scenario::all() {
        for class in FaultClass::ALL {
            let plan = chaos::random_plan(class, 42, &scenario.topology);
            let outcome = chaos::run_under_plan(&scenario, &plan);
            assert!(
                outcome.recovered,
                "{} under {} seed 42 did not recover: {:?}",
                scenario.id,
                class.name(),
                outcome.error
            );
        }
    }
}

/// The pinned schedules of past sweeps, frozen exactly with their
/// classification. Recoverable cases must keep recovering; the genuine
/// survivors (ingress dead for the whole run, heavy control loss on Q2)
/// must keep degrading *cleanly* — the loop completes, no panic, and the
/// non-recovery carries a recorded reason. Every case must also match
/// itself byte for byte across runs.
#[test]
fn pinned_regression_schedules_keep_their_classification() {
    let cases = chaos::regression_cases();
    assert!(cases.iter().filter(|c| c.expect_recovered).count() >= 3);
    assert!(cases.iter().filter(|c| !c.expect_recovered).count() >= 2);
    for case in cases {
        let a = chaos::run_under_plan(&case.scenario, &case.plan);
        assert_eq!(
            a.recovered, case.expect_recovered,
            "pinned case {} changed classification: {:?}\nplan: {:?}",
            case.name, a.error, case.plan
        );
        if !case.expect_recovered {
            // Clean degradation, not a crash: the loop recorded why.
            assert!(a.error.is_some(), "pinned case {} lost its reason", case.name);
            assert!(
                !a.error.as_deref().unwrap_or("").contains("panic"),
                "pinned case {} now panics: {:?}",
                case.name,
                a.error
            );
        }
        let b = chaos::run_under_plan(&case.scenario, &case.plan);
        assert_eq!(a, b, "pinned case {} is not deterministic", case.name);
    }
}

/// Sanity on the harness itself: a deliberately impossible network — the
/// symptom host's only link dead for the whole run *and* every control
/// message dropped — still comes back as a classified outcome, never a
/// crash of the harness. (Whether it recovers depends on the scenario;
/// the assertion is that the loop completes and the classification is
/// coherent.)
#[test]
fn worst_case_schedule_is_classified_not_fatal() {
    use mpr_sdn::{CtrlFaults, FaultPlan, LinkFault, SwitchCrash};
    let scenario = Scenario::q1_copy_paste();
    let plan = FaultPlan {
        seed: 99,
        links: chaos::all_links(&scenario.topology)
            .into_iter()
            .map(|(a, b)| LinkFault::down(a, b, 0, u64::MAX))
            .collect(),
        crashes: scenario
            .topology
            .switches
            .iter()
            .map(|&s| SwitchCrash { switch: s, at: 0, down_for: u64::MAX })
            .collect(),
        ctrl: CtrlFaults { drop_chance: 1.0, ..CtrlFaults::default() },
    };
    let outcome = chaos::run_under_plan(&scenario, &plan);
    // Coherence: recovered implies candidates, not-recovered implies a
    // recorded reason.
    if outcome.recovered {
        assert!(outcome.generated > 0);
    } else {
        assert!(outcome.error.is_some());
    }
}
