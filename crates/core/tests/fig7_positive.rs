//! End-to-end test of the *positive symptom* path (§4.2, Fig. 7): an
//! existing harmful tuple is removed by deleting or changing base tuples,
//! or by rule-literal changes that break the offending derivation.

use mpr_core::debugger::repair_scenario;
use mpr_core::repair::Repair;
use mpr_core::scenarios::Scenario;

#[test]
fn harmful_entry_is_repaired() {
    let scenario = Scenario::fig7_harmful_entry();
    let report = repair_scenario(&scenario);
    assert!(report.generated() >= 2, "{}", report.render_table());
    assert!(report.accepted_count() >= 1, "{}", report.render_table());
    // The Fig. 7 repairs appear: deleting the base tuple that feeds the
    // derivation, and the "green" constant change on r1's selection.
    assert!(
        report
            .outcomes
            .iter()
            .any(|o| matches!(o.candidate.repair, Repair::DeleteTuple(_))),
        "{}",
        report.render_table()
    );
    assert!(
        report
            .outcomes
            .iter()
            .any(|o| o.candidate.description.contains("Swi == 1 in r1")),
        "{}",
        report.render_table()
    );
    // The accepted repair actually redirects traffic to the primary.
    let best = report.accepted[0];
    assert!(report.outcomes[best].effective);
}

#[test]
fn positive_traces_walk_the_derivation() {
    let scenario = Scenario::fig7_harmful_entry();
    let report = repair_scenario(&scenario);
    let delete = report
        .outcomes
        .iter()
        .find(|o| matches!(o.candidate.repair, Repair::DeleteTuple(_)))
        .expect("deletion candidate exists");
    let trace = delete.candidate.render_trace();
    assert!(trace.contains("EXIST[Tuple"), "{trace}");
    assert!(trace.contains("DERIVE[r1"), "{trace}");
}
