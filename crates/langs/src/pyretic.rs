//! Mini-Pyretic: the NetCore policy algebra (§5.8, Appendix B.3).
//!
//! Policies compose: a primitive action forwards or drops; `match(f=v)[P]`
//! restricts `P` to matching traffic; `P1 | P2` applies both in parallel;
//! `P1 >> P2` pipes `P1`'s output through `P2`.
//!
//! Two Pyretic-specific properties from the paper are reproduced:
//!
//! 1. **`match` admits only equality** — "a fix that changes the operator
//!    to `>` is possible in RapidNet but disallowed in Pyretic because
//!    of the syntax of `match`". The compiler records which NDlog
//!    selections came from `match`es; [`PyreticProgram::op_repairs_allowed`]
//!    reports `false`, and the repair harness filters operator mutations —
//!    which is why Q1 yields fewer candidates under Pyretic (Table 3).
//! 2. **Q4 cannot be reproduced** — "the Pyretic abstraction and its
//!    runtime already prevents such problems": the compiler emits the
//!    `PacketOut` rule automatically alongside every forwarding policy, so
//!    a programmer cannot forget it.

use mpr_ndlog::ast::{Assign, Atom, CmpOp, Expr, Selection, Term};
use mpr_ndlog::{Program, Rule};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A policy expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// `fwd(port)`.
    Fwd(i64),
    /// `drop`.
    Drop,
    /// `match(field=value)[policy]` — field is an NDlog variable name
    /// (`Swi`, `Hdr`, `Sip`, ...).
    Match(String, i64, Box<Policy>),
    /// `p1 | p2` — parallel composition.
    Par(Vec<Policy>),
    /// `p1 >> p2` — sequential composition.
    Seq(Vec<Policy>),
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Fwd(p) => write!(f, "fwd({p})"),
            Policy::Drop => f.write_str("drop"),
            Policy::Match(field, v, inner) => {
                let name = match field.as_str() {
                    "Swi" => "switch".to_string(),
                    other => other.to_lowercase(),
                };
                write!(f, "match({name}={v})[{inner}]")
            }
            Policy::Par(ps) => {
                let strs: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", strs.join(" | "))
            }
            Policy::Seq(ps) => {
                let strs: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", strs.join(" >> "))
            }
        }
    }
}

/// A mini-Pyretic program: one top-level policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PyreticProgram {
    /// Program name.
    pub name: String,
    /// Fields the policy may match on, in PacketIn tuple order after `Swi`.
    pub fields: Vec<String>,
    /// The policy.
    pub policy: Policy,
}

impl fmt::Display for PyreticProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "# {}\npolicy = {}", self.name, self.policy)
    }
}

impl PyreticProgram {
    /// Pyretic `match` is equality-only: operator mutations are not legal
    /// repairs in this language.
    pub fn op_repairs_allowed(&self) -> bool {
        false
    }

    /// Compile to NDlog. The policy tree is flattened into its atomic
    /// branches: every path `match(f1=v1)[… match(fk=vk)[fwd(p)]]` becomes
    /// one rule. `Drop` branches become `Prt := -1` rules. A `PacketOut`
    /// rule is emitted automatically per forwarding branch (the runtime
    /// behavior that makes Q4 impossible, per the paper).
    pub fn compile(&self) -> Program {
        let mut src = String::new();
        let arity = self.fields.len() + 1;
        src.push_str(&format!("materialize(PacketIn, event, {arity}, keys()).\n"));
        let fkeys: Vec<String> = (0..self.fields.len()).map(|i| i.to_string()).collect();
        src.push_str(&format!(
            "materialize(FlowTable, infinity, {}, keys({})).\n",
            self.fields.len() + 1,
            fkeys.join(",")
        ));
        src.push_str(&format!(
            "materialize(PacketOut, event, {}, keys()).\n",
            self.fields.len() + 1
        ));
        let mut program = mpr_ndlog::parse_program(&self.name, &src).expect("decls parse");
        let mut branches = Vec::new();
        flatten(&self.policy, &mut Vec::new(), &mut branches);
        for (i, (conds, port)) in branches.iter().enumerate() {
            program.rules.push(self.branch_rule(&format!("py{i}"), conds, *port, "FlowTable"));
            if *port >= 0 {
                // The runtime's automatic first-packet handling.
                program.rules.push(self.branch_rule(
                    &format!("py{i}po"),
                    conds,
                    *port,
                    "PacketOut",
                ));
            }
        }
        program
    }

    fn branch_rule(
        &self,
        id: &str,
        conds: &[(String, i64)],
        port: i64,
        head: &str,
    ) -> Rule {
        let mut head_args: Vec<Term> =
            self.fields.iter().map(|f| Term::Var(f.clone())).collect();
        head_args.push(Term::Var("Prt".into()));
        let mut body_args: Vec<Term> = vec![Term::Var("Swi".into())];
        body_args.extend(self.fields.iter().map(|f| Term::Var(f.clone())));
        Rule::new(
            id,
            Atom::new(head, Term::Var("Swi".into()), head_args),
            vec![Atom::new("PacketIn", Term::Var("C".into()), body_args)],
            conds
                .iter()
                .map(|(f, v)| Selection::new(Expr::var(f.clone()), CmpOp::Eq, Expr::int(*v)))
                .collect(),
            vec![Assign::new("Prt", Expr::int(port))],
        )
    }

    /// Render an NDlog repair description in Pyretic vocabulary.
    pub fn describe_repair(&self, ndlog_description: &str) -> String {
        let mut d = ndlog_description.to_string();
        d = d.replace("Swi ==", "match(switch=)");
        for f in &self.fields {
            d = d.replace(&format!("{f} =="), &format!("match({}=)", f.to_lowercase()));
        }
        d = d.replace("Prt :=", "fwd:");
        d
    }
}

/// Flatten a policy into `(conds, port)` branches; `port = -1` encodes
/// drop. Sequential composition of matches narrows; parallel composition
/// forks.
fn flatten(p: &Policy, conds: &mut Vec<(String, i64)>, out: &mut Vec<(Vec<(String, i64)>, i64)>) {
    match p {
        Policy::Fwd(port) => out.push((conds.clone(), *port)),
        Policy::Drop => out.push((conds.clone(), -1)),
        Policy::Match(f, v, inner) => {
            conds.push((f.clone(), *v));
            flatten(inner, conds, out);
            conds.pop();
        }
        Policy::Par(ps) | Policy::Seq(ps) => {
            // For the restriction-style policies the scenarios use,
            // parallel branches are independent; sequential composition of
            // matches is already handled by nesting. Treat both as forks.
            for sub in ps {
                flatten(sub, conds, out);
            }
        }
    }
}

/// The mini-Pyretic port of Q1, bug included (`match(switch=2)` should be
/// `match(switch=3)` in the backup branch).
pub fn q1_pyretic() -> PyreticProgram {
    let m = |f: &str, v: i64, p: Policy| Policy::Match(f.into(), v, Box::new(p));
    PyreticProgram {
        name: "q1-pyretic".into(),
        fields: vec!["Hdr".into()],
        policy: Policy::Par(vec![
            m("Swi", 1, m("Hdr", 80, Policy::Fwd(2))),
            m("Swi", 1, m("Hdr", 53, Policy::Fwd(2))),
            m("Swi", 2, m("Hdr", 80, Policy::Fwd(1))),
            // BUG: the backup branch tests switch 2 instead of 3.
            m("Swi", 2, m("Hdr", 80, Policy::Fwd(2))),
            m("Swi", 3, m("Hdr", 53, Policy::Fwd(1))),
            m("Swi", 4, m("Hdr", 80, Policy::Fwd(1))),
            m("Swi", 5, m("Hdr", 80, Policy::Fwd(1))),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_pretty_printing() {
        let p = q1_pyretic();
        let s = p.to_string();
        assert!(s.contains("match(switch=2)[match(hdr=80)[fwd(2)]]"));
        assert!(s.contains(" | "));
    }

    #[test]
    fn compiles_with_automatic_packet_outs() {
        let p = q1_pyretic().compile();
        assert!(p.validate().is_ok());
        // 7 branches × (FlowTable + PacketOut).
        assert_eq!(p.rules.len(), 14);
        assert!(p.rule("py3").is_some());
        assert!(p.rule("py3po").is_some());
        assert_eq!(p.rule("py3po").unwrap().head.table, "PacketOut");
    }

    #[test]
    fn drop_branches_have_no_packet_out() {
        let prog = PyreticProgram {
            name: "drop-test".into(),
            fields: vec!["Hdr".into()],
            policy: Policy::Match("Hdr".into(), 22, Box::new(Policy::Drop)),
        };
        let p = prog.compile();
        assert_eq!(p.rules.len(), 1);
        let r = p.rule("py0").unwrap();
        assert_eq!(r.assigns[0].expr, Expr::int(-1));
    }

    #[test]
    fn seq_and_par_flatten() {
        let m = |f: &str, v: i64, p: Policy| Policy::Match(f.into(), v, Box::new(p));
        let prog = PyreticProgram {
            name: "flat".into(),
            fields: vec!["Hdr".into()],
            policy: Policy::Seq(vec![
                m("Hdr", 80, Policy::Fwd(1)),
                m("Hdr", 53, Policy::Fwd(2)),
            ]),
        };
        let p = prog.compile();
        // 2 branches × 2 rules each.
        assert_eq!(p.rules.len(), 4);
    }

    #[test]
    fn operator_repairs_are_disallowed() {
        assert!(!q1_pyretic().op_repairs_allowed());
    }

    #[test]
    fn repair_descriptions_speak_pyretic() {
        let p = q1_pyretic();
        let d = p.describe_repair("Changing Swi == 2 in py3 to Swi == 3");
        assert!(d.contains("match(switch=)"));
    }
}
