//! Mini-Trema: an imperative, Ruby-flavored controller language (§5.8).
//!
//! The paper's Trema meta model (Appendix B.2) covers the subset of Ruby a
//! `packet_in` handler uses: conditionals over packet fields, flow-mod and
//! packet-out calls. Mini-Trema is exactly that subset:
//!
//! ```text
//! def packet_in(switch, packet)
//!   if switch == 2 && packet.dst_port == 80
//!     send_flow_mod_add(match: {dst_port: 80}, port: 2)
//!   end
//! end
//! ```
//!
//! Programs *compile to NDlog* (each if-statement becomes one rule), so the
//! meta-provenance machinery of `mpr-core` applies unchanged; repairs are
//! rendered back in mini-Trema syntax through the site map. The language
//! imposes its own repair legality: all comparison operators are mutable
//! (Ruby allows `<`, `>`, `!=` anywhere), mirroring the paper's
//! observation that RapidNet and Trema admit operator repairs.

use mpr_ndlog::ast::{Assign, Atom, CmpOp, Expr, Selection, Term};
use mpr_ndlog::{Program, Rule};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A guard condition: `subject op literal`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cond {
    /// What is inspected: `switch` or a packet field (NDlog variable name,
    /// e.g. `Swi`, `Hdr`, `Sip`).
    pub subject: String,
    /// Comparison.
    pub op: CmpOp,
    /// Literal.
    pub value: i64,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let subj = match self.subject.as_str() {
            "Swi" => "switch".to_string(),
            other => format!("packet.{}", other.to_lowercase()),
        };
        write!(f, "{subj} {} {}", self.op, self.value)
    }
}

/// A handler action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TremaAction {
    /// `send_flow_mod_add(port)` — install an entry matching this packet's
    /// inspected fields, forwarding to `port` (negative = drop).
    FlowModAdd {
        /// Output port.
        port: i64,
    },
    /// `send_packet_out(port)` — release the buffered packet.
    PacketOut {
        /// Output port.
        port: i64,
    },
}

impl fmt::Display for TremaAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TremaAction::FlowModAdd { port } => write!(f, "send_flow_mod_add(port: {port})"),
            TremaAction::PacketOut { port } => write!(f, "send_packet_out(port: {port})"),
        }
    }
}

/// One `if conds… then action end` statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IfStmt {
    /// Statement label (becomes the NDlog rule id).
    pub label: String,
    /// Conjunctive guard.
    pub conds: Vec<Cond>,
    /// The action.
    pub action: TremaAction,
}

impl fmt::Display for IfStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "  if ")?;
        for (i, c) in self.conds.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{c}")?;
        }
        writeln!(f, "  # {}", self.label)?;
        writeln!(f, "    {}", self.action)?;
        write!(f, "  end")
    }
}

/// A mini-Trema program: the body of `packet_in`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TremaProgram {
    /// Program name.
    pub name: String,
    /// Fields the handler inspects, in PacketIn tuple order (after `Swi`).
    pub fields: Vec<String>,
    /// Statements in source order.
    pub stmts: Vec<IfStmt>,
}

impl fmt::Display for TremaProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "def packet_in(switch, packet)  # {}", self.name)?;
        for s in &self.stmts {
            writeln!(f, "{s}")?;
        }
        write!(f, "end")
    }
}

impl TremaProgram {
    /// Compile to NDlog: one rule per statement. `FlowModAdd` statements
    /// derive `FlowTable(@Swi, fields…, Prt)`; `PacketOut` statements
    /// derive `PacketOut(@Swi, fields…, Prt)`.
    pub fn compile(&self) -> Program {
        let mut src = String::new();
        let arity = self.fields.len() + 1; // + Swi
        src.push_str(&format!("materialize(PacketIn, event, {arity}, keys()).\n"));
        let fkeys: Vec<String> = (0..self.fields.len()).map(|i| i.to_string()).collect();
        src.push_str(&format!(
            "materialize(FlowTable, infinity, {}, keys({})).\n",
            self.fields.len() + 1,
            fkeys.join(",")
        ));
        src.push_str(&format!(
            "materialize(PacketOut, event, {}, keys()).\n",
            self.fields.len() + 1
        ));
        let mut program = mpr_ndlog::parse_program(&self.name, &src).expect("decls parse");
        for stmt in &self.stmts {
            program.rules.push(self.compile_stmt(stmt));
        }
        program
    }

    fn compile_stmt(&self, stmt: &IfStmt) -> Rule {
        let head_table = match stmt.action {
            TremaAction::FlowModAdd { .. } => "FlowTable",
            TremaAction::PacketOut { .. } => "PacketOut",
        };
        let port = match stmt.action {
            TremaAction::FlowModAdd { port } | TremaAction::PacketOut { port } => port,
        };
        let mut head_args: Vec<Term> =
            self.fields.iter().map(|f| Term::Var(f.clone())).collect();
        head_args.push(Term::Var("Prt".into()));
        let mut body_args: Vec<Term> = vec![Term::Var("Swi".into())];
        body_args.extend(self.fields.iter().map(|f| Term::Var(f.clone())));
        Rule::new(
            stmt.label.clone(),
            Atom::new(head_table, Term::Var("Swi".into()), head_args),
            vec![Atom::new("PacketIn", Term::Var("C".into()), body_args)],
            stmt.conds
                .iter()
                .map(|c| Selection::new(Expr::var(c.subject.clone()), c.op, Expr::int(c.value)))
                .collect(),
            vec![Assign::new("Prt", Expr::int(port))],
        )
    }

    /// Render an NDlog patch description back in mini-Trema vocabulary.
    pub fn describe_repair(&self, ndlog_description: &str) -> String {
        let mut d = ndlog_description.to_string();
        d = d.replace("Swi ==", "switch ==");
        d = d.replace("Swi !=", "switch !=");
        d = d.replace("Swi >", "switch >");
        d = d.replace("Swi <", "switch <");
        d = d.replace("Prt :=", "port:");
        for f in &self.fields {
            let lower = format!("packet.{}", f.to_lowercase());
            d = d.replace(&format!("{f} =="), &format!("{lower} =="));
            d = d.replace(&format!("{f} !="), &format!("{lower} !="));
        }
        d
    }
}

/// The mini-Trema port of the Q1 load balancer (Fig. 2 as a `packet_in`
/// handler), bug included.
pub fn q1_trema() -> TremaProgram {
    let c = |subject: &str, op: CmpOp, value: i64| Cond { subject: subject.into(), op, value };
    TremaProgram {
        name: "q1-trema".into(),
        fields: vec!["Hdr".into()],
        stmts: vec![
            IfStmt {
                label: "t1".into(),
                conds: vec![c("Swi", CmpOp::Eq, 1), c("Hdr", CmpOp::Eq, 80)],
                action: TremaAction::FlowModAdd { port: 2 },
            },
            IfStmt {
                label: "t2".into(),
                conds: vec![c("Swi", CmpOp::Eq, 1), c("Hdr", CmpOp::Eq, 53)],
                action: TremaAction::FlowModAdd { port: 2 },
            },
            IfStmt {
                label: "t5".into(),
                conds: vec![c("Swi", CmpOp::Eq, 2), c("Hdr", CmpOp::Eq, 80)],
                action: TremaAction::FlowModAdd { port: 1 },
            },
            // The copy-and-paste bug: should be switch == 3.
            IfStmt {
                label: "t7".into(),
                conds: vec![c("Swi", CmpOp::Eq, 2), c("Hdr", CmpOp::Eq, 80)],
                action: TremaAction::FlowModAdd { port: 2 },
            },
            IfStmt {
                label: "t8".into(),
                conds: vec![c("Swi", CmpOp::Eq, 3), c("Hdr", CmpOp::Eq, 53)],
                action: TremaAction::FlowModAdd { port: 1 },
            },
            IfStmt {
                label: "t9".into(),
                conds: vec![c("Swi", CmpOp::Eq, 4), c("Hdr", CmpOp::Eq, 80)],
                action: TremaAction::FlowModAdd { port: 1 },
            },
            IfStmt {
                label: "t10".into(),
                conds: vec![c("Swi", CmpOp::Eq, 5), c("Hdr", CmpOp::Eq, 80)],
                action: TremaAction::FlowModAdd { port: 1 },
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printing_reads_like_ruby() {
        let p = q1_trema();
        let s = p.to_string();
        assert!(s.contains("def packet_in(switch, packet)"));
        assert!(s.contains("if switch == 2 && packet.hdr == 80"));
        assert!(s.contains("send_flow_mod_add(port: 2)"));
        assert!(s.ends_with("end"));
    }

    #[test]
    fn compiles_to_valid_ndlog() {
        let p = q1_trema().compile();
        assert!(p.validate().is_ok());
        assert_eq!(p.rules.len(), 7);
        let t7 = p.rule("t7").unwrap();
        assert_eq!(t7.head.table, "FlowTable");
        assert_eq!(t7.sels.len(), 2);
        assert_eq!(t7.sels[0].sid(), "Swi == 2");
    }

    #[test]
    fn packet_out_statements_compile() {
        let mut p = q1_trema();
        p.stmts.push(IfStmt {
            label: "po".into(),
            conds: vec![Cond { subject: "Swi".into(), op: CmpOp::Eq, value: 1 }],
            action: TremaAction::PacketOut { port: 2 },
        });
        let compiled = p.compile();
        assert_eq!(compiled.rule("po").unwrap().head.table, "PacketOut");
    }

    #[test]
    fn repair_descriptions_speak_trema() {
        let p = q1_trema();
        assert_eq!(
            p.describe_repair("Changing Swi == 2 in t7 to Swi == 3"),
            "Changing switch == 2 in t7 to switch == 3"
        );
        assert_eq!(
            p.describe_repair("Changing Hdr == 53 in t2 to Hdr == 80"),
            "Changing packet.hdr == 53 in t2 to packet.hdr == 80"
        );
    }
}
