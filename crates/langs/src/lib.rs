//! # mpr-langs — mini-Trema and mini-Pyretic frontends
//!
//! §5.8 of the paper applies meta provenance to two non-declarative
//! controller languages: Trema (imperative Ruby) and Pyretic (a Python-
//! embedded policy DSL). The paper's appendices model a *subset* of each
//! language (Appendix B.2/B.3); this crate implements exactly those
//! subsets as standalone mini-languages with pretty printers, compilers
//! into NDlog (so the repair machinery applies unchanged), and per-language
//! repair legality:
//!
//! - [`trema`] — if-statements over switch/packet fields with
//!   `send_flow_mod_add` / `send_packet_out` actions; all comparison
//!   operators are mutable;
//! - [`pyretic`] — the NetCore policy algebra (`match`, `fwd`, `drop`,
//!   `|`, `>>`); `match` admits only equality, so operator repairs are
//!   disallowed (which is why Pyretic yields fewer Q1 candidates in
//!   Table 3), and the runtime emits `PacketOut`s automatically (which is
//!   why Q4 cannot be reproduced under Pyretic).

#![warn(missing_docs)]

pub mod pyretic;
pub mod trema;

pub use pyretic::{q1_pyretic, Policy, PyreticProgram};
pub use trema::{q1_trema, Cond, IfStmt, TremaAction, TremaProgram};
