//! OpenFlow-style flow tables: priority-ordered wildcard matching.

use crate::packet::{Field, Packet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A match specification: every constrained field must equal the packet's
/// value; unconstrained fields are wildcards.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Match {
    /// Ingress port constraint.
    pub in_port: Option<i64>,
    /// Header field constraints as `(field, value)` pairs.
    pub fields: Vec<(Field, i64)>,
}

impl Match {
    /// Match-all.
    pub fn any() -> Match {
        Match::default()
    }

    /// Add a header-field constraint (builder style).
    pub fn with(mut self, f: Field, v: i64) -> Match {
        self.fields.push((f, v));
        self
    }

    /// Add an ingress-port constraint (builder style).
    pub fn on_port(mut self, p: i64) -> Match {
        self.in_port = Some(p);
        self
    }

    /// Does the packet (arriving on `in_port`) satisfy the match?
    pub fn matches(&self, pkt: &Packet, in_port: i64) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        self.fields.iter().all(|(f, v)| pkt.field(*f) == *v)
    }

    /// Number of constrained fields (used for specificity ordering).
    pub fn specificity(&self) -> usize {
        self.fields.len() + usize::from(self.in_port.is_some())
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.in_port.is_none() && self.fields.is_empty() {
            return f.write_str("*");
        }
        let mut first = true;
        if let Some(p) = self.in_port {
            write!(f, "in_port={p}")?;
            first = false;
        }
        for (field, v) in &self.fields {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}={v}", field.short())?;
            first = false;
        }
        Ok(())
    }
}

/// A flow action.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Forward out of a port.
    Output(i64),
    /// Drop the packet.
    Drop,
    /// Punt to the controller (explicit).
    Controller,
    /// Flood out of every port except the ingress.
    Flood,
    /// Rewrite a header field, then continue with the next action.
    Modify(Field, i64),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output(p) => write!(f, "output:{p}"),
            Action::Drop => f.write_str("drop"),
            Action::Controller => f.write_str("controller"),
            Action::Flood => f.write_str("flood"),
            Action::Modify(field, v) => write!(f, "set {}={v}", field.short()),
        }
    }
}

/// One flow entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowEntry {
    /// Priority (higher wins).
    pub priority: i32,
    /// Match specification.
    pub m: Match,
    /// Action list, applied in order.
    pub actions: Vec<Action>,
}

impl FlowEntry {
    /// Build an entry.
    pub fn new(priority: i32, m: Match, actions: Vec<Action>) -> Self {
        FlowEntry { priority, m, actions }
    }
}

impl fmt::Display for FlowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} -> ", self.priority, self.m)?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A switch's flow table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
}

impl FlowTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install an entry. An entry with an identical match and priority
    /// already present is kept (first install wins) — the controller proxy
    /// deduplicates redundant `FlowMod`s, so the first rule to fire for a
    /// flow owns its entry. Use [`FlowTable::replace`] for modify
    /// semantics.
    pub fn install(&mut self, entry: FlowEntry) {
        if self
            .entries
            .iter()
            .any(|e| e.m == entry.m && e.priority == entry.priority)
        {
            return;
        }
        self.entries.push(entry);
        // Highest priority first; ties broken by specificity, then
        // insertion order (stable sort).
        self.entries
            .sort_by(|a, b| b.priority.cmp(&a.priority).then(b.m.specificity().cmp(&a.m.specificity())));
    }

    /// Install with modify semantics: an entry with an identical match and
    /// priority is overwritten.
    pub fn replace(&mut self, entry: FlowEntry) {
        self.entries.retain(|e| !(e.m == entry.m && e.priority == entry.priority));
        self.install(entry);
    }

    /// Remove entries whose match equals `m` exactly.
    pub fn remove(&mut self, m: &Match) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| &e.m != m);
        before - self.entries.len()
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Best-match lookup.
    pub fn lookup(&self, pkt: &Packet, in_port: i64) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.m.matches(pkt, in_port))
    }

    /// Reference lookup by full linear scan over *all* matching entries —
    /// used by property tests to validate the sorted fast path.
    pub fn lookup_reference(&self, pkt: &Packet, in_port: i64) -> Option<&FlowEntry> {
        self.entries
            .iter()
            .filter(|e| e.m.matches(pkt, in_port))
            .max_by(|a, b| {
                a.priority
                    .cmp(&b.priority)
                    .then(a.m.specificity().cmp(&b.m.specificity()))
            })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in match order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::ports;

    #[test]
    fn priority_and_wildcard_matching() {
        let mut ft = FlowTable::new();
        ft.install(FlowEntry::new(1, Match::any(), vec![Action::Drop]));
        ft.install(FlowEntry::new(
            10,
            Match::any().with(Field::DstPort, ports::HTTP),
            vec![Action::Output(2)],
        ));
        let http = Packet::http(1, 5, 9);
        let dns = Packet::dns(2, 5, 9);
        assert_eq!(ft.lookup(&http, 1).unwrap().actions, vec![Action::Output(2)]);
        assert_eq!(ft.lookup(&dns, 1).unwrap().actions, vec![Action::Drop]);
    }

    #[test]
    fn in_port_constraints() {
        let mut ft = FlowTable::new();
        ft.install(FlowEntry::new(
            5,
            Match::any().on_port(3),
            vec![Action::Output(1)],
        ));
        let p = Packet::http(1, 5, 9);
        assert!(ft.lookup(&p, 3).is_some());
        assert!(ft.lookup(&p, 2).is_none());
    }

    #[test]
    fn install_keeps_first_replace_overwrites() {
        let mut ft = FlowTable::new();
        let m = Match::any().with(Field::DstPort, 80);
        ft.install(FlowEntry::new(5, m.clone(), vec![Action::Output(1)]));
        ft.install(FlowEntry::new(5, m.clone(), vec![Action::Output(2)]));
        assert_eq!(ft.len(), 1);
        // First install wins.
        assert_eq!(
            ft.lookup(&Packet::http(1, 5, 9), 1).unwrap().actions,
            vec![Action::Output(1)]
        );
        // Modify semantics overwrite.
        ft.replace(FlowEntry::new(5, m.clone(), vec![Action::Output(2)]));
        assert_eq!(ft.len(), 1);
        assert_eq!(
            ft.lookup(&Packet::http(1, 5, 9), 1).unwrap().actions,
            vec![Action::Output(2)]
        );
        assert_eq!(ft.remove(&m), 1);
        assert!(ft.is_empty());
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut ft = FlowTable::new();
        ft.install(FlowEntry::new(5, Match::any(), vec![Action::Drop]));
        ft.install(FlowEntry::new(
            5,
            Match::any().with(Field::DstPort, 80).with(Field::SrcIp, 5),
            vec![Action::Output(9)],
        ));
        let p = Packet::http(1, 5, 9);
        assert_eq!(ft.lookup(&p, 1).unwrap().actions, vec![Action::Output(9)]);
    }

    #[test]
    fn fast_path_agrees_with_reference() {
        let mut ft = FlowTable::new();
        ft.install(FlowEntry::new(1, Match::any(), vec![Action::Drop]));
        ft.install(FlowEntry::new(7, Match::any().with(Field::SrcIp, 5), vec![Action::Output(1)]));
        ft.install(FlowEntry::new(7, Match::any().with(Field::DstPort, 80).on_port(2), vec![Action::Output(3)]));
        for (pkt, port) in [
            (Packet::http(1, 5, 9), 2),
            (Packet::http(2, 6, 9), 2),
            (Packet::dns(3, 5, 9), 1),
            (Packet::icmp(4, 0, 0), 9),
        ] {
            assert_eq!(ft.lookup(&pkt, port), ft.lookup_reference(&pkt, port));
        }
    }

    #[test]
    fn display_renders_entries() {
        let e = FlowEntry::new(
            5,
            Match::any().with(Field::DstPort, 80).on_port(1),
            vec![Action::Modify(Field::DstIp, 9), Action::Output(2)],
        );
        assert_eq!(e.to_string(), "[5] in_port=1,Dpt=80 -> set Dip=9,output:2");
        assert_eq!(Match::any().to_string(), "*");
    }
}
