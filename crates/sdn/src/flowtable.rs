//! OpenFlow-style flow tables: priority-ordered wildcard matching.
//!
//! Lookup is served by a hash index keyed on *constrained-field
//! signatures*: entries are grouped by which dimensions they constrain
//! (ingress port + header-field list), and within a group a hash map goes
//! from the constrained values straight to the best entry. A packet probes
//! one bucket per signature group — there are as many groups as distinct
//! match shapes in the table (a handful), not as many as entries — and the
//! winner across groups is the entry the priority-sorted linear scan would
//! have found. `lookup_reference` retains the exhaustive scan as the
//! oracle the property tests compare against.

use crate::packet::{Field, Packet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

/// A match specification: every constrained field must equal the packet's
/// value; unconstrained fields are wildcards.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Match {
    /// Ingress port constraint.
    pub in_port: Option<i64>,
    /// Header field constraints as `(field, value)` pairs.
    pub fields: Vec<(Field, i64)>,
}

impl Match {
    /// Match-all.
    pub fn any() -> Match {
        Match::default()
    }

    /// Add a header-field constraint (builder style).
    pub fn with(mut self, f: Field, v: i64) -> Match {
        self.fields.push((f, v));
        self
    }

    /// Add an ingress-port constraint (builder style).
    pub fn on_port(mut self, p: i64) -> Match {
        self.in_port = Some(p);
        self
    }

    /// Does the packet (arriving on `in_port`) satisfy the match?
    pub fn matches(&self, pkt: &Packet, in_port: i64) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        self.fields.iter().all(|(f, v)| pkt.field(*f) == *v)
    }

    /// Number of constrained fields (used for specificity ordering).
    pub fn specificity(&self) -> usize {
        self.fields.len() + usize::from(self.in_port.is_some())
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.in_port.is_none() && self.fields.is_empty() {
            return f.write_str("*");
        }
        let mut first = true;
        if let Some(p) = self.in_port {
            write!(f, "in_port={p}")?;
            first = false;
        }
        for (field, v) in &self.fields {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}={v}", field.short())?;
            first = false;
        }
        Ok(())
    }
}

/// A flow action. All variants are scalar, so actions copy for free —
/// the simulator stages them through a reusable buffer instead of cloning
/// the owning entry per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Forward out of a port.
    Output(i64),
    /// Drop the packet.
    Drop,
    /// Punt to the controller (explicit).
    Controller,
    /// Flood out of every port except the ingress.
    Flood,
    /// Rewrite a header field, then continue with the next action.
    Modify(Field, i64),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output(p) => write!(f, "output:{p}"),
            Action::Drop => f.write_str("drop"),
            Action::Controller => f.write_str("controller"),
            Action::Flood => f.write_str("flood"),
            Action::Modify(field, v) => write!(f, "set {}={v}", field.short()),
        }
    }
}

/// One flow entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowEntry {
    /// Priority (higher wins).
    pub priority: i32,
    /// Match specification.
    pub m: Match,
    /// Action list, applied in order.
    pub actions: Vec<Action>,
}

impl FlowEntry {
    /// Build an entry.
    pub fn new(priority: i32, m: Match, actions: Vec<Action>) -> Self {
        FlowEntry { priority, m, actions }
    }
}

impl fmt::Display for FlowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} -> ", self.priority, self.m)?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Linear scan beats hashing for tiny tables (the common reactive case:
/// a handful of entries per switch); the index only engages above this.
const INDEX_MIN_ENTRIES: usize = 8;

/// Probe keys up to this many dimensions use a stack buffer (a `Match`
/// rarely constrains more than in_port + five header fields).
const KEY_STACK_DIMS: usize = 8;

/// One signature group: every indexed entry that constrains exactly
/// `(has_in_port, fields)` in this order, bucketed by constrained values.
struct SigGroup {
    has_in_port: bool,
    fields: Vec<Field>,
    /// Constrained values (`[in_port?, field values...]`) → index of the
    /// best entry with those values, i.e. the smallest index in the
    /// priority/specificity-sorted `entries` vec.
    buckets: HashMap<Vec<i64>, usize>,
}

/// The lazily (re)built signature index. `None` means stale: every
/// mutation resets it, the next lookup rebuilds it from `entries`.
/// Interior mutability keeps `lookup(&self)` shared; the `RwLock` (rather
/// than a `RefCell`) keeps `FlowTable: Sync` for the backtest pool.
#[derive(Default)]
struct LookupIndex {
    built: RwLock<Option<Vec<SigGroup>>>,
}

impl LookupIndex {
    fn invalidate(&mut self) {
        match self.built.get_mut() {
            Ok(slot) => *slot = None,
            Err(poisoned) => *poisoned.into_inner() = None,
        }
    }
}

fn build_index(entries: &[FlowEntry]) -> Vec<SigGroup> {
    let mut groups: Vec<SigGroup> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let has_in_port = e.m.in_port.is_some();
        let gi = groups
            .iter()
            .position(|g| {
                g.has_in_port == has_in_port
                    && g.fields.len() == e.m.fields.len()
                    && g.fields.iter().zip(e.m.fields.iter()).all(|(f, (ef, _))| f == ef)
            })
            .unwrap_or_else(|| {
                groups.push(SigGroup {
                    has_in_port,
                    fields: e.m.fields.iter().map(|(f, _)| *f).collect(),
                    buckets: HashMap::new(),
                });
                groups.len() - 1
            });
        let mut key: Vec<i64> = Vec::with_capacity(e.m.specificity());
        if let Some(p) = e.m.in_port {
            key.push(p);
        }
        key.extend(e.m.fields.iter().map(|(_, v)| *v));
        // Entries are scanned best-first, so the first write per key is
        // the winner for that exact (signature, values) cell.
        groups[gi].buckets.entry(key).or_insert(i);
    }
    groups
}

/// Best (= smallest) entry index across all signature groups for `pkt`.
fn probe_index(groups: &[SigGroup], pkt: &Packet, in_port: i64) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut stack = [0i64; KEY_STACK_DIMS];
    for g in groups {
        let dims = g.fields.len() + usize::from(g.has_in_port);
        let hit = if dims <= KEY_STACK_DIMS {
            let mut k = 0;
            if g.has_in_port {
                stack[0] = in_port;
                k = 1;
            }
            for f in &g.fields {
                stack[k] = pkt.field(*f);
                k += 1;
            }
            g.buckets.get(&stack[..dims])
        } else {
            let mut key: Vec<i64> = Vec::with_capacity(dims);
            if g.has_in_port {
                key.push(in_port);
            }
            key.extend(g.fields.iter().map(|f| pkt.field(*f)));
            g.buckets.get(key.as_slice())
        };
        if let Some(&i) = hit {
            best = Some(best.map_or(i, |b| b.min(i)));
        }
    }
    best
}

/// A switch's flow table.
#[derive(Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    index: LookupIndex,
    use_reference: bool,
}

impl Clone for FlowTable {
    fn clone(&self) -> Self {
        // The clone starts with a stale index and rebuilds on first lookup.
        FlowTable {
            entries: self.entries.clone(),
            index: LookupIndex::default(),
            use_reference: self.use_reference,
        }
    }
}

impl fmt::Debug for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowTable").field("entries", &self.entries).finish()
    }
}

impl Serialize for FlowTable {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("entries".to_string(), self.entries.to_value())])
    }
}

impl Deserialize for FlowTable {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = match v {
            serde::Value::Object(m) => m,
            other => return serde::__private::unexpected("FlowTable", "object", other),
        };
        Ok(FlowTable {
            entries: Deserialize::from_value(serde::__private::field(obj, "FlowTable", "entries")?)?,
            index: LookupIndex::default(),
            use_reference: false,
        })
    }
}

impl FlowTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install an entry. An entry with an identical match and priority
    /// already present is kept (first install wins) — the controller proxy
    /// deduplicates redundant `FlowMod`s, so the first rule to fire for a
    /// flow owns its entry. Use [`FlowTable::replace`] for modify
    /// semantics.
    pub fn install(&mut self, entry: FlowEntry) {
        if self
            .entries
            .iter()
            .any(|e| e.m == entry.m && e.priority == entry.priority)
        {
            return;
        }
        self.entries.push(entry);
        // Highest priority first; ties broken by specificity, then
        // insertion order (stable sort).
        self.entries
            .sort_by(|a, b| b.priority.cmp(&a.priority).then(b.m.specificity().cmp(&a.m.specificity())));
        self.index.invalidate();
    }

    /// Install with modify semantics: an entry with an identical match and
    /// priority is overwritten.
    pub fn replace(&mut self, entry: FlowEntry) {
        self.entries.retain(|e| !(e.m == entry.m && e.priority == entry.priority));
        self.index.invalidate();
        self.install(entry);
    }

    /// Remove entries whose match equals `m` exactly.
    pub fn remove(&mut self, m: &Match) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| &e.m != m);
        self.index.invalidate();
        before - self.entries.len()
    }

    /// Remove everything (a switch crash wipes its table through here).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.invalidate();
    }

    /// Force every lookup through [`FlowTable::lookup_reference`] — the
    /// differential-testing hook that lets a whole simulation run on the
    /// oracle path for bit-identical comparison against the index.
    pub fn set_reference_mode(&mut self, on: bool) {
        self.use_reference = on;
    }

    /// Best-match lookup: highest priority, then most specific, then
    /// earliest installed. Served by the signature index for large tables
    /// and a short linear scan for small ones; both agree exactly with
    /// [`FlowTable::lookup_reference`].
    pub fn lookup(&self, pkt: &Packet, in_port: i64) -> Option<&FlowEntry> {
        if self.use_reference {
            return self.lookup_reference(pkt, in_port);
        }
        if self.entries.len() < INDEX_MIN_ENTRIES {
            return self.entries.iter().find(|e| e.m.matches(pkt, in_port));
        }
        {
            let guard = self.index.built.read().unwrap_or_else(|p| p.into_inner());
            if let Some(groups) = guard.as_ref() {
                return probe_index(groups, pkt, in_port).map(|i| &self.entries[i]);
            }
        }
        let groups = build_index(&self.entries);
        let best = probe_index(&groups, pkt, in_port);
        let mut guard = self.index.built.write().unwrap_or_else(|p| p.into_inner());
        if guard.is_none() {
            *guard = Some(groups);
        }
        drop(guard);
        best.map(|i| &self.entries[i])
    }

    /// Reference lookup by exhaustive scan, written against the behavioral
    /// spec directly: among matching entries pick the highest priority,
    /// then the most specific, then the earliest installed. The property
    /// tests and the differential simulator runs hold [`FlowTable::lookup`]
    /// (linear or indexed) bit-identical to this oracle.
    pub fn lookup_reference(&self, pkt: &Packet, in_port: i64) -> Option<&FlowEntry> {
        let mut best: Option<&FlowEntry> = None;
        for e in &self.entries {
            if !e.m.matches(pkt, in_port) {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    (e.priority, e.m.specificity()) > (b.priority, b.m.specificity())
                }
            };
            if better {
                best = Some(e);
            }
        }
        best
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in match order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::ports;

    #[test]
    fn priority_and_wildcard_matching() {
        let mut ft = FlowTable::new();
        ft.install(FlowEntry::new(1, Match::any(), vec![Action::Drop]));
        ft.install(FlowEntry::new(
            10,
            Match::any().with(Field::DstPort, ports::HTTP),
            vec![Action::Output(2)],
        ));
        let http = Packet::http(1, 5, 9);
        let dns = Packet::dns(2, 5, 9);
        assert_eq!(ft.lookup(&http, 1).unwrap().actions, vec![Action::Output(2)]);
        assert_eq!(ft.lookup(&dns, 1).unwrap().actions, vec![Action::Drop]);
    }

    #[test]
    fn in_port_constraints() {
        let mut ft = FlowTable::new();
        ft.install(FlowEntry::new(
            5,
            Match::any().on_port(3),
            vec![Action::Output(1)],
        ));
        let p = Packet::http(1, 5, 9);
        assert!(ft.lookup(&p, 3).is_some());
        assert!(ft.lookup(&p, 2).is_none());
    }

    #[test]
    fn install_keeps_first_replace_overwrites() {
        let mut ft = FlowTable::new();
        let m = Match::any().with(Field::DstPort, 80);
        ft.install(FlowEntry::new(5, m.clone(), vec![Action::Output(1)]));
        ft.install(FlowEntry::new(5, m.clone(), vec![Action::Output(2)]));
        assert_eq!(ft.len(), 1);
        // First install wins.
        assert_eq!(
            ft.lookup(&Packet::http(1, 5, 9), 1).unwrap().actions,
            vec![Action::Output(1)]
        );
        // Modify semantics overwrite.
        ft.replace(FlowEntry::new(5, m.clone(), vec![Action::Output(2)]));
        assert_eq!(ft.len(), 1);
        assert_eq!(
            ft.lookup(&Packet::http(1, 5, 9), 1).unwrap().actions,
            vec![Action::Output(2)]
        );
        assert_eq!(ft.remove(&m), 1);
        assert!(ft.is_empty());
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut ft = FlowTable::new();
        ft.install(FlowEntry::new(5, Match::any(), vec![Action::Drop]));
        ft.install(FlowEntry::new(
            5,
            Match::any().with(Field::DstPort, 80).with(Field::SrcIp, 5),
            vec![Action::Output(9)],
        ));
        let p = Packet::http(1, 5, 9);
        assert_eq!(ft.lookup(&p, 1).unwrap().actions, vec![Action::Output(9)]);
    }

    #[test]
    fn fast_path_agrees_with_reference() {
        let mut ft = FlowTable::new();
        ft.install(FlowEntry::new(1, Match::any(), vec![Action::Drop]));
        ft.install(FlowEntry::new(7, Match::any().with(Field::SrcIp, 5), vec![Action::Output(1)]));
        ft.install(FlowEntry::new(7, Match::any().with(Field::DstPort, 80).on_port(2), vec![Action::Output(3)]));
        for (pkt, port) in [
            (Packet::http(1, 5, 9), 2),
            (Packet::http(2, 6, 9), 2),
            (Packet::dns(3, 5, 9), 1),
            (Packet::icmp(4, 0, 0), 9),
        ] {
            assert_eq!(ft.lookup(&pkt, port), ft.lookup_reference(&pkt, port));
        }
    }

    #[test]
    fn display_renders_entries() {
        let e = FlowEntry::new(
            5,
            Match::any().with(Field::DstPort, 80).on_port(1),
            vec![Action::Modify(Field::DstIp, 9), Action::Output(2)],
        );
        assert_eq!(e.to_string(), "[5] in_port=1,Dpt=80 -> set Dip=9,output:2");
        assert_eq!(Match::any().to_string(), "*");
    }
}
