//! Deterministic fault injection: the network failures of §5 re-created
//! on a seeded schedule.
//!
//! A [`FaultPlan`] is a pure value — serializable, comparable, and owned
//! by [`crate::SimConfig`] — describing *when* links go down or flap,
//! *when* switches crash (flow-table wipe + restart), and *how* the
//! control channel misbehaves (drop / duplicate / reorder / delay). The
//! simulator consumes the plan with a dedicated RNG stream seeded from
//! [`FaultPlan::seed`], so enabling faults never perturbs the base
//! `drop_chance` stream: a run with an empty plan is bit-identical to a
//! run on a build without this module.
//!
//! Everything here is time-driven off the simulator's virtual clock, so
//! the same `(seed, plan, workload)` triple always yields the same
//! [`crate::SimStats`] — the property the chaos harness and the pinned
//! regression scenarios rely on.

use crate::topology::NodeRef;
use serde::{Deserialize, Serialize};

/// A half-open window of simulated time `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// First instant (inclusive) at which the fault is active.
    pub from: u64,
    /// First instant (exclusive) at which the fault has cleared.
    pub until: u64,
}

impl Window {
    /// Does this window cover `t`?
    pub fn contains(&self, t: u64) -> bool {
        self.from <= t && t < self.until
    }
}

/// A link fault: the (undirected) link between `a` and `b` is dead during
/// each listed window. Packets emitted onto a dead link are dropped and
/// counted in [`crate::SimStats::dropped_link_down`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// One endpoint.
    pub a: NodeRef,
    /// The other endpoint (order does not matter).
    pub b: NodeRef,
    /// When the link is down.
    pub windows: Vec<Window>,
}

impl LinkFault {
    /// A single outage: the link is down for `[from, until)`.
    pub fn down(a: NodeRef, b: NodeRef, from: u64, until: u64) -> Self {
        LinkFault { a, b, windows: vec![Window { from, until }] }
    }

    /// A flapping link: alternating down/up windows of length `period`
    /// starting down at `from`, clipped to `until`.
    pub fn flap(a: NodeRef, b: NodeRef, from: u64, until: u64, period: u64) -> Self {
        let period = period.max(1);
        let mut windows = Vec::new();
        let mut t = from;
        while t < until {
            windows.push(Window { from: t, until: (t + period).min(until) });
            t += 2 * period;
        }
        LinkFault { a, b, windows }
    }

    /// Is the link `{x, y}` affected by this fault at time `t`?
    pub fn hits(&self, x: NodeRef, y: NodeRef, t: u64) -> bool {
        let same = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        same && self.windows.iter().any(|w| w.contains(t))
    }
}

/// A switch crash: at time `at` the switch loses its entire flow table
/// (OpenFlow state is not persistent) and stays dark for `down_for`
/// ticks. It restarts with an *empty* table — recovery is the
/// controller's job, which is exactly what the chaos harness probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchCrash {
    /// The switch that crashes.
    pub switch: i64,
    /// Crash instant.
    pub at: u64,
    /// Length of the dark window; the switch accepts traffic again at
    /// `at + down_for`.
    pub down_for: u64,
}

impl SwitchCrash {
    /// Is the switch dark at time `t`?
    pub fn covers(&self, t: u64) -> bool {
        self.at <= t && t < self.at + self.down_for
    }
}

/// Control-channel misbehavior, applied per controller reply with the
/// plan's dedicated RNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CtrlFaults {
    /// Probability a reply (FlowMod or PacketOut) is silently lost.
    pub drop_chance: f64,
    /// Probability a reply is delivered twice.
    pub dup_chance: f64,
    /// Probability a reply is held back and delivered later.
    pub delay_chance: f64,
    /// Minimum extra delay (simulated ticks) for a delayed reply.
    pub delay_min: u64,
    /// Maximum extra delay (inclusive) for a delayed reply.
    pub delay_max: u64,
    /// Randomly reverse the reply batch of a single PacketIn, so a
    /// PacketOut can overtake the FlowMod it depends on (and vice versa).
    pub reorder: bool,
}

impl Default for CtrlFaults {
    fn default() -> Self {
        CtrlFaults {
            drop_chance: 0.0,
            dup_chance: 0.0,
            delay_chance: 0.0,
            delay_min: 1,
            delay_max: 1,
            reorder: false,
        }
    }
}

impl CtrlFaults {
    /// True when no control-channel fault can ever fire.
    pub fn is_noop(&self) -> bool {
        self.drop_chance <= 0.0 && self.dup_chance <= 0.0 && self.delay_chance <= 0.0 && !self.reorder
    }
}

/// A complete, seeded fault schedule. The default plan is empty and
/// injects nothing; [`FaultPlan::is_empty`] gates every fault check in
/// the simulator, so the disabled layer costs one branch per event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the plan's private RNG stream (control-channel chances).
    /// Independent of [`crate::SimConfig::seed`].
    pub seed: u64,
    /// Scheduled link outages and flaps.
    pub links: Vec<LinkFault>,
    /// Scheduled switch crashes.
    pub crashes: Vec<SwitchCrash>,
    /// Control-channel misbehavior.
    pub ctrl: CtrlFaults,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan { seed: 0, links: Vec::new(), crashes: Vec::new(), ctrl: CtrlFaults::default() }
    }
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.crashes.is_empty() && self.ctrl.is_noop()
    }

    /// Is the (undirected) link `{x, y}` down at time `t`?
    pub fn link_down(&self, x: NodeRef, y: NodeRef, t: u64) -> bool {
        self.links.iter().any(|f| f.hits(x, y, t))
    }

    /// Is `switch` dark at time `t`?
    pub fn switch_down(&self, switch: i64, t: u64) -> bool {
        self.crashes.iter().any(|c| c.switch == switch && c.covers(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_alternates_and_clips() {
        let f = LinkFault::flap(NodeRef::Switch(1), NodeRef::Switch(2), 10, 45, 10);
        assert_eq!(
            f.windows,
            vec![Window { from: 10, until: 20 }, Window { from: 30, until: 40 }]
        );
        assert!(f.hits(NodeRef::Switch(2), NodeRef::Switch(1), 15));
        assert!(!f.hits(NodeRef::Switch(1), NodeRef::Switch(2), 25));
        assert!(!f.hits(NodeRef::Switch(1), NodeRef::Switch(3), 15));
    }

    #[test]
    fn crash_window_is_half_open() {
        let c = SwitchCrash { switch: 4, at: 100, down_for: 50 };
        assert!(!c.covers(99));
        assert!(c.covers(100));
        assert!(c.covers(149));
        assert!(!c.covers(150));
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        let plan = FaultPlan {
            crashes: vec![SwitchCrash { switch: 1, at: 0, down_for: 1 }],
            ..FaultPlan::default()
        };
        assert!(!plan.is_empty());
    }

    #[test]
    fn plans_roundtrip_through_serde() {
        let plan = FaultPlan {
            seed: 99,
            links: vec![LinkFault::down(NodeRef::Switch(1), NodeRef::Host(7), 5, 25)],
            crashes: vec![SwitchCrash { switch: 2, at: 40, down_for: 10 }],
            ctrl: CtrlFaults { drop_chance: 0.25, reorder: true, ..CtrlFaults::default() },
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
