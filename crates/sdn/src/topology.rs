//! Network topologies: the Fig. 1 fixture and the Stanford-campus-style
//! generator used by the evaluation (§5.2).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, RwLock};

/// A node reference: switch or host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeRef {
    /// A switch, by id.
    Switch(i64),
    /// A host, by id (the id doubles as its IP).
    Host(i64),
}

impl NodeRef {
    /// The id regardless of kind.
    pub fn id(&self) -> i64 {
        match self {
            NodeRef::Switch(i) | NodeRef::Host(i) => *i,
        }
    }
}

/// Memoized `routes_to` results, keyed by host and guarded by the owning
/// topology's generation counter: any link-state mutation bumps the
/// generation, and a cache stamped with an older generation is flushed
/// wholesale on the next lookup. Interior mutability keeps `routes_to`
/// callable through `&Topology`; the `RwLock` keeps the cache `Sync` for
/// the backtest pool workers that share one topology.
#[derive(Default)]
struct RouteCache {
    inner: RwLock<RouteCacheInner>,
}

#[derive(Default)]
struct RouteCacheInner {
    /// Generation of the topology these routes were computed against.
    generation: u64,
    routes: HashMap<i64, Arc<BTreeMap<i64, i64>>>,
}

impl fmt::Debug for RouteCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("RouteCache")
            .field("generation", &inner.generation)
            .field("hosts", &inner.routes.len())
            .finish()
    }
}

/// An undirected multigraph of switches and hosts with numbered ports.
#[derive(Debug, Default)]
pub struct Topology {
    /// Switch ids.
    pub switches: BTreeSet<i64>,
    /// Host ids.
    pub hosts: BTreeSet<i64>,
    links: BTreeMap<(NodeRef, i64), (NodeRef, i64)>,
    next_port: BTreeMap<NodeRef, i64>,
    /// Bumped by every mutation that can affect connectivity.
    generation: u64,
    cache: RouteCache,
}

impl Clone for Topology {
    fn clone(&self) -> Self {
        // The clone is an independent topology: it keeps the generation
        // (so equality of generations still implies "same link state" per
        // instance) but starts with an empty route cache.
        Topology {
            switches: self.switches.clone(),
            hosts: self.hosts.clone(),
            links: self.links.clone(),
            next_port: self.next_port.clone(),
            generation: self.generation,
            cache: RouteCache::default(),
        }
    }
}

// The route cache is derived state and stays out of the wire format: the
// manual impls mirror exactly what `#[derive(Serialize, Deserialize)]`
// produced for the four data fields before the cache existed.
impl Serialize for Topology {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("switches".to_string(), self.switches.to_value()),
            ("hosts".to_string(), self.hosts.to_value()),
            ("links".to_string(), self.links.to_value()),
            ("next_port".to_string(), self.next_port.to_value()),
        ])
    }
}

impl Deserialize for Topology {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = match v {
            serde::Value::Object(m) => m,
            other => return serde::__private::unexpected("Topology", "object", other),
        };
        let field = |name| serde::__private::field(obj, "Topology", name);
        Ok(Topology {
            switches: Deserialize::from_value(field("switches")?)?,
            hosts: Deserialize::from_value(field("hosts")?)?,
            links: Deserialize::from_value(field("links")?)?,
            next_port: Deserialize::from_value(field("next_port")?)?,
            generation: 0,
            cache: RouteCache::default(),
        })
    }
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a switch.
    pub fn add_switch(&mut self, id: i64) {
        self.switches.insert(id);
        self.generation += 1;
    }

    /// Add a host.
    pub fn add_host(&mut self, id: i64) {
        self.hosts.insert(id);
        self.generation += 1;
    }

    /// The link-state generation. Bumped by every mutation; the route
    /// cache is only served while its stamp matches this counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn alloc_port(&mut self, n: NodeRef) -> i64 {
        let p = self.next_port.entry(n).or_insert(1);
        let out = *p;
        *p += 1;
        out
    }

    /// Connect two nodes, auto-assigning the next free port on each side.
    /// Returns `(port_on_a, port_on_b)`.
    pub fn connect(&mut self, a: NodeRef, b: NodeRef) -> (i64, i64) {
        let pa = self.alloc_port(a);
        let pb = self.alloc_port(b);
        self.connect_ports(a, pa, b, pb);
        (pa, pb)
    }

    /// Connect two nodes on explicit ports.
    pub fn connect_ports(&mut self, a: NodeRef, pa: i64, b: NodeRef, pb: i64) {
        self.links.insert((a, pa), (b, pb));
        self.links.insert((b, pb), (a, pa));
        let na = self.next_port.entry(a).or_insert(1);
        *na = (*na).max(pa + 1);
        let nb = self.next_port.entry(b).or_insert(1);
        *nb = (*nb).max(pb + 1);
        self.generation += 1;
    }

    /// The far end of `(node, port)`.
    pub fn peer(&self, node: NodeRef, port: i64) -> Option<(NodeRef, i64)> {
        self.links.get(&(node, port)).copied()
    }

    /// A node's links as `(port, (peer, peer_port))`, in port order. A
    /// range query on the link map — O(log n + degree), not O(links).
    pub fn links_of(
        &self,
        node: NodeRef,
    ) -> impl Iterator<Item = (i64, (NodeRef, i64))> + '_ {
        self.links
            .range((node, i64::MIN)..=(node, i64::MAX))
            .map(|((_, p), peer)| (*p, *peer))
    }

    /// Every directed link as `((node, port), (peer, peer_port))`.
    pub fn all_links(&self) -> impl Iterator<Item = ((NodeRef, i64), (NodeRef, i64))> + '_ {
        self.links.iter().map(|(k, v)| (*k, *v))
    }

    /// All connected ports of a node.
    pub fn ports(&self, node: NodeRef) -> Vec<i64> {
        self.links_of(node).map(|(p, _)| p).collect()
    }

    /// The `(switch, switch_port)` a host hangs off (hosts are single-homed).
    pub fn host_attachment(&self, host: i64) -> Option<(i64, i64)> {
        self.links_of(NodeRef::Host(host)).find_map(|(_, (peer, peer_port))| match peer {
            NodeRef::Switch(s) => Some((s, peer_port)),
            NodeRef::Host(_) => None,
        })
    }

    /// Number of links (undirected).
    pub fn link_count(&self) -> usize {
        self.links.len() / 2
    }

    /// Shortest-path routing toward `host`, memoized. The first call per
    /// `(generation, host)` runs [`Topology::routes_to_uncached`]; repeat
    /// calls — every proactive-route install, every backtest candidate —
    /// share one `Arc` of the result. Mutating the topology bumps the
    /// generation and invalidates the whole cache.
    pub fn routes_to(&self, host: i64) -> Arc<BTreeMap<i64, i64>> {
        {
            let cache = self.cache.inner.read().unwrap_or_else(|p| p.into_inner());
            if cache.generation == self.generation {
                if let Some(r) = cache.routes.get(&host) {
                    return Arc::clone(r);
                }
            }
        }
        let computed = Arc::new(self.routes_to_uncached(host));
        let mut cache = self.cache.inner.write().unwrap_or_else(|p| p.into_inner());
        if cache.generation != self.generation {
            cache.routes.clear();
            cache.generation = self.generation;
        }
        Arc::clone(cache.routes.entry(host).or_insert(computed))
    }

    /// Shortest-path routing toward `host`: for each switch, the port that
    /// leads one hop closer. BFS from the attachment switch. This is the
    /// uncached reference path; [`Topology::routes_to`] memoizes it.
    pub fn routes_to_uncached(&self, host: i64) -> BTreeMap<i64, i64> {
        let mut out = BTreeMap::new();
        let Some((root, root_port)) = self.host_attachment(host) else {
            return out;
        };
        out.insert(root, root_port);
        let mut visited: BTreeSet<i64> = [root].into();
        let mut queue: VecDeque<i64> = [root].into();
        while let Some(s) = queue.pop_front() {
            for (_, (peer, peer_port)) in self.links_of(NodeRef::Switch(s)) {
                if let NodeRef::Switch(t) = peer {
                    if visited.insert(t) {
                        out.insert(t, peer_port);
                        queue.push_back(t);
                    }
                }
            }
        }
        out
    }
}

/// Host ids in the Fig. 1 fixture.
pub mod fig1_hosts {
    /// The border host standing in for the Internet.
    pub const INTERNET: i64 = 100;
    /// Primary web server H1.
    pub const H1: i64 = 10;
    /// Backup web server H2.
    pub const H2: i64 = 20;
    /// DNS server.
    pub const DNS: i64 = 17;
}

/// The Fig. 1 scenario topology: switch S1 fans out to S2 (web server H1)
/// and S3 (backup web server H2 + DNS server); HTTP and DNS traffic enters
/// at S1 from a border host standing in for the Internet.
///
/// Port map (fixed, referenced by the Fig. 2 program):
/// - S1: port 0 = Internet, port 1 = S2, port 2 = S3
/// - S2: port 0 = S1, port 1 = H1, port 2 = S3
/// - S3: port 0 = S1, port 1 = DNS server, port 2 = H2, port 3 = S2
pub fn fig1() -> Topology {
    use fig1_hosts::*;
    let mut t = Topology::new();
    for s in [1, 2, 3] {
        t.add_switch(s);
    }
    for h in [INTERNET, H1, H2, DNS] {
        t.add_host(h);
    }
    let (s1, s2, s3) = (NodeRef::Switch(1), NodeRef::Switch(2), NodeRef::Switch(3));
    t.connect_ports(s1, 0, NodeRef::Host(INTERNET), 0);
    t.connect_ports(s1, 1, s2, 0);
    t.connect_ports(s1, 2, s3, 0);
    t.connect_ports(s2, 1, NodeRef::Host(H1), 0);
    t.connect_ports(s2, 2, s3, 3);
    t.connect_ports(s3, 1, NodeRef::Host(DNS), 0);
    t.connect_ports(s3, 2, NodeRef::Host(H2), 0);
    t
}

/// Parameters for the campus generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampusParams {
    /// Core/Operational-Zone routers (the Stanford config has 16).
    pub core: usize,
    /// Edge networks, each rooted at one edge switch.
    pub edges: usize,
    /// Hosts per edge network (1–15 in §5.2).
    pub hosts_per_edge: usize,
}

impl Default for CampusParams {
    fn default() -> Self {
        // Smallest evaluation topology: 16 core + 3 edge = 19 routers.
        CampusParams { core: 16, edges: 3, hosts_per_edge: 15 }
    }
}

impl CampusParams {
    /// Scale the number of edge networks so the total switch count is
    /// `switches` (Fig. 9c sweeps 19 → 169).
    pub fn with_total_switches(switches: usize) -> Self {
        let core = 16.min(switches.saturating_sub(1)).max(1);
        CampusParams { core, edges: switches.saturating_sub(core), hosts_per_edge: 3 }
    }

    /// Total switch count.
    pub fn total_switches(&self) -> usize {
        self.core + self.edges
    }
}

/// Ids used by the campus generator.
pub mod campus_ids {
    /// First host id.
    pub const HOST_BASE: i64 = 1000;
    /// The border host representing external traffic.
    pub const BORDER: i64 = 999;
}

/// Generate a campus network: a ring-with-chords core (like the Stanford
/// backbone's OZ routers) and `edges` edge switches, each dual-homed to the
/// core and serving `hosts_per_edge` hosts. A border host on core switch 1
/// plays the Internet.
pub fn campus(params: &CampusParams) -> Topology {
    let mut t = Topology::new();
    let core_n = params.core as i64;
    for s in 1..=core_n {
        t.add_switch(s);
    }
    // Ring.
    for s in 1..=core_n {
        let next = s % core_n + 1;
        if core_n > 1 {
            t.connect(NodeRef::Switch(s), NodeRef::Switch(next));
        }
    }
    // Chords every 4 for path diversity.
    if core_n > 4 {
        for s in 1..=core_n {
            let far = (s + 3) % core_n + 1;
            if far != s {
                t.connect(NodeRef::Switch(s), NodeRef::Switch(far));
            }
        }
    }
    // Border host.
    t.add_host(campus_ids::BORDER);
    t.connect(NodeRef::Switch(1), NodeRef::Host(campus_ids::BORDER));
    // Edge switches and hosts.
    let mut host_id = campus_ids::HOST_BASE;
    for e in 0..params.edges as i64 {
        let sw = core_n + 1 + e;
        t.add_switch(sw);
        let up1 = e % core_n + 1;
        let up2 = (e * 7 + 3) % core_n + 1;
        t.connect(NodeRef::Switch(sw), NodeRef::Switch(up1));
        if up2 != up1 && core_n > 1 {
            t.connect(NodeRef::Switch(sw), NodeRef::Switch(up2));
        }
        for _ in 0..params.hosts_per_edge {
            t.add_host(host_id);
            t.connect(NodeRef::Switch(sw), NodeRef::Host(host_id));
            host_id += 1;
        }
    }
    t
}

/// Parameters for the fat-tree/Clos generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricParams {
    /// Fat-tree arity `k` (even): `k` pods of `k/2` aggregation + `k/2`
    /// edge switches over `(k/2)²` cores — `5k²/4` switches total.
    pub k: usize,
    /// Hosts attached to each edge switch (the canonical fat-tree uses
    /// `k/2`; capped here so 10k-switch fabrics keep workable host counts).
    pub hosts_per_edge: usize,
}

impl FabricParams {
    /// Pick the even `k` whose `5k²/4` switch count lands closest to
    /// `switches` (the fig9c-XL sweep asks for 169 → 1k → 4k → 10k).
    pub fn with_total_switches(switches: usize) -> Self {
        let ideal = (4.0 * switches as f64 / 5.0).sqrt();
        let lo = ((ideal as usize) / 2 * 2).max(2);
        let hi = lo + 2;
        let count = |k: usize| 5 * k * k / 4;
        let k = if switches.abs_diff(count(lo)) <= switches.abs_diff(count(hi)) { lo } else { hi };
        let edges = k * k / 2;
        // Denser host fan-out on small fabrics, sparse at 10k switches.
        let hosts_per_edge = (512 / edges.max(1)).clamp(1, 8);
        FabricParams { k, hosts_per_edge }
    }

    /// Total switch count (`(k/2)²` cores + `k²/2` agg + `k²/2` edge).
    pub fn total_switches(&self) -> usize {
        5 * self.k * self.k / 4
    }

    /// Total host count.
    pub fn total_hosts(&self) -> usize {
        self.k * self.k / 2 * self.hosts_per_edge
    }
}

/// Ids used by the fat-tree generator.
pub mod fabric_ids {
    /// First host id (hosts are appended after all switch ids).
    pub const HOST_BASE: i64 = 10_000_000;
}

/// Generate a `k`-ary fat-tree (Al-Fares-style Clos): `(k/2)²` core
/// switches; `k` pods, each with `k/2` aggregation switches fully meshed
/// to `k/2` edge switches; aggregation switch `i` of every pod uplinks to
/// cores `[i·k/2, (i+1)·k/2)`. Edge switches carry `hosts_per_edge` hosts.
/// Switch ids: cores `1..=(k/2)²`, then per pod aggs, then edges.
pub fn fat_tree(params: &FabricParams) -> Topology {
    let k = params.k.max(2) & !1; // even, ≥ 2
    let half = (k / 2) as i64;
    let core_n = half * half;
    let mut t = Topology::new();
    for c in 1..=core_n {
        t.add_switch(c);
    }
    let agg_id = |pod: i64, i: i64| core_n + pod * half + i + 1;
    let edge_id = |pod: i64, j: i64| core_n + (k as i64) * half + pod * half + j + 1;
    let mut host_id = fabric_ids::HOST_BASE;
    for pod in 0..k as i64 {
        for i in 0..half {
            t.add_switch(agg_id(pod, i));
            // Uplinks: agg i owns core block [i·half, (i+1)·half).
            for c in 0..half {
                t.connect(NodeRef::Switch(agg_id(pod, i)), NodeRef::Switch(i * half + c + 1));
            }
        }
        for j in 0..half {
            t.add_switch(edge_id(pod, j));
            for i in 0..half {
                t.connect(NodeRef::Switch(edge_id(pod, j)), NodeRef::Switch(agg_id(pod, i)));
            }
            for _ in 0..params.hosts_per_edge {
                t.add_host(host_id);
                t.connect(NodeRef::Switch(edge_id(pod, j)), NodeRef::Host(host_id));
                host_id += 1;
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_port_map_matches_docs() {
        let t = fig1();
        assert_eq!(t.switches.len(), 3);
        assert_eq!(t.hosts.len(), 4);
        assert_eq!(
            t.peer(NodeRef::Switch(1), 1),
            Some((NodeRef::Switch(2), 0))
        );
        assert_eq!(
            t.peer(NodeRef::Switch(3), 2),
            Some((NodeRef::Host(fig1_hosts::H2), 0))
        );
        assert_eq!(t.host_attachment(fig1_hosts::H2), Some((3, 2)));
        assert_eq!(t.host_attachment(fig1_hosts::INTERNET), Some((1, 0)));
    }

    #[test]
    fn routes_reach_every_switch() {
        let t = fig1();
        let routes = t.routes_to(fig1_hosts::H2);
        // Every switch has a port toward H2.
        assert_eq!(routes.len(), 3);
        assert_eq!(routes[&3], 2); // S3 delivers directly
        // Following the route from S1 terminates at H2.
        let mut at = 1;
        for _ in 0..5 {
            let port = routes[&at];
            match t.peer(NodeRef::Switch(at), port).unwrap() {
                (NodeRef::Switch(s), _) => at = s,
                (NodeRef::Host(h), _) => {
                    assert_eq!(h, fig1_hosts::H2);
                    return;
                }
            }
        }
        panic!("route did not terminate at H2");
    }

    #[test]
    fn campus_scales_to_paper_sizes() {
        // Smallest: 19 routers, 259 hosts (16 core + 3 edges; but our
        // default puts 45 hosts — the paper's exact host counts come from
        // its traces; shape is what matters).
        let t = campus(&CampusParams::default());
        assert_eq!(t.switches.len(), 19);
        // Largest evaluation size: 169 switches.
        let p = CampusParams::with_total_switches(169);
        let t = campus(&p);
        assert_eq!(t.switches.len(), 169);
        assert!(t.hosts.len() >= 400);
        // All hosts are attached and reachable.
        for h in &t.hosts {
            assert!(t.host_attachment(*h).is_some(), "host {h} unattached");
        }
        let some_host = *t.hosts.iter().next_back().unwrap();
        let routes = t.routes_to(some_host);
        assert_eq!(routes.len(), t.switches.len(), "core is connected");
    }

    #[test]
    fn connect_auto_ports_do_not_collide() {
        let mut t = Topology::new();
        t.add_switch(1);
        t.add_switch(2);
        t.add_switch(3);
        let (p1a, _) = t.connect(NodeRef::Switch(1), NodeRef::Switch(2));
        let (p1b, _) = t.connect(NodeRef::Switch(1), NodeRef::Switch(3));
        assert_ne!(p1a, p1b);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.ports(NodeRef::Switch(1)).len(), 2);
    }
}
