//! The controller interface and the NDlog controller adapter.
//!
//! A [`Controller`] receives OpenFlow-style `PacketIn` messages and answers
//! with `FlowMod`/`PacketOut` messages. [`NdlogController`] wraps an
//! `mpr-runtime` engine and a [`TupleCodec`] that maps packets onto
//! `PacketIn` tuples and derived `FlowTable`/`PacketOut` tuples back onto
//! control messages — the RapidNet proxy of §5.1.

use crate::flowtable::{Action, FlowEntry, Match};
use crate::packet::{Field, Packet};
use mpr_ndlog::{Program, Tuple, Value};
use mpr_runtime::{Engine, ExecLog, Options as EngineOptions};
use serde::{Deserialize, Serialize};

/// A `PacketIn` punt from a switch to the controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketInMsg {
    /// Switch that missed.
    pub switch: i64,
    /// Ingress port.
    pub in_port: i64,
    /// The packet (buffered at the switch).
    pub packet: Packet,
}

/// A message from the controller back to the network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CtrlMsg {
    /// Install a flow entry.
    FlowMod {
        /// Target switch.
        switch: i64,
        /// The entry.
        entry: FlowEntry,
    },
    /// Release the buffered packet with an action.
    PacketOut {
        /// Target switch.
        switch: i64,
        /// Packet to emit (usually the buffered one).
        packet: Packet,
        /// What to do with it.
        action: Action,
    },
}

/// The controller interface.
pub trait Controller {
    /// Handle a `PacketIn`; push control messages into `out` (handed in
    /// empty — the simulator reuses one buffer across punts so the hot
    /// path allocates nothing per miss).
    fn on_packet_in(&mut self, msg: &PacketInMsg, out: &mut Vec<CtrlMsg>);

    /// Display name (reports).
    fn name(&self) -> &str {
        "controller"
    }
}

/// A no-op controller (drops every punted packet).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullController;

impl Controller for NullController {
    fn on_packet_in(&mut self, _msg: &PacketInMsg, _out: &mut Vec<CtrlMsg>) {}

    fn name(&self) -> &str {
        "null"
    }
}

/// One argument slot of a `PacketIn`/match tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PktArg {
    /// A packet header field.
    Field(Field),
    /// The switch ingress port.
    InPort,
}

impl PktArg {
    fn value_of_parts(&self, in_port: i64, packet: &Packet) -> i64 {
        match self {
            PktArg::Field(f) => packet.field(*f),
            PktArg::InPort => in_port,
        }
    }
}

/// Mapping between packets and NDlog tuples. Conventions:
///
/// - `PacketIn(@C, Swi, <packet_in_args...>)` — the event fed to the engine;
/// - `FlowTable(@Swi, <match args...>, Prt)` — derived tuples whose location
///   is the target switch; the leading args (one per `flow_match_args`
///   entry) are exact-match values, the final arg is the output port
///   (negative = drop);
/// - optionally `PacketOut(@Swi, ..., Prt)` — release the buffered packet
///   out of `Prt` (the Q4 scenario hinges on a controller forgetting these).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TupleCodec {
    /// Location value of the controller node.
    pub controller_loc: Value,
    /// `PacketIn` table name.
    pub packet_in_table: String,
    /// Argument layout after the switch id.
    pub packet_in_args: Vec<PktArg>,
    /// `FlowTable` table name.
    pub flow_table: String,
    /// Which packet attributes the leading `FlowTable` args match on.
    pub flow_match_args: Vec<PktArg>,
    /// Priority given to installed entries.
    pub flow_priority: i32,
    /// Optional `PacketOut` table name (last arg = port).
    pub packet_out_table: Option<String>,
}

impl TupleCodec {
    /// The codec for the Fig. 2 program: `PacketIn(@C,Swi,Hdr)` where `Hdr`
    /// is the destination port, and `FlowTable(@Swi,Hdr,Prt)`.
    pub fn fig2() -> TupleCodec {
        TupleCodec {
            controller_loc: Value::str("C"),
            packet_in_table: "PacketIn".into(),
            packet_in_args: vec![PktArg::Field(Field::DstPort)],
            flow_table: "FlowTable".into(),
            flow_match_args: vec![PktArg::Field(Field::DstPort)],
            flow_priority: 10,
            packet_out_table: None,
        }
    }

    /// A five-tuple codec used by the richer scenarios:
    /// `PacketIn(@C,Swi,Sip,Dip,Spt,Dpt,Ipt)` and
    /// `FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt)`.
    pub fn five_tuple() -> TupleCodec {
        TupleCodec {
            controller_loc: Value::str("C"),
            packet_in_table: "PacketIn".into(),
            packet_in_args: vec![
                PktArg::Field(Field::SrcIp),
                PktArg::Field(Field::DstIp),
                PktArg::Field(Field::SrcPort),
                PktArg::Field(Field::DstPort),
                PktArg::InPort,
            ],
            flow_table: "FlowTable".into(),
            flow_match_args: vec![
                PktArg::Field(Field::SrcIp),
                PktArg::Field(Field::DstIp),
                PktArg::Field(Field::SrcPort),
                PktArg::Field(Field::DstPort),
            ],
            flow_priority: 10,
            packet_out_table: None,
        }
    }

    /// Encode a `PacketIn` message as the event tuple.
    pub fn packet_in_tuple(&self, msg: &PacketInMsg) -> Tuple {
        self.packet_in_tuple_parts(msg.switch, msg.in_port, &msg.packet)
    }

    /// [`Self::packet_in_tuple`] from the parts the simulator's compact
    /// packet-in log stores, so offline consumers (debugger trigger
    /// extraction) avoid rebuilding a `PacketInMsg` per record.
    pub fn packet_in_tuple_parts(&self, switch: i64, in_port: i64, packet: &Packet) -> Tuple {
        let mut args = Vec::with_capacity(1 + self.packet_in_args.len());
        args.push(Value::Int(switch));
        for a in &self.packet_in_args {
            args.push(Value::Int(a.value_of_parts(in_port, packet)));
        }
        Tuple::new(self.packet_in_table.clone(), self.controller_loc.clone(), args)
    }

    /// Decode a derived tuple into a control message, if it is one of the
    /// recognized output tables.
    pub fn decode(&self, tuple: &Tuple, msg: &PacketInMsg) -> Option<CtrlMsg> {
        if tuple.table == self.flow_table {
            let switch = tuple.loc.as_int()?;
            if tuple.args.len() != self.flow_match_args.len() + 1 {
                return None;
            }
            let mut m = Match::any();
            for (spec, v) in self.flow_match_args.iter().zip(tuple.args.iter()) {
                let v = v.as_int()?;
                match spec {
                    PktArg::Field(f) => m = m.with(*f, v),
                    PktArg::InPort => m = m.on_port(v),
                }
            }
            let port = tuple.args.last()?.as_int()?;
            let actions =
                if port < 0 { vec![Action::Drop] } else { vec![Action::Output(port)] };
            return Some(CtrlMsg::FlowMod {
                switch,
                entry: FlowEntry::new(self.flow_priority, m, actions),
            });
        }
        if let Some(po) = &self.packet_out_table {
            if &tuple.table == po {
                let switch = tuple.loc.as_int()?;
                let port = tuple.args.last()?.as_int()?;
                let action = if port < 0 { Action::Drop } else { Action::Output(port) };
                return Some(CtrlMsg::PacketOut { switch, packet: msg.packet.clone(), action });
            }
        }
        None
    }
}

/// An NDlog-programmed controller: the declarative environment of §5.1.
pub struct NdlogController {
    engine: Engine,
    codec: TupleCodec,
    program: Program,
    name: String,
}

impl NdlogController {
    /// Compile `program` with the default engine options.
    pub fn new(program: Program, codec: TupleCodec) -> Result<Self, mpr_runtime::CompileError> {
        Self::with_options(program, codec, EngineOptions::default())
    }

    /// Compile with explicit engine options (e.g. provenance off for the
    /// §5.4 overhead measurement).
    pub fn with_options(
        program: Program,
        codec: TupleCodec,
        opts: EngineOptions,
    ) -> Result<Self, mpr_runtime::CompileError> {
        let engine = Engine::with_options(&program, opts)?;
        let name = format!("ndlog:{}", program.name);
        Ok(NdlogController { engine, codec, program, name })
    }

    /// The controller program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The codec.
    pub fn codec(&self) -> &TupleCodec {
        &self.codec
    }

    /// Seed controller state (e.g. `WebLoadBalancer` configuration tuples).
    pub fn seed(&mut self, tuples: Vec<Tuple>) -> Result<(), mpr_runtime::RuntimeError> {
        self.engine.insert_all(tuples)?;
        Ok(())
    }

    /// Access the engine's execution log (the provenance record).
    pub fn exec_log(&self) -> &ExecLog {
        self.engine.log()
    }

    /// Direct access to the engine (diagnostics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl Controller for NdlogController {
    fn on_packet_in(&mut self, msg: &PacketInMsg, out: &mut Vec<CtrlMsg>) {
        let tuple = self.codec.packet_in_tuple(msg);
        if let Ok(step) = self.engine.insert(tuple) {
            out.extend(step.appeared.iter().filter_map(|t| self.codec.decode(t, msg)));
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::parse_program;

    fn msg(switch: i64, dst_port: i64) -> PacketInMsg {
        let mut p = Packet::http(1, 50, 20);
        p.dst_port = dst_port;
        PacketInMsg { switch, in_port: 0, packet: p }
    }

    #[test]
    fn codec_encodes_packet_in() {
        let c = TupleCodec::fig2();
        let t = c.packet_in_tuple(&msg(2, 80));
        assert_eq!(t.to_string(), "PacketIn(@'C',2,80)");
        let c5 = TupleCodec::five_tuple();
        let t = c5.packet_in_tuple(&msg(2, 80));
        assert_eq!(t.args.len(), 6);
    }

    #[test]
    fn codec_decodes_flow_mods_and_drops() {
        let c = TupleCodec::fig2();
        let m = msg(2, 80);
        let t = Tuple::new("FlowTable", 2i64, vec![Value::Int(80), Value::Int(1)]);
        match c.decode(&t, &m) {
            Some(CtrlMsg::FlowMod { switch, entry }) => {
                assert_eq!(switch, 2);
                assert_eq!(entry.actions, vec![Action::Output(1)]);
                assert!(entry.m.matches(&m.packet, 0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Negative port = drop entry.
        let t = Tuple::new("FlowTable", 1i64, vec![Value::Int(22), Value::Int(-1)]);
        match c.decode(&t, &m) {
            Some(CtrlMsg::FlowMod { entry, .. }) => {
                assert_eq!(entry.actions, vec![Action::Drop])
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown tables are ignored.
        let t = Tuple::new("Other", 1i64, vec![Value::Int(1)]);
        assert!(c.decode(&t, &m).is_none());
    }

    #[test]
    fn ndlog_controller_runs_fig2() {
        let program = parse_program(
            "fig2",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0)).
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            ",
        )
        .unwrap();
        let mut ctrl = NdlogController::new(program, TupleCodec::fig2()).unwrap();
        let mut out = Vec::new();
        ctrl.on_packet_in(&msg(2, 80), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], CtrlMsg::FlowMod { switch: 2, .. }));
        // Unmatched traffic produces nothing.
        out.clear();
        ctrl.on_packet_in(&msg(9, 22), &mut out);
        assert!(out.is_empty());
        assert!(ctrl.exec_log().len() > 0);
        assert_eq!(ctrl.name(), "ndlog:fig2");
    }

    #[test]
    fn packet_out_decoding() {
        let mut c = TupleCodec::fig2();
        c.packet_out_table = Some("PacketOut".into());
        let m = msg(2, 80);
        let t = Tuple::new("PacketOut", 2i64, vec![Value::Int(80), Value::Int(1)]);
        match c.decode(&t, &m) {
            Some(CtrlMsg::PacketOut { switch: 2, action: Action::Output(1), packet }) => {
                assert_eq!(packet, m.packet);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn null_controller_is_silent() {
        let mut c = NullController;
        let mut out = Vec::new();
        c.on_packet_in(&msg(1, 80), &mut out);
        assert!(out.is_empty());
        assert_eq!(c.name(), "null");
    }
}
