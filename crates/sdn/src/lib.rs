//! # mpr-sdn — the software-defined-network substrate
//!
//! The paper evaluates on Mininet plus OpenFlow switches driven by a
//! RapidNet/Trema/Pyretic controller (§5.1–§5.2). This crate is the
//! deterministic, laptop-scale replacement: packets, priority/wildcard
//! flow tables, a discrete-event simulator with OpenFlow buffered-miss
//! semantics, campus-scale topologies, and the controller interface
//! (including the NDlog controller adapter).
//!
//! - [`packet`] — integer-field packets mapping 1:1 onto NDlog columns;
//! - [`flowtable`] — OpenFlow-style match/action tables;
//! - [`topology`] — the Fig. 1 fixture and the Stanford-campus generator
//!   (19 → 169 switches, Fig. 9c);
//! - [`sim`] — the event-driven simulator with fault injection;
//! - [`faults`] — seeded, deterministic fault plans (link outages/flaps,
//!   switch crashes, control-channel drop/dup/reorder/delay);
//! - [`controller`] — the [`controller::Controller`] trait, and
//!   [`controller::NdlogController`] wiring an `mpr-runtime` engine to the
//!   network through a [`controller::TupleCodec`].

#![warn(missing_docs)]

pub mod controller;
pub mod faults;
pub mod flowtable;
pub mod packet;
pub mod sim;
pub mod topology;

pub use controller::{Controller, CtrlMsg, NdlogController, NullController, PacketInMsg, PktArg, TupleCodec};
pub use faults::{CtrlFaults, FaultPlan, LinkFault, SwitchCrash, Window};
pub use flowtable::{Action, FlowEntry, FlowTable, Match};
pub use packet::{Field, Packet, Proto};
pub use sim::{SimConfig, SimStats, Simulation};
pub use topology::{campus, fig1, CampusParams, NodeRef, Topology};
