//! The discrete-event network simulator.
//!
//! Event-driven in the smoltcp style: a time-ordered queue of packet
//! arrivals drives switches (flow-table lookup → actions → next hop),
//! hosts (delivery accounting) and the controller (PacketIn on miss,
//! FlowMod/PacketOut back). Buffered-miss semantics follow OpenFlow: a
//! missed packet waits at the switch; unless the controller answers with a
//! `PacketOut`, it is dropped — exactly the bug class of scenario Q4.
//!
//! Fault injection (packet drops with a deterministic RNG) is available for
//! robustness testing, mirroring the `--drop-chance` options the smoltcp
//! examples expose.

use crate::controller::{Controller, CtrlMsg, PacketInMsg};
use crate::flowtable::{Action, FlowTable};
use crate::packet::Packet;
use crate::topology::{NodeRef, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BinaryHeap};

/// Simulator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Per-link latency (simulated microseconds).
    pub link_latency: u64,
    /// Controller round-trip latency.
    pub controller_latency: u64,
    /// TTL: maximum switch hops per packet (loop guard).
    pub max_hops: u32,
    /// Probability of dropping a packet on each link traversal.
    pub drop_chance: f64,
    /// RNG seed for fault injection.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_latency: 5,
            controller_latency: 100,
            max_hops: 64,
            drop_chance: 0.0,
            seed: 7,
        }
    }
}

/// Counters collected during a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered, per destination host.
    pub delivered: BTreeMap<i64, u64>,
    /// Packets delivered, per (host, destination port).
    pub delivered_by_port: BTreeMap<(i64, i64), u64>,
    /// Packets that arrived at a host that was not their destination.
    pub misdelivered: u64,
    /// Drops: flow-table said drop.
    pub dropped_policy: u64,
    /// Drops: buffered at a miss and never released by the controller.
    pub dropped_buffered: u64,
    /// Drops: TTL exceeded.
    pub dropped_ttl: u64,
    /// Drops: fault injection.
    pub dropped_fault: u64,
    /// PacketIn messages sent to the controller.
    pub packet_ins: u64,
    /// FlowMods applied.
    pub flow_mods: u64,
    /// PacketOuts applied.
    pub packet_outs: u64,
    /// Total switch hops.
    pub hops: u64,
}

impl SimStats {
    /// Total packets delivered anywhere.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.values().sum()
    }

    /// Delivered count for one host.
    pub fn delivered_to(&self, host: i64) -> u64 {
        self.delivered.get(&host).copied().unwrap_or(0)
    }

    /// Delivered count for one (host, port).
    pub fn delivered_on(&self, host: i64, port: i64) -> u64 {
        self.delivered_by_port.get(&(host, port)).copied().unwrap_or(0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Ev {
    time: u64,
    seq: u64,
    node: NodeRef,
    port: i64,
    hops: u32,
    packet: Packet,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulator. Owns the topology, per-switch flow tables and the
/// controller.
pub struct Simulation<C: Controller> {
    topo: Topology,
    /// Per-switch flow tables (public for proactive route installation).
    pub tables: BTreeMap<i64, FlowTable>,
    controller: C,
    cfg: SimConfig,
    rng: StdRng,
    queue: BinaryHeap<Ev>,
    next_seq: u64,
    clock: u64,
    /// Counters.
    pub stats: SimStats,
    /// Every PacketIn the controller saw (the replayable ingress history).
    pub packet_in_log: Vec<(u64, PacketInMsg)>,
}

impl<C: Controller> Simulation<C> {
    /// Build a simulation.
    pub fn new(topo: Topology, controller: C, cfg: SimConfig) -> Self {
        let tables = topo.switches.iter().map(|s| (*s, FlowTable::new())).collect();
        let rng = StdRng::seed_from_u64(cfg.seed);
        Simulation {
            topo,
            tables,
            controller,
            cfg,
            rng,
            queue: BinaryHeap::new(),
            next_seq: 0,
            clock: 0,
            stats: SimStats::default(),
            packet_in_log: Vec::new(),
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Mutable controller access (seeding state between runs).
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Install shortest-path `DstIp → Output` routes on every switch for
    /// every host — the "proactively configured core" of §5.2. Entries get
    /// priority 1 so reactive (priority ≥ 10) policies override them.
    pub fn install_proactive_routes(&mut self) {
        let hosts: Vec<i64> = self.topo.hosts.iter().copied().collect();
        for h in hosts {
            for (sw, port) in self.topo.routes_to(h) {
                let entry = crate::flowtable::FlowEntry::new(
                    1,
                    crate::flowtable::Match::any().with(crate::packet::Field::DstIp, h),
                    vec![Action::Output(port)],
                );
                if let Some(t) = self.tables.get_mut(&sw) {
                    t.install(entry);
                }
            }
        }
    }

    /// Inject a packet from `host` into the network.
    pub fn inject(&mut self, host: i64, packet: Packet) {
        let Some((sw, sw_port)) = self.topo.host_attachment(host) else {
            return;
        };
        self.stats.injected += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Ev {
            time: self.clock + self.cfg.link_latency,
            seq,
            node: NodeRef::Switch(sw),
            port: sw_port,
            hops: 0,
            packet,
        });
    }

    /// Run until the event queue drains. Returns the number of events
    /// processed.
    pub fn run(&mut self) -> u64 {
        let mut processed = 0;
        while let Some(ev) = self.queue.pop() {
            self.clock = self.clock.max(ev.time);
            processed += 1;
            match ev.node {
                NodeRef::Host(h) => self.arrive_host(h, ev.packet),
                NodeRef::Switch(s) => self.arrive_switch(s, ev.port, ev.hops, ev.packet),
            }
        }
        processed
    }

    fn arrive_host(&mut self, host: i64, packet: Packet) {
        if packet.dst_ip == host {
            *self.stats.delivered.entry(host).or_insert(0) += 1;
            *self
                .stats
                .delivered_by_port
                .entry((host, packet.dst_port))
                .or_insert(0) += 1;
        } else {
            self.stats.misdelivered += 1;
        }
    }

    fn arrive_switch(&mut self, switch: i64, in_port: i64, hops: u32, packet: Packet) {
        if hops >= self.cfg.max_hops {
            self.stats.dropped_ttl += 1;
            return;
        }
        self.stats.hops += 1;
        let entry = self
            .tables
            .get(&switch)
            .and_then(|t| t.lookup(&packet, in_port))
            .cloned();
        match entry {
            Some(e) => self.apply_actions(switch, in_port, hops, packet, &e.actions),
            None => self.punt(switch, in_port, hops, packet),
        }
    }

    fn apply_actions(
        &mut self,
        switch: i64,
        in_port: i64,
        hops: u32,
        mut packet: Packet,
        actions: &[Action],
    ) {
        let mut emitted = false;
        for a in actions {
            match a {
                Action::Modify(f, v) => packet.set_field(*f, *v),
                Action::Output(p) => {
                    self.emit(switch, *p, hops, packet.clone());
                    emitted = true;
                }
                Action::Flood => {
                    for p in self.topo.ports(NodeRef::Switch(switch)) {
                        if p != in_port {
                            self.emit(switch, p, hops, packet.clone());
                        }
                    }
                    emitted = true;
                }
                Action::Drop => {
                    self.stats.dropped_policy += 1;
                    return;
                }
                Action::Controller => {
                    self.punt(switch, in_port, hops, packet.clone());
                    emitted = true;
                }
            }
        }
        if !emitted {
            self.stats.dropped_policy += 1;
        }
    }

    fn emit(&mut self, switch: i64, out_port: i64, hops: u32, packet: Packet) {
        let Some((peer, peer_port)) = self.topo.peer(NodeRef::Switch(switch), out_port) else {
            self.stats.dropped_policy += 1;
            return;
        };
        if self.cfg.drop_chance > 0.0 && self.rng.gen::<f64>() < self.cfg.drop_chance {
            self.stats.dropped_fault += 1;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Ev {
            time: self.clock + self.cfg.link_latency,
            seq,
            node: peer,
            port: peer_port,
            hops: hops + 1,
            packet,
        });
    }

    /// Miss: buffer the packet, consult the controller, apply its answer.
    fn punt(&mut self, switch: i64, in_port: i64, hops: u32, packet: Packet) {
        self.stats.packet_ins += 1;
        let msg = PacketInMsg { switch, in_port, packet };
        self.packet_in_log.push((self.clock, msg.clone()));
        let replies = self.controller.on_packet_in(&msg);
        self.clock += self.cfg.controller_latency;
        let mut released = false;
        for r in replies {
            match r {
                CtrlMsg::FlowMod { switch: sw, entry } => {
                    self.stats.flow_mods += 1;
                    if let Some(t) = self.tables.get_mut(&sw) {
                        t.install(entry);
                    }
                }
                CtrlMsg::PacketOut { switch: sw, packet: p, action } => {
                    self.stats.packet_outs += 1;
                    self.apply_actions(sw, in_port, hops, p, &[action.clone()]);
                    released = true;
                }
            }
        }
        if !released {
            // OpenFlow buffered-miss semantics: without a PacketOut the
            // buffered packet never leaves the switch. Scenario Q4 lives
            // here. The *flow entries* just installed will serve future
            // packets, not this one.
            self.stats.dropped_buffered += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{NullController, TupleCodec};
    use crate::flowtable::{FlowEntry, Match};
    use crate::packet::Field;
    use crate::topology::{fig1, fig1_hosts};

    fn http_to(dst: i64, seq: u64) -> Packet {
        Packet::http(seq, fig1_hosts::INTERNET, dst)
    }

    #[test]
    fn proactive_routes_deliver_end_to_end() {
        let mut sim = Simulation::new(fig1(), NullController, SimConfig::default());
        sim.install_proactive_routes();
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H2, 2));
        sim.run();
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H1), 1);
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H2), 1);
        assert_eq!(sim.stats.misdelivered, 0);
        assert_eq!(sim.stats.packet_ins, 0);
    }

    #[test]
    fn miss_without_packet_out_drops_buffered_packet() {
        // Null controller: every miss is buffered forever (Q4 semantics).
        let mut sim = Simulation::new(fig1(), NullController, SimConfig::default());
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.packet_ins, 1);
        assert_eq!(sim.stats.dropped_buffered, 1);
        assert_eq!(sim.stats.total_delivered(), 0);
        assert_eq!(sim.packet_in_log.len(), 1);
    }

    #[test]
    fn ndlog_controller_installs_flows_in_sim() {
        use crate::controller::NdlogController;
        // S1 sends HTTP out of port 1 (toward S2→H1); S2 delivers on port 1.
        let program = mpr_ndlog::parse_program(
            "mini",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 1.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            ",
        )
        .unwrap();
        let ctrl = NdlogController::new(program, TupleCodec::fig2()).unwrap();
        let mut sim = Simulation::new(fig1(), ctrl, SimConfig::default());
        // First packet: miss at S1 installs that switch's entry, but the
        // packet itself is dropped (no PacketOut rules). Second packet
        // rides S1's entry, then misses at S2 — installing S2's entry and
        // dying there. The third packet finally flows end to end. This
        // per-hop warm-up is faithful OpenFlow reactive behavior.
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H1), 0);
        assert_eq!(sim.stats.flow_mods, 1);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 2));
        sim.run();
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H1), 0);
        assert_eq!(sim.stats.flow_mods, 2);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 3));
        sim.run();
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H1), 1);
        assert_eq!(sim.stats.dropped_buffered, 2);
    }

    #[test]
    fn policy_drop_and_modify_actions() {
        let mut sim = Simulation::new(fig1(), NullController, SimConfig::default());
        // S1: rewrite DstIp to H2 then forward via proactive routes.
        sim.install_proactive_routes();
        let e = FlowEntry::new(
            50,
            Match::any().with(Field::DstPort, 80),
            vec![Action::Modify(Field::DstIp, fig1_hosts::H2), Action::Output(2)],
        );
        sim.tables.get_mut(&1).unwrap().install(e);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        // Rewritten to H2 and delivered there.
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H2), 1);
        assert_eq!(sim.stats.misdelivered, 0);

        // Drop policy.
        let e = FlowEntry::new(99, Match::any(), vec![Action::Drop]);
        sim.tables.get_mut(&1).unwrap().install(e);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 2));
        sim.run();
        assert_eq!(sim.stats.dropped_policy, 1);
    }

    #[test]
    fn flood_reaches_all_neighbors_except_ingress() {
        let mut sim = Simulation::new(fig1(), NullController, SimConfig::default());
        let e = FlowEntry::new(10, Match::any(), vec![Action::Flood]);
        for t in sim.tables.values_mut() {
            t.install(e.clone());
        }
        // Broadcast storms are bounded by the TTL guard.
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H2, 1));
        sim.run();
        assert!(sim.stats.dropped_ttl > 0 || sim.stats.delivered_to(fig1_hosts::H2) > 0);
    }

    #[test]
    fn fault_injection_drops_deterministically() {
        let cfg = SimConfig { drop_chance: 1.0, ..SimConfig::default() };
        let mut sim = Simulation::new(fig1(), NullController, cfg);
        sim.install_proactive_routes();
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.total_delivered(), 0);
        assert_eq!(sim.stats.dropped_fault, 1);

        // Same seed → same outcome (determinism).
        let cfg = SimConfig { drop_chance: 0.5, seed: 42, ..SimConfig::default() };
        let run = |n: u64| {
            let mut sim = Simulation::new(fig1(), NullController, cfg.clone());
            sim.install_proactive_routes();
            for i in 0..n {
                sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, i));
            }
            sim.run();
            sim.stats.total_delivered()
        };
        assert_eq!(run(100), run(100));
    }

    #[test]
    fn ttl_guard_stops_forwarding_loops() {
        let mut sim = Simulation::new(fig1(), NullController, SimConfig::default());
        // S2 and S3 bounce packets to each other forever (S2 port2 ↔ S3
        // port3).
        sim.tables
            .get_mut(&2)
            .unwrap()
            .install(FlowEntry::new(10, Match::any(), vec![Action::Output(2)]));
        sim.tables
            .get_mut(&3)
            .unwrap()
            .install(FlowEntry::new(10, Match::any(), vec![Action::Output(3)]));
        sim.tables
            .get_mut(&1)
            .unwrap()
            .install(FlowEntry::new(10, Match::any(), vec![Action::Output(1)]));
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.dropped_ttl, 1);
        assert_eq!(sim.stats.total_delivered(), 0);
    }
}
