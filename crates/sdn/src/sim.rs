//! The discrete-event network simulator.
//!
//! Event-driven in the smoltcp style: a time-ordered queue of packet
//! arrivals drives switches (flow-table lookup → actions → next hop),
//! hosts (delivery accounting) and the controller (PacketIn on miss,
//! FlowMod/PacketOut back). Buffered-miss semantics follow OpenFlow: a
//! missed packet waits at the switch; unless the controller answers with a
//! `PacketOut`, it is dropped — exactly the bug class of scenario Q4.
//!
//! Fault injection is available for robustness testing: a uniform
//! `drop_chance` (mirroring the `--drop-chance` options the smoltcp
//! examples expose) plus a scheduled [`FaultPlan`] — link outages and
//! flaps, switch crashes with flow-table wipes, and control-channel
//! drop/duplicate/reorder/delay. Both draw from seeded RNGs, and the
//! plan uses its *own* stream, so every run is reproducible and an empty
//! plan is bit-identical to no plan at all.

use crate::controller::{Controller, CtrlMsg, PacketInMsg};
use crate::faults::FaultPlan;
use crate::flowtable::{Action, FlowTable};
use crate::packet::Packet;
use crate::topology::{NodeRef, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// Simulator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Per-link latency (simulated microseconds).
    pub link_latency: u64,
    /// Controller round-trip latency.
    pub controller_latency: u64,
    /// TTL: maximum switch hops per packet (loop guard).
    pub max_hops: u32,
    /// Probability of dropping a packet on each link traversal.
    pub drop_chance: f64,
    /// RNG seed for fault injection.
    pub seed: u64,
    /// Scheduled fault plan (empty by default: injects nothing, and a run
    /// is bit-identical to one without the fault layer).
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_latency: 5,
            controller_latency: 100,
            max_hops: 64,
            drop_chance: 0.0,
            seed: 7,
            faults: FaultPlan::default(),
        }
    }
}

/// Counters collected during a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered, per destination host.
    pub delivered: BTreeMap<i64, u64>,
    /// Packets delivered, per (host, destination port).
    pub delivered_by_port: BTreeMap<(i64, i64), u64>,
    /// Packets that arrived at a host that was not their destination.
    pub misdelivered: u64,
    /// Drops: flow-table said drop.
    pub dropped_policy: u64,
    /// Drops: buffered at a miss and never released by the controller.
    pub dropped_buffered: u64,
    /// Drops: TTL exceeded.
    pub dropped_ttl: u64,
    /// Drops: fault injection.
    pub dropped_fault: u64,
    /// Drops: packet emitted onto a link that was down per the fault plan.
    pub dropped_link_down: u64,
    /// Drops: packet arrived at a switch that was dark per the fault plan.
    pub dropped_switch_down: u64,
    /// Switch crashes applied (flow table wiped).
    pub switch_crashes: u64,
    /// Controller replies silently dropped by the fault plan.
    pub ctrl_dropped: u64,
    /// Controller replies duplicated by the fault plan.
    pub ctrl_duplicated: u64,
    /// Controller replies delivered late by the fault plan.
    pub ctrl_delayed: u64,
    /// Controller reply batches reversed by the fault plan.
    pub ctrl_reordered: u64,
    /// PacketIn messages sent to the controller.
    pub packet_ins: u64,
    /// FlowMods applied.
    pub flow_mods: u64,
    /// PacketOuts applied.
    pub packet_outs: u64,
    /// Total switch hops.
    pub hops: u64,
}

impl SimStats {
    /// Total packets delivered anywhere.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.values().sum()
    }

    /// Delivered count for one host.
    pub fn delivered_to(&self, host: i64) -> u64 {
        self.delivered.get(&host).copied().unwrap_or(0)
    }

    /// Delivered count for one (host, port).
    pub fn delivered_on(&self, host: i64, port: i64) -> u64 {
        self.delivered_by_port.get(&(host, port)).copied().unwrap_or(0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Ev {
    time: u64,
    seq: u64,
    node: NodeRef,
    port: i64,
    hops: u32,
    packet: Packet,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A controller reply held back by the fault plan, waiting to be
/// delivered. Shares the global `next_seq` counter with [`Ev`], so
/// same-time ties between the packet and control queues break
/// deterministically.
#[derive(Debug, Clone)]
struct CtrlEv {
    time: u64,
    seq: u64,
    msg: CtrlMsg,
    in_port: i64,
    hops: u32,
}

impl PartialEq for CtrlEv {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for CtrlEv {}

impl Ord for CtrlEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for CtrlEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One PacketIn the controller saw — the replayable ingress history. The
/// packet is *moved* in (the message handed to the controller is rebuilt
/// on demand by [`PacketInRecord::msg`]), so logging costs no clone on the
/// hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketInRecord {
    /// Simulated time of the punt.
    pub at: u64,
    /// Switch that missed.
    pub switch: i64,
    /// Ingress port at that switch.
    pub in_port: i64,
    /// The packet that missed.
    pub packet: Packet,
}

impl PacketInRecord {
    /// Reconstruct the controller-facing message (clones the packet; only
    /// offline consumers — chaos/debugger trigger extraction — pay this).
    pub fn msg(&self) -> PacketInMsg {
        PacketInMsg { switch: self.switch, in_port: self.in_port, packet: self.packet.clone() }
    }
}

/// The simulator. Owns the per-switch flow tables and the controller;
/// shares the (immutable during a run) topology via `Arc` so backtests can
/// hand one network to many candidate replays without deep-copying it.
pub struct Simulation<C: Controller> {
    topo: Arc<Topology>,
    /// Per-switch flow tables (public for proactive route installation).
    pub tables: BTreeMap<i64, FlowTable>,
    controller: C,
    cfg: SimConfig,
    rng: StdRng,
    /// Dedicated RNG stream for the fault plan (control-channel chances),
    /// so enabling faults never perturbs the base `drop_chance` stream.
    fault_rng: StdRng,
    queue: BinaryHeap<Ev>,
    /// Controller replies delayed by the fault plan.
    ctrl_queue: BinaryHeap<CtrlEv>,
    /// Scheduled crashes sorted by instant; `next_crash` indexes the first
    /// not yet applied (the wipe happens once, at the crash instant).
    crash_schedule: Vec<crate::faults::SwitchCrash>,
    next_crash: usize,
    next_seq: u64,
    clock: u64,
    /// Counters.
    pub stats: SimStats,
    /// Every PacketIn the controller saw (see [`Self::packet_in_log`]).
    packet_in_log: Vec<PacketInRecord>,
    /// Reusable controller-reply buffer ([`Self::punt`] hands it to
    /// `on_packet_in` instead of allocating a `Vec` per miss).
    reply_buf: Vec<CtrlMsg>,
    /// Reusable staging buffer for a matched entry's actions.
    action_buf: Vec<Action>,
}

impl<C: Controller> Simulation<C> {
    /// Build a simulation. Accepts an owned [`Topology`] or a pre-shared
    /// `Arc<Topology>` (backtests reuse one network across candidates).
    pub fn new(topo: impl Into<Arc<Topology>>, controller: C, cfg: SimConfig) -> Self {
        let topo = topo.into();
        let tables = topo.switches.iter().map(|s| (*s, FlowTable::new())).collect();
        let rng = StdRng::seed_from_u64(cfg.seed);
        let fault_rng = StdRng::seed_from_u64(cfg.faults.seed);
        let mut crash_schedule = cfg.faults.crashes.clone();
        crash_schedule.sort_by_key(|c| (c.at, c.switch));
        Simulation {
            topo,
            tables,
            controller,
            cfg,
            rng,
            fault_rng,
            queue: BinaryHeap::new(),
            ctrl_queue: BinaryHeap::new(),
            crash_schedule,
            next_crash: 0,
            next_seq: 0,
            clock: 0,
            stats: SimStats::default(),
            packet_in_log: Vec::new(),
            reply_buf: Vec::new(),
            action_buf: Vec::new(),
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Every PacketIn the controller saw, in punt order.
    pub fn packet_in_log(&self) -> &[PacketInRecord] {
        &self.packet_in_log
    }

    /// The controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Mutable controller access (seeding state between runs).
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Install shortest-path `DstIp → Output` routes on every switch for
    /// every host — the "proactively configured core" of §5.2. Entries get
    /// priority 1 so reactive (priority ≥ 10) policies override them.
    pub fn install_proactive_routes(&mut self) {
        let hosts: Vec<i64> = self.topo.hosts.iter().copied().collect();
        for h in hosts {
            let routes = self.topo.routes_to(h);
            for (&sw, &port) in routes.iter() {
                let entry = crate::flowtable::FlowEntry::new(
                    1,
                    crate::flowtable::Match::any().with(crate::packet::Field::DstIp, h),
                    vec![Action::Output(port)],
                );
                if let Some(t) = self.tables.get_mut(&sw) {
                    t.install(entry);
                }
            }
        }
    }

    /// Inject a packet from `host` into the network.
    pub fn inject(&mut self, host: i64, packet: Packet) {
        let Some((sw, sw_port)) = self.topo.host_attachment(host) else {
            return;
        };
        self.stats.injected += 1;
        if !self.cfg.faults.is_empty()
            && self.cfg.faults.link_down(NodeRef::Host(host), NodeRef::Switch(sw), self.clock)
        {
            self.stats.dropped_link_down += 1;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Ev {
            time: self.clock + self.cfg.link_latency,
            seq,
            node: NodeRef::Switch(sw),
            port: sw_port,
            hops: 0,
            packet,
        });
    }

    /// Run until both the packet queue and the delayed-control queue
    /// drain. Returns the number of events processed.
    pub fn run(&mut self) -> u64 {
        let mut processed = 0;
        loop {
            // Merge the two time-ordered queues; the shared `next_seq`
            // counter breaks same-time ties deterministically.
            let next_pkt = self.queue.peek().map(|e| (e.time, e.seq));
            let next_ctrl = self.ctrl_queue.peek().map(|e| (e.time, e.seq));
            let take_ctrl = match (next_pkt, next_ctrl) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(p), Some(c)) => c < p,
            };
            processed += 1;
            if take_ctrl {
                let Some(ev) = self.ctrl_queue.pop() else { break };
                self.clock = self.clock.max(ev.time);
                self.apply_due_crashes();
                let mut released = false;
                self.deliver_ctrl(ev.msg, ev.in_port, ev.hops, &mut released);
            } else {
                let Some(ev) = self.queue.pop() else { break };
                self.clock = self.clock.max(ev.time);
                self.apply_due_crashes();
                match ev.node {
                    NodeRef::Host(h) => self.arrive_host(h, ev.packet),
                    NodeRef::Switch(s) => self.arrive_switch(s, ev.port, ev.hops, ev.packet),
                }
            }
        }
        processed
    }

    /// Wipe the flow table of every switch whose crash instant has been
    /// reached. The wipe happens exactly once per crash; while the crash
    /// window lasts, arriving packets are dropped by [`Self::arrive_switch`].
    fn apply_due_crashes(&mut self) {
        while let Some(c) = self.crash_schedule.get(self.next_crash) {
            if c.at > self.clock {
                break;
            }
            if let Some(t) = self.tables.get_mut(&c.switch) {
                t.clear();
            }
            self.stats.switch_crashes += 1;
            self.next_crash += 1;
        }
    }

    fn arrive_host(&mut self, host: i64, packet: Packet) {
        if packet.dst_ip == host {
            *self.stats.delivered.entry(host).or_insert(0) += 1;
            *self
                .stats
                .delivered_by_port
                .entry((host, packet.dst_port))
                .or_insert(0) += 1;
        } else {
            self.stats.misdelivered += 1;
        }
    }

    fn arrive_switch(&mut self, switch: i64, in_port: i64, hops: u32, packet: Packet) {
        if !self.cfg.faults.is_empty() && self.cfg.faults.switch_down(switch, self.clock) {
            self.stats.dropped_switch_down += 1;
            return;
        }
        if hops >= self.cfg.max_hops {
            self.stats.dropped_ttl += 1;
            return;
        }
        self.stats.hops += 1;
        // Stage the matched entry's actions through the reusable buffer
        // (`Action` is `Copy`) instead of cloning the whole `FlowEntry`.
        let mut actions = std::mem::take(&mut self.action_buf);
        actions.clear();
        let hit = match self.tables.get(&switch).and_then(|t| t.lookup(&packet, in_port)) {
            Some(e) => {
                actions.extend_from_slice(&e.actions);
                true
            }
            None => false,
        };
        if hit {
            self.apply_actions(switch, in_port, hops, packet, &actions);
        } else {
            self.punt(switch, in_port, hops, packet);
        }
        actions.clear();
        self.action_buf = actions;
    }

    fn apply_actions(
        &mut self,
        switch: i64,
        in_port: i64,
        hops: u32,
        mut packet: Packet,
        actions: &[Action],
    ) {
        let mut emitted = false;
        for a in actions {
            match a {
                Action::Modify(f, v) => packet.set_field(*f, *v),
                Action::Output(p) => {
                    self.emit(switch, *p, hops, packet.clone());
                    emitted = true;
                }
                Action::Flood => {
                    for p in self.topo.ports(NodeRef::Switch(switch)) {
                        if p != in_port {
                            self.emit(switch, p, hops, packet.clone());
                        }
                    }
                    emitted = true;
                }
                Action::Drop => {
                    self.stats.dropped_policy += 1;
                    return;
                }
                Action::Controller => {
                    self.punt(switch, in_port, hops, packet.clone());
                    emitted = true;
                }
            }
        }
        if !emitted {
            self.stats.dropped_policy += 1;
        }
    }

    fn emit(&mut self, switch: i64, out_port: i64, hops: u32, packet: Packet) {
        let Some((peer, peer_port)) = self.topo.peer(NodeRef::Switch(switch), out_port) else {
            self.stats.dropped_policy += 1;
            return;
        };
        if !self.cfg.faults.is_empty()
            && self.cfg.faults.link_down(NodeRef::Switch(switch), peer, self.clock)
        {
            self.stats.dropped_link_down += 1;
            return;
        }
        if self.cfg.drop_chance > 0.0 && self.rng.gen::<f64>() < self.cfg.drop_chance {
            self.stats.dropped_fault += 1;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Ev {
            time: self.clock + self.cfg.link_latency,
            seq,
            node: peer,
            port: peer_port,
            hops: hops + 1,
            packet,
        });
    }

    /// Miss: buffer the packet, consult the controller, apply its answer.
    fn punt(&mut self, switch: i64, in_port: i64, hops: u32, packet: Packet) {
        self.stats.packet_ins += 1;
        let msg = PacketInMsg { switch, in_port, packet };
        // Reuse the reply buffer across punts; a reentrant punt (via
        // `Action::Controller`) just takes a fresh default, so this is
        // allocation-free on the common path and still correct nested.
        let mut replies = std::mem::take(&mut self.reply_buf);
        replies.clear();
        self.controller.on_packet_in(&msg, &mut replies);
        // Log by moving the packet out of the message — no clone.
        self.packet_in_log.push(PacketInRecord {
            at: self.clock,
            switch,
            in_port,
            packet: msg.packet,
        });
        self.clock += self.cfg.controller_latency;
        let ctrl = self.cfg.faults.ctrl;
        let mut released = false;
        if ctrl.is_noop() {
            for r in replies.drain(..) {
                self.deliver_ctrl(r, in_port, hops, &mut released);
            }
        } else {
            if ctrl.reorder && replies.len() > 1 && self.fault_rng.gen::<f64>() < 0.5 {
                replies.reverse();
                self.stats.ctrl_reordered += 1;
            }
            for r in replies.drain(..) {
                if ctrl.drop_chance > 0.0 && self.fault_rng.gen::<f64>() < ctrl.drop_chance {
                    self.stats.ctrl_dropped += 1;
                    continue;
                }
                let copies = if ctrl.dup_chance > 0.0
                    && self.fault_rng.gen::<f64>() < ctrl.dup_chance
                {
                    self.stats.ctrl_duplicated += 1;
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    if ctrl.delay_chance > 0.0
                        && self.fault_rng.gen::<f64>() < ctrl.delay_chance
                    {
                        self.stats.ctrl_delayed += 1;
                        let delay = if ctrl.delay_max > ctrl.delay_min {
                            self.fault_rng.gen_range(ctrl.delay_min..=ctrl.delay_max)
                        } else {
                            ctrl.delay_min
                        };
                        // A delayed PacketOut still releases the buffered
                        // packet, just late — don't count dropped_buffered.
                        if matches!(r, CtrlMsg::PacketOut { .. }) {
                            released = true;
                        }
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        self.ctrl_queue.push(CtrlEv {
                            time: self.clock + delay.max(1),
                            seq,
                            msg: r.clone(),
                            in_port,
                            hops,
                        });
                    } else {
                        self.deliver_ctrl(r.clone(), in_port, hops, &mut released);
                    }
                }
            }
        }
        if !released {
            // OpenFlow buffered-miss semantics: without a PacketOut the
            // buffered packet never leaves the switch. Scenario Q4 lives
            // here. The *flow entries* just installed will serve future
            // packets, not this one.
            self.stats.dropped_buffered += 1;
        }
        self.reply_buf = replies;
    }

    /// Deliver one controller reply to its switch. A reply addressed to a
    /// switch that is dark per the fault plan is lost (the control
    /// connection is down with everything else).
    fn deliver_ctrl(&mut self, msg: CtrlMsg, in_port: i64, hops: u32, released: &mut bool) {
        match msg {
            CtrlMsg::FlowMod { switch: sw, entry } => {
                if !self.cfg.faults.is_empty() && self.cfg.faults.switch_down(sw, self.clock) {
                    self.stats.ctrl_dropped += 1;
                    return;
                }
                self.stats.flow_mods += 1;
                if let Some(t) = self.tables.get_mut(&sw) {
                    t.install(entry);
                }
            }
            CtrlMsg::PacketOut { switch: sw, packet: p, action } => {
                if !self.cfg.faults.is_empty() && self.cfg.faults.switch_down(sw, self.clock) {
                    self.stats.dropped_switch_down += 1;
                    return;
                }
                self.stats.packet_outs += 1;
                self.apply_actions(sw, in_port, hops, p, &[action]);
                *released = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{NullController, TupleCodec};
    use crate::flowtable::{FlowEntry, Match};
    use crate::packet::Field;
    use crate::topology::{fig1, fig1_hosts};

    fn http_to(dst: i64, seq: u64) -> Packet {
        Packet::http(seq, fig1_hosts::INTERNET, dst)
    }

    #[test]
    fn proactive_routes_deliver_end_to_end() {
        let mut sim = Simulation::new(fig1(), NullController, SimConfig::default());
        sim.install_proactive_routes();
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H2, 2));
        sim.run();
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H1), 1);
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H2), 1);
        assert_eq!(sim.stats.misdelivered, 0);
        assert_eq!(sim.stats.packet_ins, 0);
    }

    #[test]
    fn miss_without_packet_out_drops_buffered_packet() {
        // Null controller: every miss is buffered forever (Q4 semantics).
        let mut sim = Simulation::new(fig1(), NullController, SimConfig::default());
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.packet_ins, 1);
        assert_eq!(sim.stats.dropped_buffered, 1);
        assert_eq!(sim.stats.total_delivered(), 0);
        assert_eq!(sim.packet_in_log().len(), 1);
    }

    #[test]
    fn ndlog_controller_installs_flows_in_sim() {
        use crate::controller::NdlogController;
        // S1 sends HTTP out of port 1 (toward S2→H1); S2 delivers on port 1.
        let program = mpr_ndlog::parse_program(
            "mini",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 1.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            ",
        )
        .unwrap();
        let ctrl = NdlogController::new(program, TupleCodec::fig2()).unwrap();
        let mut sim = Simulation::new(fig1(), ctrl, SimConfig::default());
        // First packet: miss at S1 installs that switch's entry, but the
        // packet itself is dropped (no PacketOut rules). Second packet
        // rides S1's entry, then misses at S2 — installing S2's entry and
        // dying there. The third packet finally flows end to end. This
        // per-hop warm-up is faithful OpenFlow reactive behavior.
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H1), 0);
        assert_eq!(sim.stats.flow_mods, 1);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 2));
        sim.run();
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H1), 0);
        assert_eq!(sim.stats.flow_mods, 2);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 3));
        sim.run();
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H1), 1);
        assert_eq!(sim.stats.dropped_buffered, 2);
    }

    #[test]
    fn policy_drop_and_modify_actions() {
        let mut sim = Simulation::new(fig1(), NullController, SimConfig::default());
        // S1: rewrite DstIp to H2 then forward via proactive routes.
        sim.install_proactive_routes();
        let e = FlowEntry::new(
            50,
            Match::any().with(Field::DstPort, 80),
            vec![Action::Modify(Field::DstIp, fig1_hosts::H2), Action::Output(2)],
        );
        sim.tables.get_mut(&1).unwrap().install(e);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        // Rewritten to H2 and delivered there.
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H2), 1);
        assert_eq!(sim.stats.misdelivered, 0);

        // Drop policy.
        let e = FlowEntry::new(99, Match::any(), vec![Action::Drop]);
        sim.tables.get_mut(&1).unwrap().install(e);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 2));
        sim.run();
        assert_eq!(sim.stats.dropped_policy, 1);
    }

    #[test]
    fn flood_reaches_all_neighbors_except_ingress() {
        let mut sim = Simulation::new(fig1(), NullController, SimConfig::default());
        let e = FlowEntry::new(10, Match::any(), vec![Action::Flood]);
        for t in sim.tables.values_mut() {
            t.install(e.clone());
        }
        // Broadcast storms are bounded by the TTL guard.
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H2, 1));
        sim.run();
        assert!(sim.stats.dropped_ttl > 0 || sim.stats.delivered_to(fig1_hosts::H2) > 0);
    }

    #[test]
    fn fault_injection_drops_deterministically() {
        let cfg = SimConfig { drop_chance: 1.0, ..SimConfig::default() };
        let mut sim = Simulation::new(fig1(), NullController, cfg);
        sim.install_proactive_routes();
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.total_delivered(), 0);
        assert_eq!(sim.stats.dropped_fault, 1);

        // Same seed → same outcome (determinism).
        let cfg = SimConfig { drop_chance: 0.5, seed: 42, ..SimConfig::default() };
        let run = |n: u64| {
            let mut sim = Simulation::new(fig1(), NullController, cfg.clone());
            sim.install_proactive_routes();
            for i in 0..n {
                sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, i));
            }
            sim.run();
            sim.stats.total_delivered()
        };
        assert_eq!(run(100), run(100));
    }

    /// Minimal reactive controller: on every miss, install `Output(1)` on
    /// the missing switch and release the packet the same way. On fig1
    /// that chains S1 → S2 → H1.
    struct EchoController;

    impl Controller for EchoController {
        fn on_packet_in(&mut self, msg: &PacketInMsg, out: &mut Vec<CtrlMsg>) {
            out.push(CtrlMsg::FlowMod {
                switch: msg.switch,
                entry: FlowEntry::new(10, Match::any(), vec![Action::Output(1)]),
            });
            out.push(CtrlMsg::PacketOut {
                switch: msg.switch,
                packet: msg.packet.clone(),
                action: Action::Output(1),
            });
        }
    }

    #[test]
    fn link_down_window_drops_then_recovers() {
        use crate::faults::{FaultPlan, LinkFault};
        let faults = FaultPlan {
            links: vec![LinkFault::down(NodeRef::Switch(1), NodeRef::Switch(2), 0, 6)],
            ..FaultPlan::default()
        };
        let cfg = SimConfig { faults, ..SimConfig::default() };
        let mut sim = Simulation::new(fig1(), NullController, cfg);
        sim.install_proactive_routes();
        // First packet reaches S1 at t=5, inside the outage: dropped on
        // the S1→S2 hop.
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.dropped_link_down, 1);
        assert_eq!(sim.stats.total_delivered(), 0);
        // Clock is past the window now: the link is back.
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 2));
        sim.run();
        assert_eq!(sim.stats.dropped_link_down, 1);
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H1), 1);
    }

    #[test]
    fn switch_crash_wipes_table_and_drops_while_dark() {
        use crate::faults::{FaultPlan, SwitchCrash};
        let faults = FaultPlan {
            crashes: vec![SwitchCrash { switch: 2, at: 0, down_for: 20 }],
            ..FaultPlan::default()
        };
        let cfg = SimConfig { faults, ..SimConfig::default() };
        let mut sim = Simulation::new(fig1(), NullController, cfg);
        sim.install_proactive_routes();
        let before = sim.tables[&2].len();
        assert!(before > 0);
        // Packet reaches S2 at t=10, inside the dark window.
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.switch_crashes, 1);
        assert_eq!(sim.stats.dropped_switch_down, 1);
        assert_eq!(sim.tables[&2].len(), 0, "crash wipes the flow table");
        // After restart the table is empty: the next packet misses and,
        // with a null controller, dies buffered — recovery is the
        // controller's job, not the switch's.
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 2));
        sim.run();
        assert_eq!(sim.stats.dropped_switch_down, 1);
        assert_eq!(sim.stats.dropped_buffered, 1);
    }

    #[test]
    fn ctrl_drop_loses_flowmods_and_strands_buffered_packets() {
        use crate::faults::{CtrlFaults, FaultPlan};
        let faults = FaultPlan {
            ctrl: CtrlFaults { drop_chance: 1.0, ..CtrlFaults::default() },
            ..FaultPlan::default()
        };
        let cfg = SimConfig { faults, ..SimConfig::default() };
        let mut sim = Simulation::new(fig1(), EchoController, cfg);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.ctrl_dropped, 2, "FlowMod and PacketOut both lost");
        assert_eq!(sim.stats.flow_mods, 0);
        assert_eq!(sim.stats.dropped_buffered, 1);
        assert_eq!(sim.stats.total_delivered(), 0);
    }

    #[test]
    fn delayed_ctrl_messages_still_deliver() {
        use crate::faults::{CtrlFaults, FaultPlan};
        let faults = FaultPlan {
            ctrl: CtrlFaults {
                delay_chance: 1.0,
                delay_min: 3,
                delay_max: 9,
                ..CtrlFaults::default()
            },
            ..FaultPlan::default()
        };
        let cfg = SimConfig { faults, ..SimConfig::default() };
        let mut sim = Simulation::new(fig1(), EchoController, cfg);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        // Both switches punt; each punt's FlowMod + PacketOut arrive late
        // but arrive: the packet still lands.
        assert_eq!(sim.stats.ctrl_delayed, 4);
        assert_eq!(sim.stats.delivered_to(fig1_hosts::H1), 1);
        assert_eq!(sim.stats.dropped_buffered, 0);
        assert_eq!(sim.stats.flow_mods, 2);
    }

    #[test]
    fn duplicated_flowmods_are_idempotent() {
        use crate::faults::{CtrlFaults, FaultPlan};
        let faults = FaultPlan {
            ctrl: CtrlFaults { dup_chance: 1.0, ..CtrlFaults::default() },
            ..FaultPlan::default()
        };
        let cfg = SimConfig { faults, ..SimConfig::default() };
        let mut sim = Simulation::new(fig1(), EchoController, cfg);
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert!(sim.stats.ctrl_duplicated >= 2);
        // Duplicate FlowMods re-install the same entry; duplicate
        // PacketOuts emit an extra copy, which is at worst delivered twice.
        assert!(sim.stats.delivered_to(fig1_hosts::H1) >= 1);
    }

    #[test]
    fn empty_plan_matches_no_plan_bit_for_bit() {
        // The fault layer disabled must not perturb anything — including
        // the pre-existing drop_chance RNG stream.
        let base = SimConfig { drop_chance: 0.3, seed: 11, ..SimConfig::default() };
        let run = |cfg: SimConfig| {
            let mut sim = Simulation::new(fig1(), NullController, cfg);
            sim.install_proactive_routes();
            for i in 0..50 {
                sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, i));
            }
            sim.run();
            sim.stats
        };
        let with_default_plan = SimConfig {
            faults: crate::faults::FaultPlan { seed: 999, ..Default::default() },
            ..base.clone()
        };
        assert_eq!(run(base), run(with_default_plan));
    }

    #[test]
    fn ttl_guard_stops_forwarding_loops() {
        let mut sim = Simulation::new(fig1(), NullController, SimConfig::default());
        // S2 and S3 bounce packets to each other forever (S2 port2 ↔ S3
        // port3).
        sim.tables
            .get_mut(&2)
            .unwrap()
            .install(FlowEntry::new(10, Match::any(), vec![Action::Output(2)]));
        sim.tables
            .get_mut(&3)
            .unwrap()
            .install(FlowEntry::new(10, Match::any(), vec![Action::Output(3)]));
        sim.tables
            .get_mut(&1)
            .unwrap()
            .install(FlowEntry::new(10, Match::any(), vec![Action::Output(1)]));
        sim.inject(fig1_hosts::INTERNET, http_to(fig1_hosts::H1, 1));
        sim.run();
        assert_eq!(sim.stats.dropped_ttl, 1);
        assert_eq!(sim.stats.total_delivered(), 0);
    }
}
