//! Packets and header fields.
//!
//! The scenarios of §5.3 match on small-integer header fields (switch ids,
//! source/destination IPs as host indices, TCP/UDP ports, MAC addresses as
//! integers), so the packet model keeps every field as an `i64` that maps
//! 1:1 onto NDlog [`mpr_ndlog::Value::Int`] columns. A compact wire
//! encoding is provided for the §5.4 storage-overhead accounting.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Transport protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Proto {
    /// TCP (HTTP traffic in the scenarios).
    Tcp,
    /// UDP (DNS traffic).
    Udp,
    /// ICMP echo (ping background traffic).
    Icmp,
}

impl Proto {
    /// Integer code used in NDlog tuples (6 / 17 / 1, the IANA numbers).
    pub fn code(&self) -> i64 {
        match self {
            Proto::Tcp => 6,
            Proto::Udp => 17,
            Proto::Icmp => 1,
        }
    }

    /// Inverse of [`Proto::code`].
    pub fn from_code(c: i64) -> Option<Proto> {
        match c {
            6 => Some(Proto::Tcp),
            17 => Some(Proto::Udp),
            1 => Some(Proto::Icmp),
            _ => None,
        }
    }
}

/// Well-known ports used throughout the paper's scenarios.
pub mod ports {
    /// HTTP.
    pub const HTTP: i64 = 80;
    /// DNS.
    pub const DNS: i64 = 53;
}

/// A packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Unique sequence number (assigned by the generator; keeps otherwise
    /// identical packets distinct).
    pub seq: u64,
    /// Source IP (host index).
    pub src_ip: i64,
    /// Destination IP (host index).
    pub dst_ip: i64,
    /// Source port.
    pub src_port: i64,
    /// Destination port.
    pub dst_port: i64,
    /// Protocol.
    pub proto: Proto,
    /// Source MAC (integer).
    pub src_mac: i64,
    /// Destination MAC (integer; -1 = broadcast).
    pub dst_mac: i64,
    /// Payload size in bytes (for throughput accounting).
    pub payload: u32,
}

impl Packet {
    /// An HTTP request packet.
    pub fn http(seq: u64, src_ip: i64, dst_ip: i64) -> Packet {
        Packet {
            seq,
            src_ip,
            dst_ip,
            src_port: 30_000 + (seq % 20_000) as i64,
            dst_port: ports::HTTP,
            proto: Proto::Tcp,
            src_mac: src_ip,
            dst_mac: dst_ip,
            payload: 512,
        }
    }

    /// A DNS query packet.
    pub fn dns(seq: u64, src_ip: i64, dst_ip: i64) -> Packet {
        Packet {
            seq,
            src_ip,
            dst_ip,
            src_port: 30_000 + (seq % 20_000) as i64,
            dst_port: ports::DNS,
            proto: Proto::Udp,
            src_mac: src_ip,
            dst_mac: dst_ip,
            payload: 64,
        }
    }

    /// An ICMP echo packet.
    pub fn icmp(seq: u64, src_ip: i64, dst_ip: i64) -> Packet {
        Packet {
            seq,
            src_ip,
            dst_ip,
            src_port: 0,
            dst_port: 0,
            proto: Proto::Icmp,
            src_mac: src_ip,
            dst_mac: dst_ip,
            payload: 64,
        }
    }

    /// Header field accessor by symbolic name (the glue between packets and
    /// NDlog tuple columns).
    pub fn field(&self, f: Field) -> i64 {
        match f {
            Field::SrcIp => self.src_ip,
            Field::DstIp => self.dst_ip,
            Field::SrcPort => self.src_port,
            Field::DstPort => self.dst_port,
            Field::Proto => self.proto.code(),
            Field::SrcMac => self.src_mac,
            Field::DstMac => self.dst_mac,
        }
    }

    /// Set a header field by symbolic name (used by `Modify` actions).
    pub fn set_field(&mut self, f: Field, v: i64) {
        match f {
            Field::SrcIp => self.src_ip = v,
            Field::DstIp => self.dst_ip = v,
            Field::SrcPort => self.src_port = v,
            Field::DstPort => self.dst_port = v,
            Field::Proto => {
                if let Some(p) = Proto::from_code(v) {
                    self.proto = p;
                }
            }
            Field::SrcMac => self.src_mac = v,
            Field::DstMac => self.dst_mac = v,
        }
    }

    /// Compact wire encoding (fixed 64-byte header + payload length).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64);
        b.put_u64(self.seq);
        b.put_i64(self.src_ip);
        b.put_i64(self.dst_ip);
        b.put_i64(self.src_port);
        b.put_i64(self.dst_port);
        b.put_i64(self.proto.code());
        b.put_i64(self.src_mac);
        b.put_i64(self.dst_mac);
        b.put_u32(self.payload);
        b.freeze()
    }

    /// Inverse of [`Packet::encode`].
    pub fn decode(mut buf: Bytes) -> Option<Packet> {
        if buf.len() < 68 {
            return None;
        }
        let seq = buf.get_u64();
        let src_ip = buf.get_i64();
        let dst_ip = buf.get_i64();
        let src_port = buf.get_i64();
        let dst_port = buf.get_i64();
        let proto = Proto::from_code(buf.get_i64())?;
        let src_mac = buf.get_i64();
        let dst_mac = buf.get_i64();
        let payload = buf.get_u32();
        Some(Packet { seq, src_ip, dst_ip, src_port, dst_port, proto, src_mac, dst_mac, payload })
    }

    /// Size on the wire in bytes.
    pub fn wire_size(&self) -> u64 {
        68 + u64::from(self.payload)
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {:?} {}:{} -> {}:{}",
            self.seq, self.proto, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// Symbolic header field names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Field {
    /// Source IP.
    SrcIp,
    /// Destination IP.
    DstIp,
    /// Source transport port.
    SrcPort,
    /// Destination transport port.
    DstPort,
    /// Protocol code.
    Proto,
    /// Source MAC.
    SrcMac,
    /// Destination MAC.
    DstMac,
}

impl Field {
    /// All fields, in a stable order.
    pub const ALL: [Field; 7] = [
        Field::SrcIp,
        Field::DstIp,
        Field::SrcPort,
        Field::DstPort,
        Field::Proto,
        Field::SrcMac,
        Field::DstMac,
    ];

    /// Conventional short name (matches the variable names the scenario
    /// programs use: `Sip`, `Dip`, `Spt`, `Dpt`, `Pro`, `Smc`, `Dmc`).
    pub fn short(&self) -> &'static str {
        match self {
            Field::SrcIp => "Sip",
            Field::DstIp => "Dip",
            Field::SrcPort => "Spt",
            Field::DstPort => "Dpt",
            Field::Proto => "Pro",
            Field::SrcMac => "Smc",
            Field::DstMac => "Dmc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_protocol_and_ports() {
        let p = Packet::http(1, 100, 20);
        assert_eq!(p.proto, Proto::Tcp);
        assert_eq!(p.dst_port, ports::HTTP);
        let p = Packet::dns(2, 100, 17);
        assert_eq!(p.proto, Proto::Udp);
        assert_eq!(p.dst_port, ports::DNS);
        let p = Packet::icmp(3, 1, 2);
        assert_eq!(p.proto, Proto::Icmp);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = Packet::http(42, 7, 9);
        let decoded = Packet::decode(p.encode()).unwrap();
        assert_eq!(decoded, p);
        assert!(Packet::decode(Bytes::from_static(b"short")).is_none());
    }

    #[test]
    fn field_access_and_modify() {
        let mut p = Packet::http(1, 5, 6);
        assert_eq!(p.field(Field::SrcIp), 5);
        assert_eq!(p.field(Field::DstPort), 80);
        assert_eq!(p.field(Field::Proto), 6);
        p.set_field(Field::DstIp, 99);
        assert_eq!(p.dst_ip, 99);
        p.set_field(Field::Proto, 17);
        assert_eq!(p.proto, Proto::Udp);
        p.set_field(Field::Proto, 999); // unknown code ignored
        assert_eq!(p.proto, Proto::Udp);
        for f in Field::ALL {
            let _ = p.field(f);
        }
    }

    #[test]
    fn proto_codes_roundtrip() {
        for p in [Proto::Tcp, Proto::Udp, Proto::Icmp] {
            assert_eq!(Proto::from_code(p.code()), Some(p));
        }
        assert_eq!(Proto::from_code(99), None);
    }

    #[test]
    fn wire_size_includes_payload() {
        let p = Packet::http(1, 1, 2);
        assert_eq!(p.wire_size(), 68 + 512);
    }
}
