//! Route-cache coherence: the memoized `routes_to` must always equal the
//! BFS oracle `routes_to_uncached`, across topology generators, after
//! topology mutations (generation bumps), and — because fault plans never
//! mutate the `Topology` — under `LinkDown`/`LinkFlap`/`SwitchCrash`
//! schedules, where a pre-warmed cache must be bit-identical to a cold one.

use mpr_sdn::controller::{NdlogController, TupleCodec};
use mpr_sdn::faults::{CtrlFaults, FaultPlan, LinkFault, SwitchCrash};
use mpr_sdn::topology::{
    campus, fat_tree, fig1, fig1_hosts, CampusParams, FabricParams, NodeRef, Topology,
};
use mpr_sdn::{Packet, SimConfig, SimStats, Simulation};
use std::sync::Arc;

fn assert_cache_matches_oracle(t: &Topology) {
    for h in t.hosts.iter().copied() {
        let cached = t.routes_to(h);
        let oracle = t.routes_to_uncached(h);
        assert_eq!(*cached, oracle, "routes_to({h}) diverged from BFS oracle");
        // Second call must serve the same shared map (no recompute).
        assert!(Arc::ptr_eq(&cached, &t.routes_to(h)), "cache miss on warm lookup");
    }
}

#[test]
fn cached_routes_equal_oracle_on_all_generators() {
    assert_cache_matches_oracle(&fig1());
    assert_cache_matches_oracle(&campus(&CampusParams::with_total_switches(40)));
    assert_cache_matches_oracle(&fat_tree(&FabricParams { k: 4, hosts_per_edge: 2 }));
    assert_cache_matches_oracle(&fat_tree(&FabricParams::with_total_switches(169)));
}

#[test]
fn topology_mutations_bump_generation_and_invalidate() {
    let mut t = fig1();
    let g0 = t.generation();
    let before = t.routes_to(fig1_hosts::H1);

    // Grafting a new switch + host on S3 must invalidate: H1's routes
    // gain an entry for the new switch once it is connected.
    t.add_switch(9);
    assert!(t.generation() > g0, "add_switch must bump the generation");
    t.connect(NodeRef::Switch(9), NodeRef::Switch(3));
    let after = t.routes_to(fig1_hosts::H1);
    assert_eq!(*after, t.routes_to_uncached(fig1_hosts::H1));
    assert!(after.contains_key(&9), "stale cache: new switch missing from routes");
    assert_eq!(before.contains_key(&9), false);

    t.add_host(77);
    let g1 = t.generation();
    t.connect(NodeRef::Switch(9), NodeRef::Host(77));
    assert!(t.generation() > g1, "connect must bump the generation");
    assert_cache_matches_oracle(&t);
}

#[test]
fn clone_and_deserialize_start_cold_but_agree() {
    let t = fig1();
    let _warm = t.routes_to(fig1_hosts::H1);
    let cloned = t.clone();
    assert_cache_matches_oracle(&cloned);
    let json = serde_json::to_string(&t).unwrap();
    let revived: Topology = serde_json::from_str(&json).unwrap();
    assert_cache_matches_oracle(&revived);
    assert_eq!(revived.switches, t.switches);
    assert_eq!(revived.hosts, t.hosts);
}

/// The reactive fig1 program used across the repo's scenarios.
fn controller() -> NdlogController {
    let program = mpr_ndlog::parse_program(
        "route-cache",
        r"
        materialize(PacketIn, event, 2, keys()).
        materialize(FlowTable, infinity, 2, keys(0)).
        r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 1.
        r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
        ",
    )
    .unwrap();
    NdlogController::new(program, TupleCodec::fig2()).unwrap()
}

/// Run the fault-plan workload on a shared topology handle; the caller
/// controls whether the route cache is pre-warmed.
fn run_with(topo: Arc<Topology>, cfg: &SimConfig) -> (SimStats, mpr_runtime::ExecLog) {
    let mut sim = Simulation::new(topo, controller(), cfg.clone());
    sim.install_proactive_routes();
    for i in 0..24 {
        sim.inject(fig1_hosts::INTERNET, Packet::http(i, fig1_hosts::INTERNET, fig1_hosts::H1));
        sim.run();
    }
    (sim.stats.clone(), sim.controller().exec_log().clone())
}

fn fault_plan() -> FaultPlan {
    FaultPlan {
        seed: 17,
        links: vec![LinkFault::flap(NodeRef::Switch(1), NodeRef::Switch(2), 10, 400, 25)],
        crashes: vec![SwitchCrash { switch: 2, at: 120, down_for: 60 }],
        ctrl: CtrlFaults {
            drop_chance: 0.2,
            dup_chance: 0.2,
            delay_chance: 0.3,
            delay_min: 1,
            delay_max: 40,
            reorder: true,
        },
    }
}

/// Fault plans act on the simulator, never on the `Topology` — so a
/// pre-warmed route cache must be bit-identical to a cold one under
/// LinkDown/LinkFlap/SwitchCrash/control-channel schedules.
#[test]
fn warmed_cache_is_bit_identical_under_fault_plans() {
    let cfg = SimConfig { faults: fault_plan(), ..SimConfig::default() };
    let cold = Arc::new(fig1());
    let warm = Arc::new(fig1());
    for h in warm.hosts.iter().copied() {
        let _ = warm.routes_to(h); // pre-warm every per-host route map
    }
    let (s_cold, l_cold) = run_with(cold, &cfg);
    let (s_warm, l_warm) = run_with(warm, &cfg);
    assert_eq!(s_cold, s_warm, "SimStats diverged between cold and warmed route cache");
    assert_eq!(l_cold, l_warm, "ExecLog diverged between cold and warmed route cache");
}

/// An empty `FaultPlan` with cached routing must be bit-identical to a
/// plain run — and sharing one warmed topology across sequential runs must
/// not perturb anything either.
#[test]
fn empty_plan_and_shared_topology_change_nothing() {
    let base = SimConfig { drop_chance: 0.25, seed: 11, ..SimConfig::default() };
    let with_plan = SimConfig {
        faults: FaultPlan { seed: 999, ..FaultPlan::default() },
        ..base.clone()
    };
    let shared = Arc::new(fig1());
    let (s1, l1) = run_with(shared.clone(), &base);
    let (s2, l2) = run_with(shared.clone(), &with_plan);
    let (s3, l3) = run_with(Arc::new(fig1()), &base);
    assert_eq!(s1, s2, "empty fault plan perturbed the run");
    assert_eq!(l1, l2);
    assert_eq!(s1, s3, "sharing a warmed topology perturbed the run");
    assert_eq!(l1, l3);
}
