//! Fault-schedule determinism: the same `(SimConfig, FaultPlan, workload)`
//! triple must yield bit-identical [`SimStats`] and — when the controller
//! is the NDlog engine — a bit-identical [`mpr_runtime::ExecLog`], no
//! matter how often the run is repeated. This is the contract the chaos
//! harness and the pinned regression scenarios build on.

use mpr_sdn::controller::{NdlogController, TupleCodec};
use mpr_sdn::faults::{CtrlFaults, FaultPlan, LinkFault, SwitchCrash};
use mpr_sdn::topology::{fig1, fig1_hosts, NodeRef};
use mpr_sdn::{Packet, SimConfig, SimStats, Simulation};
use proptest::prelude::*;

/// The reactive fig1 controller program used across the repo's scenarios.
fn controller() -> NdlogController {
    let program = mpr_ndlog::parse_program(
        "prop-faults",
        r"
        materialize(PacketIn, event, 2, keys()).
        materialize(FlowTable, infinity, 2, keys(0)).
        r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 1.
        r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
        ",
    )
    .unwrap();
    NdlogController::new(program, TupleCodec::fig2()).unwrap()
}

fn plan(
    seed: u64,
    link_from: u64,
    link_len: u64,
    crash_at: u64,
    crash_len: u64,
    drop: f64,
    dup: f64,
    delay: f64,
    reorder: bool,
) -> FaultPlan {
    FaultPlan {
        seed,
        links: vec![LinkFault::flap(
            NodeRef::Switch(1),
            NodeRef::Switch(2),
            link_from,
            link_from + 4 * link_len,
            link_len.max(1),
        )],
        crashes: vec![SwitchCrash { switch: 2, at: crash_at, down_for: crash_len }],
        ctrl: CtrlFaults {
            drop_chance: drop,
            dup_chance: dup,
            delay_chance: delay,
            delay_min: 1,
            delay_max: 50,
            reorder,
        },
    }
}

/// One full run: inject a packet train toward H1, return the stats and
/// the controller engine's execution log.
fn run(cfg: &SimConfig, packets: u64) -> (SimStats, mpr_runtime::ExecLog) {
    let mut sim = Simulation::new(fig1(), controller(), cfg.clone());
    sim.install_proactive_routes();
    for i in 0..packets {
        sim.inject(fig1_hosts::INTERNET, Packet::http(i, fig1_hosts::INTERNET, fig1_hosts::H1));
        sim.run();
    }
    let stats = sim.stats.clone();
    let log = sim.controller().exec_log().clone();
    (stats, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed + same plan → bit-identical SimStats and ExecLog.
    #[test]
    fn fault_schedules_are_deterministic(
        plan_seed in 0u64..1000,
        sim_seed in 0u64..1000,
        timing in (0u64..300, 1u64..60, 0u64..300, 1u64..200),
        drop in any::<f64>().prop_map(|x| x * 0.6),
        dup in any::<f64>().prop_map(|x| x * 0.6),
        delay in any::<f64>().prop_map(|x| x * 0.6),
        reorder in any::<bool>(),
        packets in 1u64..12,
    ) {
        let (link_from, link_len, crash_at, crash_len) = timing;
        let cfg = SimConfig {
            seed: sim_seed,
            faults: plan(plan_seed, link_from, link_len, crash_at, crash_len, drop, dup, delay, reorder),
            ..SimConfig::default()
        };
        let (s1, l1) = run(&cfg, packets);
        let (s2, l2) = run(&cfg, packets);
        prop_assert_eq!(&s1, &s2, "SimStats must be bit-identical across reruns");
        prop_assert_eq!(l1, l2, "controller ExecLog must be bit-identical across reruns");
    }

    /// A different plan seed is allowed to change outcomes, but never to
    /// crash the simulation or lose packet accounting.
    #[test]
    fn packets_are_always_accounted_for(
        plan_seed in 0u64..1000,
        drop in any::<f64>(),
        dup in any::<f64>().prop_map(|x| x * 0.5),
        delay in any::<f64>(),
    ) {
        let cfg = SimConfig {
            faults: plan(plan_seed, 0, 10, 50, 100, drop, dup, delay, true),
            ..SimConfig::default()
        };
        let (s, _) = run(&cfg, 8);
        prop_assert_eq!(s.injected, 8);
        let accounted = s.total_delivered()
            + s.misdelivered
            + s.dropped_policy
            + s.dropped_buffered
            + s.dropped_ttl
            + s.dropped_fault
            + s.dropped_link_down
            + s.dropped_switch_down;
        // Duplicated PacketOuts can add deliveries beyond `injected`, but
        // nothing may simply vanish.
        prop_assert!(accounted >= s.injected, "accounted {} < injected {}", accounted, s.injected);
    }
}
