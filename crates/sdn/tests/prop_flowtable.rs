//! Property test: the sorted flow-table lookup agrees with a full linear
//! reference scan on random tables and packets, and packet wire encoding
//! round-trips.

use mpr_sdn::packet::{Field, Packet, Proto};
use mpr_sdn::{Action, FlowEntry, FlowTable, Match};
use proptest::prelude::*;

fn field() -> impl Strategy<Value = Field> {
    prop::sample::select(Field::ALL.to_vec())
}

fn rmatch() -> impl Strategy<Value = Match> {
    (
        prop::option::of(0i64..4),
        prop::collection::vec((field(), 0i64..100), 0..3),
    )
        .prop_map(|(in_port, fields)| {
            let mut m = Match::any();
            if let Some(p) = in_port {
                m = m.on_port(p);
            }
            for (f, v) in fields {
                m = m.with(f, v);
            }
            m
        })
}

fn entry() -> impl Strategy<Value = FlowEntry> {
    (0i32..8, rmatch(), prop_oneof![
        (0i64..5).prop_map(Action::Output),
        Just(Action::Drop),
        Just(Action::Flood),
    ])
        .prop_map(|(prio, m, a)| FlowEntry::new(prio, m, vec![a]))
}

fn packet() -> impl Strategy<Value = Packet> {
    (
        any::<u64>(),
        0i64..100,
        0i64..100,
        0i64..100,
        prop::sample::select(vec![80i64, 53, 22, 99]),
        prop::sample::select(vec![Proto::Tcp, Proto::Udp, Proto::Icmp]),
    )
        .prop_map(|(seq, sip, dip, spt, dpt, proto)| Packet {
            seq,
            src_ip: sip,
            dst_ip: dip,
            src_port: spt,
            dst_port: dpt,
            proto,
            src_mac: sip,
            dst_mac: dip,
            payload: 100,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lookup_agrees_with_reference(entries in prop::collection::vec(entry(), 0..12), pkt in packet(), in_port in 0i64..4) {
        let mut ft = FlowTable::new();
        for e in entries {
            ft.install(e);
        }
        let fast = ft.lookup(&pkt, in_port);
        let slow = ft.lookup_reference(&pkt, in_port);
        match (fast, slow) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                // Same priority and specificity class; the actual entry can
                // differ only among exact ties, which the table resolves by
                // order — the reference must agree on the *class*.
                prop_assert_eq!(a.priority, b.priority);
                prop_assert_eq!(a.m.specificity(), b.m.specificity());
            }
            (a, b) => prop_assert!(false, "fast={a:?} slow={b:?}"),
        }
    }

    #[test]
    fn packet_encoding_roundtrips(pkt in packet()) {
        prop_assert_eq!(Packet::decode(pkt.encode()), Some(pkt));
    }

    #[test]
    fn install_is_idempotent_for_same_entry(e in entry(), pkt in packet(), in_port in 0i64..4) {
        let mut ft = FlowTable::new();
        ft.install(e.clone());
        let first = ft.lookup(&pkt, in_port).cloned();
        ft.install(e);
        prop_assert_eq!(ft.len(), 1);
        prop_assert_eq!(ft.lookup(&pkt, in_port).cloned(), first);
    }
}
