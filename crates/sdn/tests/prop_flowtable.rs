//! Property test: the sorted flow-table lookup agrees with a full linear
//! reference scan on random tables and packets, and packet wire encoding
//! round-trips.

use mpr_sdn::packet::{Field, Packet, Proto};
use mpr_sdn::{Action, FlowEntry, FlowTable, Match};
use proptest::prelude::*;

fn field() -> impl Strategy<Value = Field> {
    prop::sample::select(Field::ALL.to_vec())
}

fn rmatch() -> impl Strategy<Value = Match> {
    (
        prop::option::of(0i64..4),
        prop::collection::vec((field(), 0i64..100), 0..3),
    )
        .prop_map(|(in_port, fields)| {
            let mut m = Match::any();
            if let Some(p) = in_port {
                m = m.on_port(p);
            }
            for (f, v) in fields {
                m = m.with(f, v);
            }
            m
        })
}

fn entry() -> impl Strategy<Value = FlowEntry> {
    (0i32..8, rmatch(), prop_oneof![
        (0i64..5).prop_map(Action::Output),
        Just(Action::Drop),
        Just(Action::Flood),
    ])
        .prop_map(|(prio, m, a)| FlowEntry::new(prio, m, vec![a]))
}

fn packet() -> impl Strategy<Value = Packet> {
    (
        any::<u64>(),
        0i64..100,
        0i64..100,
        0i64..100,
        prop::sample::select(vec![80i64, 53, 22, 99]),
        prop::sample::select(vec![Proto::Tcp, Proto::Udp, Proto::Icmp]),
    )
        .prop_map(|(seq, sip, dip, spt, dpt, proto)| Packet {
            seq,
            src_ip: sip,
            dst_ip: dip,
            src_port: spt,
            dst_port: dpt,
            proto,
            src_mac: sip,
            dst_mac: dip,
            payload: 100,
        })
}

/// A random mutation applied between lookups, covering the index
/// invalidation paths: install, replace, remove and the crash wipe.
#[derive(Debug, Clone)]
enum Mutation {
    Install(FlowEntry),
    Replace(FlowEntry),
    Remove(Match),
    CrashWipe,
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        4 => entry().prop_map(Mutation::Install),
        2 => entry().prop_map(Mutation::Replace),
        1 => rmatch().prop_map(Mutation::Remove),
        1 => Just(Mutation::CrashWipe),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lookup_agrees_with_reference(entries in prop::collection::vec(entry(), 0..12), pkt in packet(), in_port in 0i64..4) {
        let mut ft = FlowTable::new();
        for e in entries {
            ft.install(e);
        }
        // Exact identity, ties included: the shipped lookup (linear or
        // indexed) must return the very entry the oracle picks.
        prop_assert_eq!(ft.lookup(&pkt, in_port), ft.lookup_reference(&pkt, in_port));
    }

    /// Tables large enough to engage the hash index (>= 8 entries), probed
    /// with many packets so collisions inside signature groups and
    /// cross-group priority races are exercised.
    #[test]
    fn indexed_lookup_agrees_on_large_tables(
        entries in prop::collection::vec(entry(), 8..48),
        pkts in prop::collection::vec((packet(), 0i64..4), 1..16),
    ) {
        let mut ft = FlowTable::new();
        for e in entries {
            ft.install(e);
        }
        for (pkt, in_port) in pkts {
            prop_assert_eq!(ft.lookup(&pkt, in_port), ft.lookup_reference(&pkt, in_port));
        }
    }

    /// Specificity ties with different actions: the tie-break (earliest
    /// installed) must be preserved by the index.
    #[test]
    fn specificity_ties_resolve_to_earliest_installed(
        n in 8usize..20,
        pkt in packet(),
        in_port in 0i64..4,
    ) {
        let mut ft = FlowTable::new();
        // All entries share (priority, specificity) but differ in action.
        for i in 0..n {
            ft.install(FlowEntry::new(5, Match::any(), vec![Action::Output(i as i64)]));
        }
        let hit = ft.lookup(&pkt, in_port).expect("match-all entry matches");
        prop_assert_eq!(&hit.actions, &vec![Action::Output(0)]);
        prop_assert_eq!(ft.lookup(&pkt, in_port), ft.lookup_reference(&pkt, in_port));
    }

    /// Interleaved mutations (install / replace / remove / crash wipe) keep
    /// the index coherent: after every step, indexed lookup still equals
    /// the oracle.
    #[test]
    fn lookup_agrees_through_mutation_sequences(
        seed in prop::collection::vec(entry(), 0..24),
        muts in prop::collection::vec(mutation(), 1..12),
        pkts in prop::collection::vec((packet(), 0i64..4), 1..6),
    ) {
        let mut ft = FlowTable::new();
        for e in seed {
            ft.install(e);
        }
        for m in muts {
            match m {
                Mutation::Install(e) => ft.install(e),
                Mutation::Replace(e) => ft.replace(e),
                Mutation::Remove(m) => { ft.remove(&m); }
                Mutation::CrashWipe => ft.clear(),
            }
            for (pkt, in_port) in &pkts {
                prop_assert_eq!(ft.lookup(pkt, *in_port), ft.lookup_reference(pkt, *in_port));
            }
        }
    }

    /// Reference mode is a pure routing flag: flipping it never changes
    /// the lookup result.
    #[test]
    fn reference_mode_is_transparent(
        entries in prop::collection::vec(entry(), 0..24),
        pkt in packet(),
        in_port in 0i64..4,
    ) {
        let mut ft = FlowTable::new();
        for e in entries {
            ft.install(e);
        }
        let indexed = ft.lookup(&pkt, in_port).cloned();
        ft.set_reference_mode(true);
        prop_assert_eq!(ft.lookup(&pkt, in_port).cloned(), indexed);
    }

    #[test]
    fn packet_encoding_roundtrips(pkt in packet()) {
        prop_assert_eq!(Packet::decode(pkt.encode()), Some(pkt));
    }

    #[test]
    fn install_is_idempotent_for_same_entry(e in entry(), pkt in packet(), in_port in 0i64..4) {
        let mut ft = FlowTable::new();
        ft.install(e.clone());
        let first = ft.lookup(&pkt, in_port).cloned();
        ft.install(e);
        prop_assert_eq!(ft.len(), 1);
        prop_assert_eq!(ft.lookup(&pkt, in_port).cloned(), first);
    }
}
