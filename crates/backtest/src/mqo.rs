//! Multi-query optimization for joint backtesting (§4.4).
//!
//! "We associate each tuple with a set of tags … we update all the rules
//! such that the tag of the head is the intersection of the tags in the
//! body. Then, for each repair candidate, we create a new tag and add
//! copies of all the rules the repair candidate modifies, but we restrict
//! them to this particular tag."
//!
//! [`build_tagged_program`] performs exactly this transformation, including
//! the coalescing optimization (syntactically identical candidate rules
//! share one variant with a merged tag mask). [`mqo_replay`] then replays
//! the workload **once**: per-candidate flow tables fork only where
//! decisions diverge, and controller evaluation is shared across every
//! candidate whose tag reaches the same PacketIn.
//!
//! Scope: the tagged evaluator covers the insert-only, aggregate-free
//! fragment that SDN controller programs written against a `PacketIn` →
//! `FlowTable`/`PacketOut` codec use. Deletions and aggregates fall back to
//! sequential replay ([`mqo_supported`] reports applicability). Derived
//! output tables are not re-joined, so set-vs-replacement semantics cannot
//! diverge from the sequential engine.

use crate::replay::{BacktestSetup, ReplayOutcome};
use mpr_ndlog::ast::{Atom, CmpOp, Expr, Term};
use mpr_ndlog::eval::{CountingFuncs, Env};
use mpr_ndlog::{Program, Rule, Tuple, Value};
use mpr_runtime::engine::{instantiate, match_atom};
use mpr_sdn::controller::{CtrlMsg, PacketInMsg};
use mpr_sdn::flowtable::{Action, FlowTable};
use mpr_sdn::packet::Packet;
use mpr_sdn::sim::SimStats;
use mpr_sdn::topology::NodeRef;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A set of candidate tags (bit i = candidate i). At most 64 candidates
/// per joint backtest — far above the paper's 9–13.
pub type TagSet = u64;

/// One rule variant in the backtesting program.
#[derive(Debug, Clone)]
pub struct TaggedVariant {
    /// The rule (shared original, or a candidate's modified copy).
    pub rule: Rule,
    /// Which candidates this variant runs for.
    pub mask: TagSet,
}

/// The backtesting program of §4.4.
#[derive(Debug, Clone)]
pub struct TaggedProgram {
    /// Variants, in base-program rule order (candidate copies follow their
    /// original).
    pub variants: Vec<TaggedVariant>,
    /// Number of candidates.
    pub n: usize,
    /// How many candidate rule copies were merged by coalescing.
    pub coalesced: usize,
}

/// Can this program be backtested by the tagged evaluator?
pub fn mqo_supported(program: &Program) -> bool {
    program.rules.iter().all(|r| !r.is_aggregate())
}

/// Build the backtesting program for `candidates` (each a fully patched
/// program derived from `base`).
pub fn build_tagged_program(base: &Program, candidates: &[Program]) -> TaggedProgram {
    assert!(candidates.len() <= 64, "at most 64 candidates per joint backtest");
    let full: TagSet = if candidates.is_empty() {
        0
    } else {
        (!0u64) >> (64 - candidates.len())
    };
    let mut variants: Vec<TaggedVariant> = Vec::new();
    let mut coalesced = 0;
    for rule in &base.rules {
        // Candidates that kept this rule verbatim share the original.
        let mut shared: TagSet = 0;
        // Candidates that modified it get copies — coalesced when equal.
        let mut copies: Vec<(Rule, TagSet)> = Vec::new();
        for (i, cand) in candidates.iter().enumerate() {
            let bit = 1u64 << i;
            match cand.rule(&rule.id) {
                Some(r) if r == rule => shared |= bit,
                Some(r) => {
                    if let Some((_, mask)) = copies.iter_mut().find(|(cr, _)| cr == r) {
                        *mask |= bit;
                        coalesced += 1;
                    } else {
                        copies.push((r.clone(), bit));
                    }
                }
                None => {} // deleted in this candidate
            }
        }
        if shared != 0 || candidates.is_empty() {
            variants.push(TaggedVariant {
                rule: rule.clone(),
                mask: if candidates.is_empty() { full } else { shared },
            });
        }
        for (r, mask) in copies {
            variants.push(TaggedVariant { rule: r, mask });
        }
    }
    // Rules added by candidates (ids not present in the base program).
    let mut added: Vec<(Rule, TagSet)> = Vec::new();
    for (i, cand) in candidates.iter().enumerate() {
        let bit = 1u64 << i;
        for r in &cand.rules {
            if base.rule(&r.id).is_none() {
                if let Some((_, mask)) = added.iter_mut().find(|(ar, _)| ar == r) {
                    *mask |= bit;
                    coalesced += 1;
                } else {
                    added.push((r.clone(), bit));
                }
            }
        }
    }
    for (r, mask) in added {
        variants.push(TaggedVariant { rule: r, mask });
    }
    TaggedProgram { variants, n: candidates.len(), coalesced }
}

/// Constant-keyed variant dispatch for one delta table — the tagged
/// evaluator's mirror of the batch engine's trigger dispatch. Variants
/// whose selections pin the delta atom's value at `col` to a constant are
/// grouped by that constant, so a delta visits only the matching group
/// plus the residual variants instead of scanning the whole backtesting
/// program (which Fig. 10's padded policies make `O(rules)` per delta).
///
/// Only `Int`/`Str`/`Bool` constants are keyed (`HashMap` equality matches
/// `CmpOp::Eq` on those variants, and never on `Wild`), and a variant is
/// keyed only when *every* body position the delta table occurs at agrees
/// on the constant — the selections still run after the join, so the
/// grouping never changes which variants fire.
struct VariantDispatch {
    /// Delta column the keyed groups test (`0` = location).
    col: usize,
    /// Variant indices keyed by their constant at `col`, each ascending.
    keyed: HashMap<Value, Vec<usize>>,
    /// Variant indices with no usable constant at `col`, ascending.
    rest: Vec<usize>,
}

/// Is `v` a variant on which `HashMap` equality matches `CmpOp::Eq`?
fn keyable(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::Str(_) | Value::Bool(_))
}

/// `(column, constant)` pairs a delta bound at `atom` must carry for
/// `rule`'s `Var == Const` selections to pass.
fn atom_prefilter(rule: &Rule, atom: &Atom) -> Vec<(usize, Value)> {
    rule.sels
        .iter()
        .filter(|s| s.op == CmpOp::Eq)
        .filter_map(|s| match (&s.lhs, &s.rhs) {
            (Expr::Var(v), Expr::Const(c)) | (Expr::Const(c), Expr::Var(v)) => Some((v, c)),
            _ => None,
        })
        .filter_map(|(v, c)| {
            let col = if atom.loc == Term::Var(v.clone()) {
                Some(0)
            } else {
                atom.args.iter().position(|t| *t == Term::Var(v.clone())).map(|i| i + 1)
            };
            col.map(|col| (col, c.clone()))
        })
        .collect()
}

/// Build the per-table variant dispatch for a tagged program.
fn build_dispatch(program: &TaggedProgram) -> HashMap<String, VariantDispatch> {
    // `(col, const)` pairs that hold at *every* position the table occurs
    // at in the variant's body (a self-join could bind the delta at any).
    let common = |rule: &Rule, table: &str| -> Vec<(usize, Value)> {
        let mut positions = rule.body.iter().filter(|a| a.table == table);
        let Some(first) = positions.next() else { return Vec::new() };
        let mut pf = atom_prefilter(rule, first);
        for atom in positions {
            let other = atom_prefilter(rule, atom);
            pf.retain(|e| other.contains(e));
        }
        pf
    };
    let mut tables: Vec<&str> = Vec::new();
    for v in &program.variants {
        for a in &v.rule.body {
            if !tables.contains(&a.table.as_str()) {
                tables.push(&a.table);
            }
        }
    }
    tables
        .into_iter()
        .map(|table| {
            let members: Vec<usize> = program
                .variants
                .iter()
                .enumerate()
                .filter(|(_, v)| v.rule.body.iter().any(|a| a.table == table))
                .map(|(vi, _)| vi)
                .collect();
            let mut votes: HashMap<usize, usize> = HashMap::new();
            for &vi in &members {
                for (col, val) in common(&program.variants[vi].rule, table) {
                    if keyable(&val) {
                        *votes.entry(col).or_default() += 1;
                    }
                }
            }
            let col = votes
                .iter()
                .max_by_key(|&(&c, &n)| (n, std::cmp::Reverse(c)))
                .map(|(&c, _)| c);
            let mut d = VariantDispatch {
                col: col.unwrap_or(0),
                keyed: HashMap::new(),
                rest: Vec::new(),
            };
            for &vi in &members {
                let pf = common(&program.variants[vi].rule, table);
                let keyed =
                    col.and_then(|col| pf.into_iter().find(|&(c, ref v)| c == col && keyable(v)));
                match keyed {
                    Some((_, v)) => d.keyed.entry(v).or_default().push(vi),
                    None => d.rest.push(vi),
                }
            }
            (table.to_string(), d)
        })
        .collect()
}

/// Tagged controller state: tuples annotated with the candidates they
/// exist for.
struct TaggedEngine<'a> {
    program: &'a TaggedProgram,
    codec: &'a mpr_sdn::controller::TupleCodec,
    /// table → constant-keyed variant groups (see [`VariantDispatch`]).
    dispatch: HashMap<String, VariantDispatch>,
    /// table → [(tuple, tags)]
    state: HashMap<String, Vec<(Tuple, TagSet)>>,
    funcs: CountingFuncs,
    /// Bumped whenever [`Self::insert_state`] admits fresh bits; stamps
    /// memo entries so state changes invalidate them.
    state_gen: u64,
    /// Fixpoint memo: the codec projects packets onto coarse event tuples
    /// (e.g. `PacketIn(@C, Swi, Hdr)`), so distinct packets repeatedly
    /// trigger the *same* evaluation. Key: event tuple → entries of
    /// `(tags, state generation, reply heads)`. A hit replays the recorded
    /// heads through the codec against the current packet; evaluation is a
    /// pure function of `(state, event, tags)`, so this is exact while the
    /// generation matches.
    memo: HashMap<Tuple, Vec<(TagSet, u64, Vec<(Tuple, TagSet)>)>>,
}

impl<'a> TaggedEngine<'a> {
    fn new(
        program: &'a TaggedProgram,
        codec: &'a mpr_sdn::controller::TupleCodec,
        seeds: &[Tuple],
        full: TagSet,
    ) -> Self {
        let mut state: HashMap<String, Vec<(Tuple, TagSet)>> = HashMap::new();
        for s in seeds {
            state.entry(s.table.clone()).or_default().push((s.clone(), full));
        }
        TaggedEngine {
            program,
            codec,
            dispatch: build_dispatch(program),
            state,
            funcs: CountingFuncs::starting_at(1000),
            state_gen: 0,
            memo: HashMap::new(),
        }
    }

    /// Insert a state tuple for `tags`; returns the tag bits that are new.
    fn insert_state(&mut self, t: &Tuple, tags: TagSet) -> TagSet {
        let entry = self.state.entry(t.table.clone()).or_default();
        let fresh = if let Some((_, existing)) = entry.iter_mut().find(|(et, _)| et == t) {
            let fresh = tags & !*existing;
            *existing |= tags;
            fresh
        } else {
            entry.push((t.clone(), tags));
            tags
        };
        if fresh != 0 {
            self.state_gen += 1;
        }
        fresh
    }

    /// Evaluate the tagged program on one PacketIn under `tags`. Returns
    /// control messages with the tag sets they apply to.
    fn on_packet_in(&mut self, msg: &PacketInMsg, tags: TagSet) -> Vec<(CtrlMsg, TagSet)> {
        let mut out = Vec::new();
        let event = self.codec.packet_in_tuple(msg);
        if let Some(entries) = self.memo.get(&event) {
            if let Some((_, _, heads)) =
                entries.iter().find(|(t, g, _)| *t == tags && *g == self.state_gen)
            {
                // Replay the recorded reply heads against this packet.
                for (h, htags) in heads {
                    if let Some(cm) = self.codec.decode(h, msg) {
                        out.push((cm, *htags));
                    }
                }
                return out;
            }
        }
        let gen_at_entry = self.state_gen;
        let mut heads_out: Vec<(Tuple, TagSet)> = Vec::new();
        let mut complete = true;
        let mut queue: VecDeque<(Tuple, TagSet)> = VecDeque::new();
        queue.push_back((event.clone(), tags));
        let mut guard = 0u32;
        while let Some((delta, dtags)) = queue.pop_front() {
            guard += 1;
            if guard > 100_000 {
                complete = false;
                break; // runaway guard; candidate is hopeless anyway
            }
            // Variants this delta can fire: its value's keyed group merged
            // with the residual list, in ascending (original) order so the
            // output matches the full scan exactly.
            let order: Vec<usize> = {
                let Some(d) = self.dispatch.get(&delta.table) else { continue };
                let keyed: &[usize] = if d.keyed.is_empty() {
                    &[]
                } else {
                    let got = if d.col == 0 {
                        Some(&delta.loc)
                    } else {
                        delta.args.get(d.col - 1)
                    };
                    got.and_then(|v| d.keyed.get(v)).map_or(&[], Vec::as_slice)
                };
                let mut order = Vec::with_capacity(keyed.len() + d.rest.len());
                let (mut i, mut j) = (0, 0);
                while i < keyed.len() || j < d.rest.len() {
                    let from_keyed = match (keyed.get(i), d.rest.get(j)) {
                        (Some(a), Some(b)) => a < b,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    if from_keyed {
                        order.push(keyed[i]);
                        i += 1;
                    } else {
                        order.push(d.rest[j]);
                        j += 1;
                    }
                }
                order
            };
            for vi in order {
                let active = self.program.variants[vi].mask & dtags;
                if active == 0 {
                    continue;
                }
                let heads = {
                    let variant = &self.program.variants[vi];
                    fire_variant(variant, &delta, active, &self.state, &mut self.funcs)
                };
                for (head, htags) in heads {
                    if let Some(cm) = self.codec.decode(&head, msg) {
                        heads_out.push((head, htags));
                        out.push((cm, htags));
                        continue;
                    }
                    if head.table == self.codec.packet_in_table {
                        continue;
                    }
                    // Derived controller state: store and propagate.
                    let fresh = self.insert_state(&head, htags);
                    if fresh != 0 {
                        queue.push_back((head, fresh));
                    }
                }
            }
        }
        // Memoize only runs that neither tripped the guard nor changed the
        // state mid-flight — those replay identically while the generation
        // holds.
        if complete && self.state_gen == gen_at_entry {
            let entry = self.memo.entry(event).or_default();
            entry.retain(|(_, g, _)| *g == gen_at_entry); // drop stale generations
            entry.push((tags, gen_at_entry, heads_out));
        }
        out
    }
}

/// Join one variant against the delta plus the tagged state.
fn fire_variant(
    variant: &TaggedVariant,
    delta: &Tuple,
    active: TagSet,
    state: &HashMap<String, Vec<(Tuple, TagSet)>>,
    funcs: &mut CountingFuncs,
) -> Vec<(Tuple, TagSet)> {
    let rule = &variant.rule;
    let mut out = Vec::new();
    for (di, datom) in rule.body.iter().enumerate() {
        if datom.table != delta.table {
            continue;
        }
        let Some(env0) = match_atom(datom, delta, &Env::new()) else {
            continue;
        };
        // Join remaining atoms against the tagged store.
        let mut partial: Vec<(Env, TagSet)> = vec![(env0, active)];
        for (ai, atom) in rule.body.iter().enumerate() {
            if ai == di {
                continue;
            }
            let empty = Vec::new();
            let cands = state.get(&atom.table).unwrap_or(&empty);
            let mut next = Vec::new();
            for (env, tags) in &partial {
                for (t, ttags) in cands {
                    let joint = tags & ttags;
                    if joint == 0 {
                        continue;
                    }
                    if let Some(e2) = match_atom(atom, t, env) {
                        next.push((e2, joint));
                    }
                }
            }
            partial = next;
            if partial.is_empty() {
                break;
            }
        }
        'envs: for (mut env, tags) in partial {
            for a in &rule.assigns {
                let Ok(v) = a.expr.eval(&env, funcs) else {
                    continue 'envs;
                };
                match env.get(&a.var) {
                    Some(existing) if existing != &v => continue 'envs,
                    _ => {
                        env.insert(a.var.clone(), v);
                    }
                }
            }
            for s in &rule.sels {
                match s.eval(&env, funcs) {
                    Ok(true) => {}
                    _ => continue 'envs,
                }
            }
            if let Some(head) = instantiate(&rule.head, &env) {
                out.push((head, tags));
            }
        }
    }
    out
}

/// Per-candidate extra flow entries ("manual install" repairs).
pub type ExtraFlows = Vec<(i64, mpr_sdn::flowtable::FlowEntry)>;

/// Jointly replay the workload for every candidate. Returns one
/// [`ReplayOutcome`] per candidate, index-aligned.
pub fn mqo_replay(
    setup: &BacktestSetup,
    base: &Program,
    candidates: &[Program],
    extra_flows: &[ExtraFlows],
) -> Vec<ReplayOutcome> {
    let n = candidates.len();
    if n == 0 {
        return Vec::new();
    }
    let full: TagSet = (!0u64) >> (64 - n);
    let tagged = build_tagged_program(base, candidates);
    let mut engine = TaggedEngine::new(&tagged, &setup.codec, &setup.seeds, full);

    // Per-candidate network state. The switch set and proactive
    // shortest-path routes are identical across candidates, so build that
    // prototype once (riding the topology's memoized route cache) and
    // clone it per candidate; only the manual extra entries differ.
    let mut prototype: BTreeMap<i64, FlowTable> = BTreeMap::new();
    for s in &setup.topology.switches {
        prototype.insert(*s, FlowTable::new());
    }
    if setup.proactive_routes {
        for h in setup.topology.hosts.iter().copied() {
            let routes = setup.topology.routes_to(h);
            for (&sw, &port) in routes.iter() {
                // routes_to only names switches in the topology, but stay
                // total: an unknown switch is skipped, not a panic.
                if let Some(ft) = prototype.get_mut(&sw) {
                    ft.install(mpr_sdn::flowtable::FlowEntry::new(
                        1,
                        mpr_sdn::flowtable::Match::any().with(mpr_sdn::packet::Field::DstIp, h),
                        vec![Action::Output(port)],
                    ));
                }
            }
        }
    }
    let candidate_ids: Vec<usize> = (0..n).collect();
    let mut tables: Vec<BTreeMap<i64, FlowTable>> =
        crate::pool::par_map(&candidate_ids, |_, &ti| {
            let mut t = prototype.clone();
            if let Some(extra) = extra_flows.get(ti) {
                for (sw, e) in extra {
                    if let Some(ft) = t.get_mut(sw) {
                        ft.install(e.clone());
                    }
                }
            }
            t
        });
    let mut stats: Vec<SimStats> = vec![SimStats::default(); n];

    // Frontier per tag: (switch, in_port, packet, hops) — packets can
    // diverge across candidates after Modify actions.
    #[derive(Clone)]
    struct Flight {
        at: NodeRef,
        port: i64,
        pkt: Packet,
        hops: u32,
    }
    // Hop-round buffers, reused across every injection: the loop below
    // would otherwise allocate `n` fresh `Vec`s per round per packet,
    // which dominates the replay at fig9c scale.
    let mut flights: Vec<Vec<Flight>> = vec![Vec::new(); n];
    let mut next: Vec<Vec<Flight>> = vec![Vec::new(); n];
    let mut punts: Vec<((i64, i64, Packet), TagSet)> = Vec::new();

    // Replay: forward per tag, share controller evaluation across tags.
    for (src, pkt) in setup.workload.iter() {
        let Some((sw0, port0)) = setup.topology.host_attachment(*src) else {
            continue;
        };
        for fl in flights.iter_mut() {
            fl.clear();
            fl.push(Flight { at: NodeRef::Switch(sw0), port: port0, pkt: pkt.clone(), hops: 0 });
        }
        for s in stats.iter_mut() {
            s.injected += 1;
        }
        loop {
            // Collect punts (switch, in_port, packet) → tagset, process
            // shared; everything else advances one hop.
            punts.clear();
            for fl in next.iter_mut() {
                fl.clear();
            }
            let mut any = false;
            for (tag, fl) in flights.iter().enumerate() {
                for f in fl {
                    any = true;
                    match f.at {
                        NodeRef::Host(h) => {
                            if f.pkt.dst_ip == h {
                                *stats[tag].delivered.entry(h).or_insert(0) += 1;
                                *stats[tag]
                                    .delivered_by_port
                                    .entry((h, f.pkt.dst_port))
                                    .or_insert(0) += 1;
                            } else {
                                stats[tag].misdelivered += 1;
                            }
                        }
                        NodeRef::Switch(s) => {
                            if f.hops >= setup.config.max_hops {
                                stats[tag].dropped_ttl += 1;
                                continue;
                            }
                            stats[tag].hops += 1;
                            let hit =
                                tables[tag].get(&s).and_then(|t| t.lookup(&f.pkt, f.port));
                            match hit {
                                Some(e) => {
                                    let mut p = f.pkt.clone();
                                    let mut emitted = false;
                                    for a in &e.actions {
                                        match a {
                                            Action::Modify(field, v) => p.set_field(*field, *v),
                                            Action::Output(op) => {
                                                if let Some((peer, pp)) =
                                                    setup.topology.peer(NodeRef::Switch(s), *op)
                                                {
                                                    next[tag].push(Flight {
                                                        at: peer,
                                                        port: pp,
                                                        pkt: p.clone(),
                                                        hops: f.hops + 1,
                                                    });
                                                }
                                                emitted = true;
                                            }
                                            Action::Flood => {
                                                for op in setup.topology.ports(NodeRef::Switch(s)) {
                                                    if op != f.port {
                                                        if let Some((peer, pp)) = setup
                                                            .topology
                                                            .peer(NodeRef::Switch(s), op)
                                                        {
                                                            next[tag].push(Flight {
                                                                at: peer,
                                                                port: pp,
                                                                pkt: p.clone(),
                                                                hops: f.hops + 1,
                                                            });
                                                        }
                                                    }
                                                }
                                                emitted = true;
                                            }
                                            Action::Drop => {
                                                stats[tag].dropped_policy += 1;
                                                emitted = true;
                                                break;
                                            }
                                            Action::Controller => {}
                                        }
                                    }
                                    if !emitted {
                                        stats[tag].dropped_policy += 1;
                                    }
                                }
                                None => {
                                    // Punt: group identical PacketIns.
                                    let key = (s, f.port, f.pkt.clone());
                                    let bit = 1u64 << tag;
                                    if let Some((_, ts)) =
                                        punts.iter_mut().find(|(k, _)| *k == key)
                                    {
                                        *ts |= bit;
                                    } else {
                                        punts.push((key, bit));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Shared controller evaluation per distinct punt.
            for ((s, port, p), ts) in punts.drain(..) {
                let msg = PacketInMsg { switch: s, in_port: port, packet: p };
                for t in 0..n {
                    if ts & (1 << t) != 0 {
                        stats[t].packet_ins += 1;
                    }
                }
                let replies = engine.on_packet_in(&msg, ts);
                let mut released: TagSet = 0;
                for (cm, ctags) in replies {
                    match cm {
                        CtrlMsg::FlowMod { switch, entry } => {
                            for t in 0..n {
                                if ctags & (1 << t) != 0 {
                                    stats[t].flow_mods += 1;
                                    if let Some(ft) = tables[t].get_mut(&switch) {
                                        ft.install(entry.clone());
                                    }
                                }
                            }
                        }
                        CtrlMsg::PacketOut { switch, packet, action } => {
                            released |= ctags;
                            for t in 0..n {
                                if ctags & (1 << t) != 0 {
                                    stats[t].packet_outs += 1;
                                    if let Action::Output(op) = action {
                                        if let Some((peer, pp)) =
                                            setup.topology.peer(NodeRef::Switch(switch), op)
                                        {
                                            next[t].push(Flight {
                                                at: peer,
                                                port: pp,
                                                pkt: packet.clone(),
                                                hops: 1,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                let unreleased = ts & !released;
                for t in 0..n {
                    if unreleased & (1 << t) != 0 {
                        stats[t].dropped_buffered += 1;
                    }
                }
            }
            std::mem::swap(&mut flights, &mut next);
            if !any {
                break;
            }
        }
    }
    stats
        .into_iter()
        .map(|s| ReplayOutcome { delivered: s.delivered.clone(), stats: s })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay, BacktestSetup};
    use mpr_ndlog::patch::{Edit, Patch};
    use mpr_ndlog::{parse_program, ConstSite, ExprSide, Value};
    use mpr_sdn::controller::TupleCodec;
    use mpr_sdn::sim::SimConfig;
    use mpr_sdn::topology::{fig1, fig1_hosts};

    fn fig2_program() -> Program {
        parse_program(
            "fig2",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 2.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
            ",
        )
        .unwrap()
    }

    fn setup() -> BacktestSetup {
        let workload = (0..30)
            .map(|i| {
                (
                    fig1_hosts::INTERNET,
                    mpr_sdn::packet::Packet::http(i, 50 + (i as i64 % 3), fig1_hosts::H2),
                )
            })
            .collect();
        BacktestSetup {
            topology: std::sync::Arc::new(fig1()),
            codec: TupleCodec::fig2(),
            seeds: vec![],
            workload: std::sync::Arc::new(workload),
            config: SimConfig::default(),
            proactive_routes: false,
            engine: mpr_runtime::Options::default(),
        }
    }

    fn candidates(base: &Program) -> Vec<Program> {
        // Candidate 0: r7 Swi==2 → Swi==3 (the intuitive fix).
        // Candidate 1: r7 Swi==2 → Swi!=2.
        // Candidate 2: identical to candidate 0 (coalescing test).
        let c0 = Patch::single(Edit::SetConst {
            rule: "r7".into(),
            site: ConstSite::Selection { idx: 0, side: ExprSide::Rhs, path: vec![] },
            value: Value::Int(3),
        })
        .apply(base)
        .unwrap();
        let c1 = Patch::single(Edit::SetSelectionOp {
            rule: "r7".into(),
            sel: 0,
            op: mpr_ndlog::CmpOp::Ne,
        })
        .apply(base)
        .unwrap();
        vec![c0.clone(), c1, c0]
    }

    #[test]
    fn tagged_program_structure_and_coalescing() {
        let base = fig2_program();
        let cands = candidates(&base);
        let tp = build_tagged_program(&base, &cands);
        // r1, r5 shared by all three tags; r7 has a shared-none original
        // (no candidate keeps it) — so: r1(111), r5(111), r7-copy-a(101),
        // r7-copy-b(010).
        assert_eq!(tp.n, 3);
        assert_eq!(tp.coalesced, 1);
        let masks: Vec<TagSet> = tp.variants.iter().map(|v| v.mask).collect();
        assert!(masks.contains(&0b111));
        assert!(masks.contains(&0b101));
        assert!(masks.contains(&0b010));
        // No variant for the unmodified r7 (every candidate changed it).
        let r7_shared = tp
            .variants
            .iter()
            .any(|v| v.rule.id == "r7" && v.mask == 0b111 && v.rule == *base.rule("r7").unwrap());
        assert!(!r7_shared);
    }

    #[test]
    fn mqo_matches_sequential_per_candidate() {
        let base = fig2_program();
        let cands = candidates(&base);
        let setup = setup();
        let joint = mqo_replay(&setup, &base, &cands, &[]);
        assert_eq!(joint.len(), 3);
        for (i, cand) in cands.iter().enumerate() {
            let solo = replay(&setup, cand).unwrap();
            assert_eq!(
                joint[i].delivered, solo.delivered,
                "candidate {i} diverges: joint={:?} solo={:?}",
                joint[i].delivered, solo.delivered
            );
            assert_eq!(joint[i].stats.packet_ins, solo.stats.packet_ins, "candidate {i} punts");
        }
    }

    #[test]
    fn mqo_supported_detects_aggregates() {
        assert!(mqo_supported(&fig2_program()));
        let agg = parse_program("agg", "r1 B(@N,a_count<X>) :- A(@N,X).").unwrap();
        assert!(!mqo_supported(&agg));
    }

    #[test]
    fn empty_candidate_list() {
        let base = fig2_program();
        assert!(mqo_replay(&setup(), &base, &[], &[]).is_empty());
    }

    #[test]
    fn extra_flows_are_per_candidate() {
        use mpr_sdn::flowtable::{FlowEntry, Match};
        use mpr_sdn::packet::Field;
        let base = fig2_program();
        let cands = vec![base.clone(), base.clone()];
        // Candidate 1 gets a manual entry at S3 → H2 (port 2) plus S1→S3.
        let manual = vec![
            (1i64, FlowEntry::new(50, Match::any().with(Field::DstPort, 80), vec![Action::Output(2)])),
            (3i64, FlowEntry::new(50, Match::any().with(Field::DstPort, 80), vec![Action::Output(2)])),
        ];
        let joint = mqo_replay(&setup(), &base, &cands, &[Vec::new(), manual]);
        let h2 = fig1_hosts::H2;
        assert_eq!(joint[0].delivered.get(&h2).copied().unwrap_or(0), 0);
        assert!(joint[1].delivered.get(&h2).copied().unwrap_or(0) > 0);
    }
}
