//! Sequential backtesting: replay the recorded workload against a candidate
//! program in a fresh simulated network (§4.3).

use mpr_ndlog::{Program, Tuple};
use mpr_runtime::Options as EngineOptions;
use mpr_sdn::controller::{NdlogController, TupleCodec};
use mpr_sdn::sim::{SimConfig, SimStats, Simulation};
use mpr_sdn::topology::Topology;
use mpr_trace::workload::Injection;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything needed to re-create the network for a backtest run.
///
/// The immutable artifacts — topology (with its memoized route cache) and
/// workload — are behind `Arc`, so cloning a setup per candidate shares
/// them instead of deep-copying per replay.
#[derive(Clone)]
pub struct BacktestSetup {
    /// The network (shared across candidate replays).
    pub topology: Arc<Topology>,
    /// Packet ↔ tuple mapping.
    pub codec: TupleCodec,
    /// Controller state seeded before replay (configuration tuples).
    pub seeds: Vec<Tuple>,
    /// The workload to replay (from the history log or a generator).
    pub workload: Arc<Vec<Injection>>,
    /// Simulator configuration.
    pub config: SimConfig,
    /// Install proactive shortest-path routes underneath the app
    /// (priority 1, overridden by reactive entries).
    pub proactive_routes: bool,
    /// Engine options for the replay controllers (strategy, durability, …).
    /// `record_events` is forced off per-replay regardless — backtests
    /// need speed, not explanations. The kill-and-restart harness uses
    /// this to run backtests against a WAL-journaled engine.
    pub engine: EngineOptions,
}

/// Outcome of replaying one program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Simulator counters.
    pub stats: SimStats,
    /// Per-host delivery distribution (the KS input).
    pub delivered: BTreeMap<i64, u64>,
}

/// Replay the workload against `program`. Each run builds a fresh network
/// and controller; provenance recording is off (backtests need speed, not
/// explanations).
pub fn replay(setup: &BacktestSetup, program: &Program) -> Result<ReplayOutcome, String> {
    replay_with_extra_flows(setup, program, &[])
}

/// [`replay`], additionally pre-installing `extra_flows` — the
/// "manually installing a flow entry" repairs (Table 2 candidate A) are
/// tuple insertions, not program patches.
pub fn replay_with_extra_flows(
    setup: &BacktestSetup,
    program: &Program,
    extra_flows: &[(i64, mpr_sdn::flowtable::FlowEntry)],
) -> Result<ReplayOutcome, String> {
    let opts = EngineOptions { record_events: false, ..setup.engine.clone() };
    let mut ctrl = NdlogController::with_options(program.clone(), setup.codec.clone(), opts)
        .map_err(|e| e.to_string())?;
    ctrl.seed(setup.seeds.clone()).map_err(|e| e.to_string())?;
    let mut sim = Simulation::new(setup.topology.clone(), ctrl, setup.config.clone());
    if setup.proactive_routes {
        sim.install_proactive_routes();
    }
    for (sw, entry) in extra_flows {
        if let Some(t) = sim.tables.get_mut(sw) {
            t.install(entry.clone());
        }
    }
    for (src, pkt) in setup.workload.iter() {
        sim.inject(*src, pkt.clone());
        sim.run();
    }
    Ok(ReplayOutcome { delivered: sim.stats.delivered.clone(), stats: sim.stats })
}

/// One candidate's materialized replay inputs, for [`replay_candidates`].
#[derive(Clone)]
pub struct CandidateRun {
    /// The patched program; `None` when the patch failed to compile (the
    /// candidate's outcome slot stays `None`).
    pub program: Option<Program>,
    /// Controller seeds for this candidate (patches may perturb them).
    pub seeds: Vec<Tuple>,
    /// Pre-installed manual flow entries.
    pub extra_flows: Vec<(i64, mpr_sdn::flowtable::FlowEntry)>,
}

/// Maximum attempts per candidate replay in [`replay_candidates`].
const REPLAY_ATTEMPTS: u32 = 3;

/// [`replay_with_extra_flows`] with bounded retry and exponential backoff.
///
/// Replays are deterministic, so a *logic* failure (program that cannot
/// compile, codec mismatch) fails identically every attempt and comes
/// back after `attempts` tries with the last error. What retries actually
/// buy is the transient class — thread-spawn or allocation failure under
/// memory pressure while many candidates replay in parallel — which
/// clears once concurrent replays finish. Backoff doubles from 1 ms.
pub fn replay_with_retry(
    setup: &BacktestSetup,
    program: &Program,
    extra_flows: &[(i64, mpr_sdn::flowtable::FlowEntry)],
    attempts: u32,
) -> Result<ReplayOutcome, String> {
    let mut last_err = String::from("no replay attempts made");
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(1 << (attempt - 1)));
        }
        match replay_with_extra_flows(setup, program, extra_flows) {
            Ok(out) => return Ok(out),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Replay every candidate independently, fanning out across the
/// [`crate::pool`] worker threads. Each run is hermetic (fresh controller
/// and network per candidate), so the results are index-aligned and
/// identical to a sequential loop over [`replay_with_extra_flows`] — this
/// is the parallel form of the debugger's non-MQO backtest path. `None`
/// marks candidates that failed to compile, whose replay errored after
/// `REPLAY_ATTEMPTS` (3) tries, or whose replay panicked (contained per
/// candidate — one pathological candidate cannot take down the loop).
pub fn replay_candidates(
    setup: &BacktestSetup,
    candidates: &[CandidateRun],
) -> Vec<Option<ReplayOutcome>> {
    let out = crate::pool::par_map_contained(candidates, |_, c| {
        let program = c.program.as_ref()?;
        let mut s = setup.clone();
        s.seeds = c.seeds.clone();
        replay_with_retry(&s, program, &c.extra_flows, REPLAY_ATTEMPTS).ok()
    });
    out.into_iter().map(|r| r.flatten()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::parse_program;
    use mpr_sdn::packet::Packet;
    use mpr_sdn::topology::{fig1, fig1_hosts};

    fn setup() -> BacktestSetup {
        let workload: Vec<Injection> = (0..20)
            .map(|i| {
                (
                    fig1_hosts::INTERNET,
                    Packet::http(i, 50 + (i as i64 % 5), fig1_hosts::H1),
                )
            })
            .collect();
        BacktestSetup {
            topology: Arc::new(fig1()),
            codec: TupleCodec::fig2(),
            seeds: vec![],
            workload: Arc::new(workload),
            config: SimConfig::default(),
            proactive_routes: false,
            engine: EngineOptions::default(),
        }
    }

    fn mini_program() -> Program {
        parse_program(
            "mini",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 1.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            ",
        )
        .unwrap()
    }

    #[test]
    fn replay_counts_deliveries() {
        let out = replay(&setup(), &mini_program()).unwrap();
        // First two packets warm up S1 and S2; the rest reach H1.
        assert_eq!(out.delivered.get(&fig1_hosts::H1).copied().unwrap_or(0), 18);
        assert_eq!(out.stats.flow_mods, 2);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = replay(&setup(), &mini_program()).unwrap();
        let b = replay(&setup(), &mini_program()).unwrap();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.stats.packet_ins, b.stats.packet_ins);
    }

    #[test]
    fn extra_flows_implement_manual_repairs() {
        use mpr_sdn::flowtable::{Action, FlowEntry, Match};
        use mpr_sdn::packet::Field;
        // Program that drops everything; a manual entry saves H1's traffic.
        let prog = parse_program(
            "drop",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := -1.
            ",
        )
        .unwrap();
        let manual = vec![
            (1i64, FlowEntry::new(50, Match::any().with(Field::DstPort, 80), vec![Action::Output(1)])),
            (2i64, FlowEntry::new(50, Match::any().with(Field::DstPort, 80), vec![Action::Output(1)])),
        ];
        let without = replay(&setup(), &prog).unwrap();
        let with = replay_with_extra_flows(&setup(), &prog, &manual).unwrap();
        assert_eq!(without.delivered.get(&fig1_hosts::H1), None);
        assert_eq!(with.delivered.get(&fig1_hosts::H1).copied().unwrap_or(0), 20);
    }
}
