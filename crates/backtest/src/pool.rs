//! A minimal scoped worker pool for the backtester's embarrassingly
//! parallel outer loops.
//!
//! Candidate replays are independent by construction — each builds a fresh
//! controller and network from a [`crate::BacktestSetup`] — so the
//! sequential-replay fallback and the MQO per-candidate state setup both
//! fan out over [`par_map`]. Results come back index-aligned with the
//! input, so callers see exactly the ordering a sequential loop produces;
//! only wall-clock changes. Implemented directly on
//! [`std::thread::scope`]: no work stealing, just a striped static
//! partition, which is the right shape when every item costs about the
//! same (replays of one workload) and keeps the dependency footprint at
//! zero.

/// Worker count for backtest fan-out: the `MPR_BACKTEST_WORKERS`
/// environment variable when set (clamped to 1..=64), otherwise the
/// machine's available parallelism. `1` disables threading entirely.
pub fn workers() -> usize {
    match std::env::var("MPR_BACKTEST_WORKERS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) => n.clamp(1, 64),
        None => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
    }
}

/// Apply `f` to every item, possibly across [`workers()`] scoped threads,
/// returning results in input order. `f` receives `(index, &item)`.
///
/// Runs inline (no threads spawned) when the pool has one worker or there
/// is at most one item. Worker `w` takes items `w, w + k, w + 2k, …` — a
/// striped partition, so runtimes even out when item cost drifts with
/// index (e.g. candidates sorted by complexity). A panic in `f` propagates
/// to the caller, as it would from the sequential loop.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let k = workers().min(items.len());
    if k <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..k)
            .map(|w| {
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(k)
                        .map(|(i, t)| (i, f(i, t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(chunk) => {
                    for (i, r) in chunk {
                        slots[i] = Some(r);
                    }
                }
                // Re-raise on the caller's thread with the original
                // payload — same observable behavior as the sequential
                // loop, never a process abort from a worker thread.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every index filled")).collect()
}

/// Like [`par_map`], but with per-item panic containment: an `f` that
/// panics yields `None` for that item while every other item completes
/// normally. This is the degraded-mode entry point the backtester uses —
/// one pathological candidate must not take down the whole repair loop.
pub fn par_map_contained<T, R, F>(items: &[T], f: F) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let call = |i: usize, t: &T| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, t))).ok()
    };
    let k = workers().min(items.len());
    if k <= 1 {
        return items.iter().enumerate().map(|(i, t)| call(i, t)).collect();
    }
    let mut slots: Vec<Option<Option<R>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let call = &call;
        let handles: Vec<_> = (0..k)
            .map(|w| {
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(k)
                        .map(|(i, t)| (i, call(i, t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // Containment happens per item inside `call`; a stripe-level
            // join error would mean the catch_unwind itself unwound,
            // which cannot happen for a caught payload.
            if let Ok(chunk) = h.join() {
                for (i, r) in chunk {
                    slots[i] = Some(r);
                }
            }
        }
    });
    slots.into_iter().map(|r| r.flatten()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_aligned() {
        let items: Vec<i64> = (0..37).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as i64, x);
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let none: Vec<u8> = vec![];
        assert!(par_map(&none, |_, &x| x).is_empty());
        assert_eq!(par_map(&[41u8], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn matches_sequential_map_under_any_worker_count() {
        let items: Vec<String> = (0..23).map(|i| format!("item{i}")).collect();
        let seq: Vec<usize> = items.iter().map(String::len).collect();
        let par = par_map(&items, |_, s| s.len());
        assert_eq!(par, seq);
    }

    #[test]
    fn contained_panics_become_none_and_spare_the_rest() {
        // Silence the expected panic messages from worker threads.
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<i64> = (0..19).collect();
        let out = par_map_contained(&items, |_, &x| {
            if x % 5 == 3 {
                panic!("poisoned item {x}");
            }
            x * 2
        });
        std::panic::set_hook(default);
        assert_eq!(out.len(), items.len());
        for (i, r) in out.iter().enumerate() {
            if i % 5 == 3 {
                assert_eq!(*r, None, "poisoned item {i} must be contained");
            } else {
                assert_eq!(*r, Some(i as i64 * 2));
            }
        }
    }
}
