//! # mpr-backtest — repair backtesting
//!
//! "Primum non nocere" (§4.3): before a repair candidate is suggested, it
//! is replayed against historical traffic and rejected if it distorts the
//! global traffic distribution.
//!
//! - [`replay()`] — sequential backtesting: fresh network + controller per
//!   candidate, replaying the recorded workload; [`replay_candidates`]
//!   fans independent candidates out over the [`pool`] worker threads;
//! - [`ks`] — the two-sample Kolmogorov–Smirnov filter (α = 0.05, §5.3);
//! - [`mqo`] — the §4.4 multi-query optimization: one tagged joint replay
//!   for all candidates, with rule-copy coalescing. A property test pins
//!   the correctness claim: per-tag results equal sequential results.
//! - [`pool`] — the scoped worker pool behind both parallel paths
//!   (`MPR_BACKTEST_WORKERS` overrides its size).

#![warn(missing_docs)]

pub mod ks;
pub mod mqo;
pub mod pool;
pub mod replay;

pub use ks::{ks_coefficient, ks_two_sample, KsResult};
pub use mqo::{build_tagged_program, mqo_replay, mqo_supported, TagSet, TaggedProgram, TaggedVariant};
pub use pool::par_map;
pub use replay::{
    replay, replay_candidates, replay_with_extra_flows, BacktestSetup, CandidateRun,
    ReplayOutcome,
};
