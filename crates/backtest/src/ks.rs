//! The two-sample Kolmogorov–Smirnov test (§5.3).
//!
//! "We then computed the traffic distribution at end hosts for each of
//! these networks. We used the Two-Sample Kolmogorov-Smirnov test with
//! significance level 0.05 to compare the distributions before and after
//! each repair. A repair candidate was rejected if it significantly
//! distorted the original traffic distribution."
//!
//! The distributions are per-host packet counts; the ECDFs are weighted by
//! those counts over the (sorted) host axis, and the critical value is the
//! large-sample approximation `c(α)·√((n+m)/(n·m))` with `c(0.05)=1.358`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    /// The D statistic: max ECDF distance.
    pub d: f64,
    /// Critical value at the chosen significance level.
    pub critical: f64,
    /// Sample sizes.
    pub n: u64,
    /// Sample sizes.
    pub m: u64,
}

impl KsResult {
    /// `true` when the two distributions are statistically indistinguishable
    /// (the repair does *not* significantly distort traffic).
    pub fn accepted(&self) -> bool {
        self.d < self.critical
    }
}

/// `c(α)` for the large-sample critical value. Supported levels: 0.10,
/// 0.05 (the paper's), 0.025, 0.01, 0.005, 0.001.
pub fn ks_coefficient(alpha: f64) -> f64 {
    const TABLE: [(f64, f64); 6] = [
        (0.10, 1.22),
        (0.05, 1.358),
        (0.025, 1.48),
        (0.01, 1.628),
        (0.005, 1.731),
        (0.001, 1.949),
    ];
    for (a, c) in TABLE {
        if (alpha - a).abs() < 1e-12 {
            return c;
        }
    }
    // Exact formula for other levels: c(α) = sqrt(-ln(α/2)/2).
    (-(alpha / 2.0).ln() / 2.0).sqrt()
}

/// Two-sample KS over per-host packet-count distributions.
///
/// Empty-vs-empty compares equal (D = 0); empty-vs-nonempty is maximally
/// distant (D = 1) — a repair that silences the whole network must never
/// pass the filter.
pub fn ks_two_sample(
    before: &BTreeMap<i64, u64>,
    after: &BTreeMap<i64, u64>,
    alpha: f64,
) -> KsResult {
    let n: u64 = before.values().sum();
    let m: u64 = after.values().sum();
    if n == 0 && m == 0 {
        return KsResult { d: 0.0, critical: 1.0, n, m };
    }
    if n == 0 || m == 0 {
        return KsResult { d: 1.0, critical: 0.0, n, m };
    }
    // Walk the union of hosts in order, tracking both ECDFs.
    let hosts: std::collections::BTreeSet<i64> =
        before.keys().chain(after.keys()).copied().collect();
    let mut cum_b = 0.0;
    let mut cum_a = 0.0;
    let mut d: f64 = 0.0;
    for h in hosts {
        cum_b += before.get(&h).copied().unwrap_or(0) as f64 / n as f64;
        cum_a += after.get(&h).copied().unwrap_or(0) as f64 / m as f64;
        d = d.max((cum_b - cum_a).abs());
    }
    let critical = ks_coefficient(alpha) * (((n + m) as f64) / ((n * m) as f64)).sqrt();
    KsResult { d, critical, n, m }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(i64, u64)]) -> BTreeMap<i64, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn identical_distributions_have_zero_d() {
        let a = dist(&[(1, 100), (2, 200), (3, 300)]);
        let r = ks_two_sample(&a, &a, 0.05);
        assert_eq!(r.d, 0.0);
        assert!(r.accepted());
    }

    #[test]
    fn disjoint_distributions_have_d_one() {
        let a = dist(&[(1, 100)]);
        let b = dist(&[(2, 100)]);
        let r = ks_two_sample(&a, &b, 0.05);
        assert!((r.d - 1.0).abs() < 1e-12);
        assert!(!r.accepted());
    }

    #[test]
    fn small_shift_passes_large_shift_fails() {
        // 10k packets across 10 hosts; moving 0.1% passes, moving 30% fails.
        let mut base = BTreeMap::new();
        for h in 0..10 {
            base.insert(h, 1000u64);
        }
        let mut slight = base.clone();
        *slight.get_mut(&0).unwrap() -= 10;
        *slight.get_mut(&9).unwrap() += 10;
        let r = ks_two_sample(&base, &slight, 0.05);
        assert!(r.accepted(), "d={} crit={}", r.d, r.critical);

        let mut heavy = base.clone();
        *heavy.get_mut(&0).unwrap() -= 3000.min(1000);
        *heavy.get_mut(&9).unwrap() += 1000;
        let r = ks_two_sample(&base, &heavy, 0.05);
        assert!(!r.accepted(), "d={} crit={}", r.d, r.critical);
    }

    #[test]
    fn symmetry() {
        let a = dist(&[(1, 500), (2, 300)]);
        let b = dist(&[(1, 450), (2, 350), (3, 10)]);
        let r1 = ks_two_sample(&a, &b, 0.05);
        let r2 = ks_two_sample(&b, &a, 0.05);
        assert!((r1.d - r2.d).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let e = BTreeMap::new();
        let a = dist(&[(1, 5)]);
        assert!(ks_two_sample(&e, &e, 0.05).accepted());
        assert!(!ks_two_sample(&e, &a, 0.05).accepted());
        assert!(!ks_two_sample(&a, &e, 0.05).accepted());
    }

    #[test]
    fn coefficient_table_and_formula() {
        assert!((ks_coefficient(0.05) - 1.358).abs() < 1e-9);
        assert!((ks_coefficient(0.10) - 1.22).abs() < 1e-9);
        // Formula fallback is close to the table at 0.05.
        let f = (-(0.05f64 / 2.0).ln() / 2.0).sqrt();
        assert!((f - 1.358).abs() < 0.01);
        assert!((ks_coefficient(0.07) - (-(0.07f64 / 2.0).ln() / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn critical_value_shrinks_with_sample_size() {
        let small_a = dist(&[(1, 10), (2, 10)]);
        let big_a = dist(&[(1, 100_000), (2, 100_000)]);
        let r_small = ks_two_sample(&small_a, &small_a, 0.05);
        let r_big = ks_two_sample(&big_a, &big_a, 0.05);
        assert!(r_big.critical < r_small.critical);
        // Paper-scale samples → paper-scale critical values (~1e-2 .. 1e-3).
        assert!(r_big.critical < 0.01);
    }
}
