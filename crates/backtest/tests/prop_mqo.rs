//! Property test for §4.4's correctness claim: the tagged joint backtest
//! computes, for every candidate, exactly the results of a sequential
//! replay of that candidate — on randomly mutated programs.

use mpr_backtest::mqo::mqo_replay;
use mpr_backtest::replay::{replay, BacktestSetup};
use mpr_ndlog::{parse_program, Program};
use mpr_sdn::controller::TupleCodec;
use mpr_sdn::packet::Packet;
use mpr_sdn::sim::SimConfig;
use mpr_sdn::topology::{fig1, fig1_hosts};
use proptest::prelude::*;

fn base_program() -> Program {
    parse_program(
        "prop-mqo",
        r"
        materialize(PacketIn, event, 2, keys()).
        materialize(FlowTable, infinity, 2, keys(0,1)).
        r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 1.
        r2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 53, Prt := 2.
        r3 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
        r4 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 3, Hdr == 53, Prt := 1.
        ",
    )
    .unwrap()
}

/// A random single-literal mutation of the base program.
fn mutant() -> impl Strategy<Value = Program> {
    (
        prop::sample::select(vec!["r1", "r2", "r3", "r4"]),
        0usize..2,
        prop_oneof![
            (1i64..6).prop_map(Some),             // new constant
            Just(None),                            // operator flip instead
        ],
    )
        .prop_map(|(rule, sel, change)| {
            let mut p = base_program();
            let r = p.rule_mut(rule).unwrap();
            match change {
                Some(v) => r.sels[sel].rhs = mpr_ndlog::Expr::int(v),
                None => r.sels[sel].op = r.sels[sel].op.negate(),
            }
            p
        })
}

fn setup() -> BacktestSetup {
    let workload = (0..24)
        .map(|i| {
            let dst = if i % 3 == 0 { fig1_hosts::DNS } else { fig1_hosts::H1 };
            let p = if i % 3 == 0 {
                Packet::dns(i, 100, dst)
            } else {
                let mut p = Packet::http(i, 100, dst);
                p.src_port = 7000; // one flow
                p
            };
            (fig1_hosts::INTERNET, p)
        })
        .collect::<Vec<_>>();
    BacktestSetup {
        topology: fig1().into(),
        codec: TupleCodec::fig2(),
        seeds: vec![],
        workload: std::sync::Arc::new(workload),
        config: SimConfig::default(),
        proactive_routes: false,
        engine: mpr_runtime::Options::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn joint_equals_sequential(cands in prop::collection::vec(mutant(), 1..6)) {
        let setup = setup();
        let base = base_program();
        let joint = mqo_replay(&setup, &base, &cands, &[]);
        prop_assert_eq!(joint.len(), cands.len());
        for (i, cand) in cands.iter().enumerate() {
            let solo = replay(&setup, cand).unwrap();
            prop_assert_eq!(
                &joint[i].delivered,
                &solo.delivered,
                "candidate {} delivered sets diverge",
                i
            );
            prop_assert_eq!(
                joint[i].stats.packet_ins,
                solo.stats.packet_ins,
                "candidate {} controller load diverges",
                i
            );
            prop_assert_eq!(
                joint[i].stats.dropped_policy,
                solo.stats.dropped_policy,
                "candidate {} policy drops diverge",
                i
            );
        }
    }
}
