//! Repeated-run determinism: the engine's fixpoint *and* its execution log
//! must be a pure function of the program and the input script — never of
//! hash-map iteration order.
//!
//! Each `HashMap` in the process draws its own random SipHash keys, so
//! re-running the same script on a freshly built engine genuinely
//! reshuffles every internal iteration order; these tests re-run scripts
//! many times and demand byte-for-byte identical logs. The scenario is
//! chosen to make order dependence *observable*: rules race to install
//! tuples under one primary key (last write wins), so any wobble in
//! candidate visit order — the pipelined engine's historical bug, fixed by
//! `Store::scan_ordered` — changes which instance survives and the shape
//! of the eviction cascade. The sharded strategy is additionally compared
//! against batch, locking in the bit-identity contract of
//! `mpr_runtime::shard`.

use mpr_ndlog::{parse_program, Program, Tuple, Value};
use mpr_runtime::{Engine, EvalStrategy, ExecLog, Options};

/// Primary-key races, multi-candidate joins, and aggregate churn in one
/// program: the fragments where iteration order could leak.
fn program() -> Program {
    parse_program(
        "det",
        r"
        materialize(Src, infinity, 2, keys(0,1)).
        materialize(Pick, infinity, 2, keys(0)).
        materialize(Joined, infinity, 2, keys(0,1)).
        materialize(Cnt, infinity, 2, keys(0)).
        p1 Pick(@N,X,Y) :- Src(@N,X,Y).
        j1 Joined(@N,X,Z) :- Src(@N,X,Y), Src(@N,Y,Z).
        c1 Cnt(@N,X,a_count<Y>) :- Src(@N,X,Y).
        ",
    )
    .unwrap()
}

/// Insert a batch of facts (several sharing primary keys, so replacement
/// order matters), then delete a few to cascade.
fn script(e: &mut Engine) {
    let n = Value::Int(1);
    let t = |a: i64, b: i64| Tuple::new("Src", n.clone(), vec![Value::Int(a), Value::Int(b)]);
    for (a, b) in [(1, 2), (2, 3), (3, 1), (1, 4), (4, 2), (2, 5), (5, 1), (1, 2)] {
        e.insert(t(a, b)).unwrap();
    }
    e.delete(&t(1, 2)).unwrap();
    e.delete(&t(2, 3)).unwrap();
}

fn run(strategy: EvalStrategy) -> (Vec<Tuple>, Vec<Tuple>, Vec<Tuple>, ExecLog) {
    let p = program();
    let mut e = Engine::with_options(
        &p,
        Options { strategy, shard_min_round: 1, ..Options::default() },
    )
    .unwrap();
    script(&mut e);
    (e.tuples("Pick"), e.tuples("Joined"), e.tuples("Cnt"), e.take_log())
}

#[test]
fn pipelined_runs_are_bit_identical() {
    let first = run(EvalStrategy::Pipelined);
    for _ in 0..8 {
        assert_eq!(run(EvalStrategy::Pipelined), first, "pipelined run diverged");
    }
}

#[test]
fn batch_runs_are_bit_identical() {
    let first = run(EvalStrategy::Batch);
    for _ in 0..8 {
        assert_eq!(run(EvalStrategy::Batch), first, "batch run diverged");
    }
}

#[test]
fn sharded_runs_are_bit_identical_to_batch() {
    let batch = run(EvalStrategy::Batch);
    for n in [2, 3, 8] {
        for _ in 0..4 {
            assert_eq!(run(EvalStrategy::Shards(n)), batch, "Shards({n}) diverged from batch");
        }
    }
}

#[test]
fn provenance_events_are_reproducible_under_churn() {
    // The provenance graph is built from the event log; identical logs on
    // every run mean identical graphs. Exercise a deeper cascade: build a
    // cycle, then remove its anchor edge.
    let p = parse_program(
        "prov",
        r"
        materialize(Link, infinity, 2, keys(0,1)).
        materialize(Reach, infinity, 2, keys(0,1)).
        r1 Reach(@C,X,Y) :- Link(@C,X,Y), X != Y.
        r2 Reach(@C,X,Z) :- Reach(@C,X,Y), Link(@C,Y,Z), X != Z.
        ",
    )
    .unwrap();
    let run = |strategy| {
        let mut e = Engine::with_options(
            &p,
            Options { strategy, shard_min_round: 1, ..Options::default() },
        )
        .unwrap();
        let c = Value::str("C");
        let t = |a: i64, b: i64| Tuple::new("Link", c.clone(), vec![Value::Int(a), Value::Int(b)]);
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 1), (2, 4)] {
            e.insert(t(a, b)).unwrap();
        }
        e.delete(&t(1, 2)).unwrap();
        e.take_log()
    };
    for strategy in [EvalStrategy::Pipelined, EvalStrategy::Batch, EvalStrategy::Shards(2)] {
        let first = run(strategy);
        for _ in 0..5 {
            assert_eq!(run(strategy), first, "{strategy} provenance events diverged");
        }
    }
}
