//! Property tests for the execution log — the invariants provenance
//! construction relies on:
//!
//! - every `Derive` event's body tuples were alive at the derivation time;
//! - every derived (non-base) live tuple has at least one `Derive` event;
//! - `Appear`/`Disappear` events bracket each tuple's lifetime interval;
//! - retraction is logged: every `Disappear` of a derived tuple follows an
//!   `Underive` or a replacement.

use mpr_ndlog::{parse_program, Program, Tuple, Value};
use mpr_runtime::{Engine, ExecEvent, TupleKind};
use proptest::prelude::*;

fn program() -> Program {
    parse_program(
        "log-prop",
        r"
        materialize(A, infinity, 2, keys(0,1)).
        materialize(B, infinity, 2, keys(0,1)).
        materialize(D, infinity, 2, keys(0,1)).
        materialize(E, infinity, 2, keys(0,1)).
        r1 D(@N,X,Y) :- A(@N,X,Y), X != Y.
        r2 D(@N,X,Y) :- B(@N,X,Y), X > 0.
        r3 E(@N,X,Y) :- D(@N,X,Y), A(@N,Y,X2), X2 == X, Y < 9.
        ",
    )
    .unwrap()
}

fn tuple() -> impl Strategy<Value = Tuple> {
    (prop::sample::select(vec!["A", "B"]), 0i64..4, 0i64..4).prop_map(|(t, x, y)| {
        Tuple::new(t, Value::Int(1), vec![Value::Int(x), Value::Int(y)])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn log_invariants_hold(
        inserts in prop::collection::vec(tuple(), 1..14),
        deletes in prop::collection::vec(tuple(), 0..6),
    ) {
        let mut e = Engine::new(&program()).unwrap();
        for t in &inserts {
            e.insert(t.clone()).unwrap();
        }
        for t in &deletes {
            e.delete(t).unwrap();
        }
        let log = e.log();

        // (1) Derive bodies were alive at derive time.
        for ev in &log.events {
            if let ExecEvent::Derive { time, body, .. } = ev {
                for &b in body {
                    let rec = log.record(b);
                    prop_assert!(
                        rec.alive_at(*time),
                        "body tuple {b} dead at derive time {time}"
                    );
                }
            }
        }

        // (2) Every live derived tuple has a Derive event naming it.
        for rec in &log.tuples {
            if rec.disappear.is_none() && rec.kind == TupleKind::Derived {
                prop_assert!(
                    log.derivations_of(rec.tid).iter().count() > 0,
                    "derived tuple {} has no derivation",
                    rec.tuple
                );
            }
        }

        // (3) Appear/Disappear bracket lifetimes: appear time matches the
        // record, disappear only for closed records.
        for ev in &log.events {
            match ev {
                ExecEvent::Appear { time, tid } => {
                    prop_assert_eq!(log.record(*tid).appear, *time);
                }
                ExecEvent::Disappear { time, tid } => {
                    let rec = log.record(*tid);
                    prop_assert_eq!(rec.disappear, Some(*time));
                }
                _ => {}
            }
        }

        // (4) The store's final contents agree with open lifetime records
        // (events are instantaneous and never linger).
        for rec in &log.tuples {
            if rec.disappear.is_none() {
                prop_assert!(
                    e.contains(&rec.tuple),
                    "open record for absent tuple {}",
                    rec.tuple
                );
            }
        }
    }

    #[test]
    fn disabled_logging_changes_no_visible_state(
        inserts in prop::collection::vec(tuple(), 1..10),
    ) {
        use mpr_runtime::Options;
        let mut with = Engine::new(&program()).unwrap();
        let mut without = Engine::with_options(
            &program(),
            Options { record_events: false, ..Options::default() },
        )
        .unwrap();
        for t in &inserts {
            with.insert(t.clone()).unwrap();
            without.insert(t.clone()).unwrap();
        }
        for table in ["A", "B", "D", "E"] {
            prop_assert_eq!(with.tuples(table), without.tuples(table));
        }
        prop_assert!(without.log().events.is_empty());
    }
}
