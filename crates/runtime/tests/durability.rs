//! Engine-level durability: a WAL-journaled engine's store must be
//! reconstructible from its log alone — exactly, after a clean shutdown;
//! prefix-consistently, after a crash at any WAL byte offset — and a WAL
//! that cannot open or write must degrade the engine to memory-only, not
//! take it down.

use mpr_ndlog::{parse_program, Program, Tuple, Value};
use mpr_runtime::engine::{Durability, WalOptions};
use mpr_runtime::{Engine, Options, Store};
use mpr_storage::{MemBackend, StorageBackend, WalBackend, WalConfig};
use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mpr-dur-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn program() -> Program {
    parse_program(
        "dur",
        r"
        materialize(Src, infinity, 2, keys(0,1)).
        materialize(Pick, infinity, 2, keys(0)).
        materialize(Joined, infinity, 2, keys(0,1)).
        materialize(Cnt, infinity, 2, keys(0)).
        p1 Pick(@N,X,Y) :- Src(@N,X,Y).
        j1 Joined(@N,X,Z) :- Src(@N,X,Y), Src(@N,Y,Z).
        c1 Cnt(@N,X,a_count<Y>) :- Src(@N,X,Y).
        ",
    )
    .unwrap()
}

fn script(e: &mut Engine) {
    let n = Value::Int(1);
    let t = |a: i64, b: i64| Tuple::new("Src", n.clone(), vec![Value::Int(a), Value::Int(b)]);
    for (a, b) in [(1, 2), (2, 3), (3, 1), (1, 4), (4, 2), (2, 5), (5, 1), (1, 2)] {
        e.insert(t(a, b)).unwrap();
    }
    e.delete(&t(1, 2)).unwrap();
    e.delete(&t(2, 3)).unwrap();
}

fn wal_engine(dir: &PathBuf, compact_every: usize) -> Engine {
    let opts = Options {
        durability: Durability::Wal(WalOptions {
            dir: dir.clone(),
            fsync: false,
            compact_every,
        }),
        ..Options::default()
    };
    Engine::with_options(&program(), opts).unwrap()
}

#[test]
fn recovered_store_matches_live_store_exactly() {
    for compact_every in [0, 1, 7, 4096] {
        let dir = scratch("exact");
        let mut e = wal_engine(&dir, compact_every);
        script(&mut e);
        assert_eq!(e.durability_degraded(), None);
        let wal_dir = e.wal_dir().expect("WAL must be active").to_path_buf();

        let mut backend = WalBackend::open(WalConfig::new(&wal_dir)).unwrap();
        let (recovered, report) = Store::recover(&mut backend).unwrap();
        assert!(report.status.is_clean(), "clean shutdown must recover clean");
        assert_eq!(report.ops_skipped, 0);
        assert_eq!(
            recovered.dump(),
            e.store().dump(),
            "compact_every={compact_every}: recovered store diverged"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn crash_at_any_offset_recovers_an_op_prefix() {
    // Reference run: capture the full op stream via a MemBackend journal.
    let dir = scratch("prefix");
    let mut e = wal_engine(&dir, 0); // no compaction: offsets map to ops 1:1
    script(&mut e);
    let wal_dir = e.wal_dir().unwrap().to_path_buf();
    drop(e);

    let mut full = WalBackend::open(WalConfig::new(&wal_dir)).unwrap();
    let all_records = full.recover().unwrap();
    assert!(all_records.status.is_clean());
    assert!(all_records.snapshot.is_none());
    drop(full);

    let wal_file = fs::read_dir(&wal_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("wal."))
        .unwrap();
    let len = fs::metadata(&wal_file).unwrap().len();
    let original = fs::read(&wal_file).unwrap();

    // Crash at a spread of byte offsets, including every tenth byte.
    for cut in (0..=len).step_by(10.max(len as usize / 80)) {
        fs::write(&wal_file, &original).unwrap();
        OpenOptions::new().write(true).open(&wal_file).unwrap().set_len(cut).unwrap();

        let mut torn = WalBackend::open(WalConfig::new(&wal_dir)).unwrap();
        let (recovered, report) = Store::recover(&mut torn).unwrap();
        assert_eq!(report.ops_skipped, 0, "cut at {cut}: decode failure");
        // The recovered store must equal an exact replay of the surviving
        // op prefix through fresh store logic (MemBackend as oracle).
        let mut oracle_backend =
            MemBackend::primed(None, all_records.records[..report.ops_applied].to_vec());
        let (oracle, _) = Store::recover(&mut oracle_backend).unwrap();
        assert_eq!(
            recovered.dump(),
            oracle.dump(),
            "cut at {cut}: not prefix-consistent ({} ops)",
            report.ops_applied
        );
        // Restore before the next iteration opens (which truncates).
        fs::write(&wal_file, &original).unwrap();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compaction_preserves_state_and_shrinks_the_log() {
    let dir = scratch("compact");
    let mut e = wal_engine(&dir, 5);
    script(&mut e);
    let (records, _bytes) = e.store().journal_stats().unwrap();
    assert!(records < 5 + 5, "compaction never ran (wal holds {records} ops)");
    let wal_dir = e.wal_dir().unwrap().to_path_buf();
    let expected = e.store().dump();
    drop(e);

    let mut backend = WalBackend::open(WalConfig::new(&wal_dir)).unwrap();
    let (recovered, report) = Store::recover(&mut backend).unwrap();
    assert!(report.snapshot_restored, "snapshot must be in play");
    assert_eq!(recovered.dump(), expected);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unopenable_wal_degrades_to_memory_only() {
    // A *file* where the WAL parent dir should be → create_dir_all fails.
    let dir = scratch("degrade");
    fs::create_dir_all(dir.parent().unwrap()).unwrap();
    fs::write(&dir, b"not a directory").unwrap();

    let mut e = wal_engine(&dir, 0);
    let reason = e.durability_degraded().expect("open failure must be reported");
    assert!(reason.contains("open"), "unexpected reason: {reason}");
    assert!(e.wal_dir().is_none());
    // The engine still evaluates normally.
    script(&mut e);
    assert!(!e.tuples("Pick").is_empty());
    let _ = fs::remove_file(&dir);
}

#[test]
fn mem_durability_keeps_store_unjournaled() {
    let opts = Options { durability: Durability::Mem, ..Options::default() };
    let mut e = Engine::with_options(&program(), opts).unwrap();
    script(&mut e);
    assert_eq!(e.store().journal_stats(), None);
    assert_eq!(e.wal_dir(), None);
    assert_eq!(e.durability_degraded(), None);
}
