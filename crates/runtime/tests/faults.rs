//! Graceful-degradation suite: injected shard-worker panics must be
//! contained (no process abort, bit-identical fixpoint via the sequential
//! fallback), and fixpoint budget exhaustion must surface as a typed
//! [`RuntimeError`] that leaves the engine inspectable.
//!
//! This file runs as its own test process, so it may install a silent
//! panic hook: the injected worker panics would otherwise spam stderr
//! from non-test threads (scoped workers are outside the harness's
//! output capture).

use mpr_ndlog::{parse_program, Program, Tuple, Value};
use mpr_runtime::{Engine, EvalStrategy, Options, RuntimeError};
use std::time::Duration;

fn closure_program() -> Program {
    parse_program(
        "tc",
        r"
        materialize(Link, infinity, 2, keys(0,1)).
        materialize(Reach, infinity, 2, keys(0,1)).
        r1 Reach(@C,X,Y) :- Link(@C,X,Y), X != Y.
        r2 Reach(@C,X,Z) :- Reach(@C,X,Y), Link(@C,Y,Z), X != Z.
        ",
    )
    .unwrap()
}

fn chain_links(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| Tuple::new("Link", Value::str("C"), vec![Value::Int(i), Value::Int(i + 1)]))
        .collect()
}

/// Silence the default panic hook for the duration of this process: the
/// injected worker panics are expected, and real test failures still
/// propagate through the harness (unwinding is unaffected by the hook).
fn silence_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected shard worker panic"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("injected shard worker panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

#[test]
fn injected_worker_panic_does_not_abort_and_keeps_the_fixpoint() {
    silence_panics();
    let program = closure_program();
    let links = chain_links(24);

    // Reference: plain sequential batch.
    let mut reference = Engine::with_options(
        &program,
        Options { strategy: EvalStrategy::Batch, ..Options::default() },
    )
    .unwrap();
    reference.insert_all(links.clone()).unwrap();

    // Sharded engine whose every worker panics: all enumeration is lost,
    // every unit falls back to the sequential fire_batch path.
    let mut faulty = Engine::with_options(
        &program,
        Options {
            strategy: EvalStrategy::Shards(4),
            shard_min_round: 1,
            inject_worker_panic: true,
            ..Options::default()
        },
    )
    .unwrap();
    faulty.insert_all(links).unwrap();

    assert!(
        faulty.shard_worker_panics() > 0,
        "the injection hook must actually have fired"
    );
    assert_eq!(
        faulty.tuples("Reach"),
        reference.tuples("Reach"),
        "contained panics must not change the fixpoint"
    );
    assert_eq!(
        faulty.log(),
        reference.log(),
        "the sequential fallback must keep the execution log bit-identical"
    );
}

#[test]
fn healthy_shards_count_no_panics() {
    let program = closure_program();
    let mut e = Engine::with_options(
        &program,
        Options {
            strategy: EvalStrategy::Shards(4),
            shard_min_round: 1,
            ..Options::default()
        },
    )
    .unwrap();
    e.insert_all(chain_links(24)).unwrap();
    assert_eq!(e.shard_worker_panics(), 0);
}

#[test]
fn round_budget_exhaustion_is_a_typed_error_and_recoverable() {
    let program = closure_program();
    let mut e = Engine::with_options(
        &program,
        Options { strategy: EvalStrategy::Batch, max_rounds: 3, ..Options::default() },
    )
    .unwrap();
    // Insert the chain tail-first: each new head link must propagate
    // reachability down the whole suffix, so the per-insert fixpoint needs
    // one semi-naive round per hop and soon exceeds the cap.
    let err = e.insert_all(chain_links(12).into_iter().rev()).unwrap_err();
    assert_eq!(err, RuntimeError::RoundLimit(3));
    assert_eq!(err.to_string(), "fixpoint round limit exceeded (3)");

    // Graceful degradation: the engine survives for inspection — the
    // frame stack is balanced (no recent partitions linger) and queries
    // over the partial state still work.
    assert!(e.delta_stats().iter().all(|s| s.recent == 0));
    assert!(!e.tuples("Reach").is_empty(), "partial rounds landed");
    assert!(e.tuple_count() > 0);
}

#[test]
fn time_budget_exhaustion_is_a_typed_error_under_batch_and_pipelined() {
    let program = closure_program();
    for strategy in [EvalStrategy::Batch, EvalStrategy::Pipelined] {
        let mut e = Engine::with_options(
            &program,
            Options {
                strategy,
                time_budget: Some(Duration::ZERO),
                ..Options::default()
            },
        )
        .unwrap();
        let err = e.insert_all(chain_links(4)).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::TimeBudget { budget_ms: 0 },
            "{strategy:?} must surface the wall-clock budget"
        );
        // Still inspectable afterwards.
        assert!(e.delta_stats().iter().all(|s| s.recent == 0));
    }
}

#[test]
fn generous_budgets_change_nothing() {
    let program = closure_program();
    let mut bounded = Engine::with_options(
        &program,
        Options {
            strategy: EvalStrategy::Batch,
            max_rounds: 1_000,
            time_budget: Some(Duration::from_secs(3600)),
            ..Options::default()
        },
    )
    .unwrap();
    bounded.insert_all(chain_links(12)).unwrap();
    let mut plain = Engine::with_options(
        &program,
        Options { strategy: EvalStrategy::Batch, ..Options::default() },
    )
    .unwrap();
    plain.insert_all(chain_links(12)).unwrap();
    assert_eq!(bounded.log(), plain.log());
}
