//! Differential property test: both evaluation strategies (pipelined and
//! batch semi-naive) compute the same fixpoint as the naive oracle on
//! random stratified programs over state tables.

use mpr_ndlog::ast::*;
use mpr_ndlog::{Program, Tuple, Value};
use mpr_runtime::naive::naive_fixpoint;
use mpr_runtime::{Engine, EvalStrategy, Options};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn engine_with(p: &Program, strategy: EvalStrategy) -> Engine {
    Engine::with_options(p, Options { strategy, ..Options::default() }).unwrap()
}

/// Tables T0..T3 (base) and D0..D3 (derived); all payload arity 2.
fn base_tuple() -> impl Strategy<Value = Tuple> {
    (0u8..4, 0i64..4, -3i64..6).prop_map(|(t, a, b)| {
        Tuple::new(format!("T{t}"), Value::str("C"), vec![Value::Int(a), Value::Int(b)])
    })
}

fn term(vars: &'static [&'static str]) -> impl Strategy<Value = Term> {
    prop_oneof![
        4 => prop::sample::select(vars.to_vec()).prop_map(|v| Term::Var(v.to_string())),
        1 => (-2i64..4).prop_map(|i| Term::Const(Value::Int(i))),
    ]
}

fn sel(vars: &'static [&'static str]) -> impl Strategy<Value = Selection> {
    (
        prop::sample::select(vars.to_vec()),
        prop::sample::select(CmpOp::ALL.to_vec()),
        prop_oneof![
            prop::sample::select(vars.to_vec()).prop_map(|v| Expr::Var(v.to_string())),
            (-2i64..5).prop_map(Expr::int),
        ],
    )
        .prop_map(|(l, op, r)| Selection::new(Expr::var(l), op, r))
}

/// A stratified rule: derived tables only depend on base tables, so the
/// fixpoint is trivially finite. Variables come from a fixed pool; the head
/// repeats two body variables.
prop_compose! {
    fn rule(idx: usize)(
        head_t in 0u8..4,
        body_ts in prop::collection::vec(0u8..4, 1..3),
        args in prop::collection::vec(term(&["A", "B", "X", "Y"]), 4),
        sels in prop::collection::vec(sel(&["A", "B"]), 0..2),
    ) -> Rule {
        let body: Vec<Atom> = body_ts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (a, b) = if i == 0 { (args[0].clone(), args[1].clone()) } else { (args[2].clone(), args[3].clone()) };
                // Ensure at least vars A, B are bound by the first atom.
                let (a, b) = if i == 0 { (Term::Var("A".into()), b.or_var(a, "B")) } else { (a, b) };
                Atom::new(format!("T{t}"), Term::Var("C".into()), vec![a, b])
            })
            .collect();
        Rule::new(
            format!("r{idx}"),
            Atom::new(format!("D{head_t}"), Term::Var("C".into()), vec![Term::Var("A".into()), Term::Var("B".into())]),
            body,
            sels,
            vec![],
        )
    }
}

/// Helper: make sure the second term is a variable "B" when the first
/// draw produced something unusable.
trait OrVar {
    fn or_var(self, other: Term, name: &str) -> Term;
}
impl OrVar for Term {
    fn or_var(self, _other: Term, name: &str) -> Term {
        match self {
            Term::Const(c) => {
                // keep some constants, but bind B half the time based on parity
                if matches!(c, Value::Int(i) if i % 2 == 0) {
                    Term::Const(c)
                } else {
                    Term::Var(name.to_string())
                }
            }
            t => {
                let _ = t;
                Term::Var(name.to_string())
            }
        }
    }
}

prop_compose! {
    fn program()(rules in prop::collection::vec(0usize..1, 1..5)) (
        built in rules.iter().enumerate().map(|(i, _)| rule(i)).collect::<Vec<_>>()
    ) -> Program {
        let mut p = Program::new("prop");
        for r in built {
            p.rules.push(r);
        }
        p
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn both_strategies_match_naive(p in program(), base in prop::collection::vec(base_tuple(), 0..12)) {
        // Rules must bind their head variables; rule() guarantees A and B
        // appear in the first body atom, so validation always passes — but
        // keep the guard in case the generator drifts.
        prop_assume!(p.validate().is_ok());
        let expected = naive_fixpoint(&p, &base, 64);

        for strategy in [EvalStrategy::Pipelined, EvalStrategy::Batch] {
            let mut engine = engine_with(&p, strategy);
            for t in &base {
                engine.insert(t.clone()).unwrap();
            }
            let mut actual: BTreeSet<Tuple> = BTreeSet::new();
            for table in ["T0", "T1", "T2", "T3", "D0", "D1", "D2", "D3"] {
                actual.extend(engine.tuples(table));
            }
            prop_assert_eq!(actual, expected.clone(), "strategy = {}", strategy);
        }
    }

    #[test]
    fn deletion_returns_to_pre_insertion_state(p in program(), base in prop::collection::vec(base_tuple(), 1..8), extra in base_tuple()) {
        prop_assume!(p.validate().is_ok());
        prop_assume!(!base.contains(&extra));

        for strategy in [EvalStrategy::Pipelined, EvalStrategy::Batch] {
            // State A: insert the base set.
            let mut e1 = engine_with(&p, strategy);
            for t in &base {
                e1.insert(t.clone()).unwrap();
            }
            let snapshot = |e: &Engine| {
                let mut s: BTreeSet<Tuple> = BTreeSet::new();
                for table in ["T0", "T1", "T2", "T3", "D0", "D1", "D2", "D3"] {
                    s.extend(e.tuples(table));
                }
                s
            };
            let before = snapshot(&e1);

            // Insert `extra`, then delete it: the visible state must return
            // to `before` (support counting, no over-retraction).
            e1.insert(extra.clone()).unwrap();
            e1.delete(&extra).unwrap();
            prop_assert_eq!(snapshot(&e1), before, "strategy = {}", strategy);
        }
    }
}
