//! Property tests for the batch engine's delta-storage invariants:
//!
//! - stable/recent partitions stay disjoint through arbitrary round and
//!   retire sequences on the tracker itself;
//! - at rest (no active round) every live state tuple sits in exactly one
//!   stable partition — no duplicates, nothing pending;
//! - fixpoints are idempotent: re-inserting already-live facts adds
//!   support but changes nothing visible.

use mpr_ndlog::ast::*;
use mpr_ndlog::{Program, Tuple, Value};
use mpr_runtime::delta::Visibility;
use mpr_runtime::{DeltaTracker, Engine, EvalStrategy, Options};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One scripted action against a bare tracker. Tuple ids come from a tiny
/// pool so retires frequently hit tracked tuples; tables from a pool of 3.
#[derive(Debug, Clone)]
enum Op {
    BeginRound(Vec<(u64, u8)>),
    EndRound,
    Retire(u64, u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop::collection::vec((0u64..32, 0u8..3), 0..6).prop_map(Op::BeginRound),
        2 => Just(Op::EndRound),
        2 => (0u64..32, 0u8..3).prop_map(|(t, tab)| Op::Retire(t, tab)),
    ]
}

fn table(i: u8) -> String {
    format!("T{i}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Drive a tracker through a random op sequence; after every step no
    /// tuple may be stable and recent at once, and the per-table stats must
    /// sum to the tracked totals.
    #[test]
    fn stable_and_recent_stay_disjoint(ops in prop::collection::vec(op(), 0..40)) {
        let mut d = DeltaTracker::default();
        // Tuples ever handed to begin_round, for probing.
        let mut seen: BTreeSet<(u64, u8)> = BTreeSet::new();
        for op in ops {
            match op {
                Op::BeginRound(batch) => {
                    // A tuple id is minted once in the engine (and belongs
                    // to exactly one table); keep the script honest by
                    // skipping ids tracked anywhere, including duplicates
                    // within the batch itself.
                    let mut in_batch = BTreeSet::new();
                    let fresh: Vec<(u64, String)> = batch
                        .iter()
                        .filter(|&&(t, _)| {
                            d.visibility(t) == Visibility::Absent && in_batch.insert(t)
                        })
                        .map(|&(t, tab)| (t, table(tab)))
                        .collect();
                    seen.extend(
                        fresh.iter().map(|(t, tab)| (*t, tab.as_bytes()[1] - b'0')),
                    );
                    d.begin_round(fresh);
                }
                Op::EndRound => {
                    if d.depth() > 0 {
                        d.end_round();
                    }
                }
                Op::Retire(t, tab) => d.retire(&table(tab), t),
            }
            for &(t, tab) in &seen {
                let tab = table(tab);
                prop_assert!(
                    !(d.is_stable(&tab, t) && d.is_recent(&tab, t)),
                    "tuple {t} of {tab} is both stable and recent"
                );
                if d.in_current_round(&tab, t) {
                    prop_assert!(d.is_recent(&tab, t), "innermost implies recent");
                }
            }
            let stats = d.stats();
            prop_assert_eq!(
                stats.iter().map(|s| s.stable).sum::<usize>(),
                d.stable_len()
            );
            prop_assert_eq!(
                stats.iter().map(|s| s.recent).sum::<usize>(),
                d.recent_len()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Engine-level invariants, on the same stratified fragment the other
// property suites use.

fn base_tuple() -> impl Strategy<Value = Tuple> {
    (0u8..3, 0i64..4, -2i64..5).prop_map(|(t, a, b)| {
        Tuple::new(format!("T{t}"), Value::str("C"), vec![Value::Int(a), Value::Int(b)])
    })
}

fn rule(idx: usize) -> impl Strategy<Value = Rule> {
    (0u8..3, prop::collection::vec(0u8..3, 1..3)).prop_map(move |(head_t, body_ts)| {
        let body: Vec<Atom> = body_ts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let args = if i == 0 {
                    vec![Term::Var("A".into()), Term::Var("B".into())]
                } else {
                    vec![Term::Var("B".into()), Term::Var("X".into())]
                };
                Atom::new(format!("T{t}"), Term::Var("C".into()), args)
            })
            .collect();
        Rule::new(
            format!("r{idx}"),
            Atom::new(
                format!("D{head_t}"),
                Term::Var("C".into()),
                vec![Term::Var("A".into()), Term::Var("B".into())],
            ),
            body,
            vec![],
            vec![],
        )
    })
}

fn program() -> impl Strategy<Value = Program> {
    prop::collection::vec(Just(()), 1..4).prop_flat_map(|rules| {
        rules
            .iter()
            .enumerate()
            .map(|(i, ())| rule(i))
            .collect::<Vec<_>>()
            .prop_map(|built| {
                let mut p = Program::new("prop-delta");
                p.rules.extend(built);
                p
            })
    })
}

const TABLES: [&str; 6] = ["T0", "T1", "T2", "D0", "D1", "D2"];

fn snapshot(e: &Engine) -> BTreeSet<Tuple> {
    TABLES.iter().flat_map(|t| e.tuples(t)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// At rest, the partitions hold exactly the live state tuples: every
    /// round has ended (recent = 0) and the per-table stable count equals
    /// the table's live tuple count — one partition entry per tuple, none
    /// pending, no duplicates.
    #[test]
    fn at_rest_every_live_tuple_is_stable_once(
        p in program(),
        base in prop::collection::vec(base_tuple(), 0..10),
    ) {
        prop_assume!(p.validate().is_ok());
        let mut e = Engine::with_options(
            &p,
            Options { strategy: EvalStrategy::Batch, ..Options::default() },
        )
        .unwrap();
        for t in &base {
            e.insert(t.clone()).unwrap();
            let stats = e.delta_stats();
            prop_assert!(
                stats.iter().all(|s| s.recent == 0),
                "no round may outlive a fixpoint"
            );
            for table in TABLES {
                let live = e.tuples(table).len();
                let stable =
                    stats.iter().find(|s| s.table == table).map_or(0, |s| s.stable);
                prop_assert_eq!(stable, live, "partition drift in {}", table);
            }
        }
    }

    /// Fixpoint idempotence: replaying the same base facts into the engine
    /// changes nothing visible (support counting absorbs the duplicates),
    /// and the partitions do not grow.
    #[test]
    fn reinsertion_is_idempotent(
        p in program(),
        base in prop::collection::vec(base_tuple(), 1..10),
    ) {
        prop_assume!(p.validate().is_ok());
        let mut e = Engine::with_options(
            &p,
            Options { strategy: EvalStrategy::Batch, ..Options::default() },
        )
        .unwrap();
        for t in &base {
            e.insert(t.clone()).unwrap();
        }
        let before = snapshot(&e);
        let stable_before: usize = e.delta_stats().iter().map(|s| s.stable).sum();
        let index_before = e.index_entries();
        for t in &base {
            e.insert(t.clone()).unwrap();
        }
        prop_assert_eq!(snapshot(&e), before);
        prop_assert_eq!(
            e.delta_stats().iter().map(|s| s.stable).sum::<usize>(),
            stable_before
        );
        prop_assert_eq!(e.index_entries(), index_before);
    }
}
